//! The PHP Surveyor case study (paper Figure 7 and §3.3.3).
//!
//! "In a source code of PHP Surveyor, `$sid` was the root cause of 16
//! vulnerable program locations; our TS algorithm made 16
//! instrumentations, whereas a single instrumentation would have been
//! sufficient to secure the code."
//!
//! ```text
//! cargo run --example php_surveyor
//! ```

use std::fmt::Write as _;

use webssari::{instrument_bmc, instrument_ts, Verifier};

fn main() -> Result<(), webssari::VerifyError> {
    // Figure 7, generalized to the 16 locations the paper mentions.
    let mut src =
        String::from("<?php\n$sid = $_GET['sid'];\nif (!$sid) { $sid = $_POST['sid']; }\n");
    let tables = [
        "groups",
        "answers",
        "questions",
        "surveys",
        "tokens",
        "users",
        "labels",
        "conditions",
        "assessments",
        "saved",
        "quota",
        "templates",
        "exports",
        "stats",
        "archive",
        "log",
    ];
    for (i, table) in tables.iter().enumerate() {
        let _ = writeln!(
            src,
            "$q{i} = \"SELECT * FROM {table} WHERE sid=$sid\";\nDoSQL($q{i});"
        );
    }

    let verifier = Verifier::new();
    let report = verifier.verify_source(&src, "admin.php")?;

    println!(
        "vulnerable statements (TS symptoms): {}",
        report.ts_instrumentations()
    );
    println!(
        "error groups (BMC root causes):      {}",
        report.bmc_instrumentations()
    );
    for v in &report.vulnerabilities {
        println!(
            "  [{}] root cause ${} explains {} symptom(s)",
            v.class,
            v.root_var,
            v.symptoms.len()
        );
    }

    let (_, ts_guards) = instrument_ts(&src, &report);
    let (patched, bmc_guards) = instrument_bmc(&src, &report);
    println!(
        "\nTS-mode instrumentation:  {} runtime guards",
        ts_guards.len()
    );
    println!(
        "BMC-mode instrumentation: 1 root cause, guarded at each of its {} introduction point(s):",
        bmc_guards.len()
    );
    for g in &bmc_guards {
        println!("  after line {}: sanitize ${}", g.after_line, g.var);
    }

    let after = verifier.verify_source(&patched, "admin.php")?;
    println!(
        "\nre-verification after patching the root cause: {}",
        if after.is_safe() {
            "CLEAN"
        } else {
            "STILL VULNERABLE"
        }
    );
    Ok(())
}
