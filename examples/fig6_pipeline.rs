//! The translation pipeline of the paper's Figure 6, stage by stage:
//! PHP source → filtered result `F(p)` → abstract interpretation
//! `AI(F(p))` → renamed constraints → SAT → counterexamples.
//!
//! ```text
//! cargo run --example fig6_pipeline
//! ```

use webssari::ir::{abstract_interpret, filter_program, FilterOptions, Prelude};
use webssari::lattice::TwoPoint;
use webssari::php::parse_source;

fn main() {
    // Figure 6's guestbook fragment: one branch echoes sanitized user
    // input, the other a trusted greeting. (The figure's sanitizer is
    // kept *off* on the then-branch so the violation appears, as in the
    // paper's formula B1.)
    let src = r#"<?php
if (Nick) {
    $tmp = $_GET['nick'];
    echo $tmp;
} else {
    $tmp = "You are the " . $GuestCount . " guest";
    echo $tmp;
}
"#;
    println!("--- PHP source ----------------------------------------------");
    println!("{src}");

    let ast = parse_source(src).expect("figure 6 parses");
    let prelude = Prelude::standard();
    let f = filter_program(
        &ast,
        src,
        "guestbook.php",
        &prelude,
        &FilterOptions::default(),
    );
    println!("--- filtered result F(p) ------------------------------------");
    println!("{f}");

    let ai = abstract_interpret(&f);
    println!("--- abstract interpretation AI(F(p)) ------------------------");
    println!("{ai}");
    println!(
        "(diameter {}, {} branch variable(s), {} assertions)\n",
        ai.diameter(),
        ai.num_branches,
        ai.num_assertions()
    );

    let lattice = TwoPoint::new();
    let enc = webssari::bmc::renaming::encode(&ai, &lattice);
    println!("--- renamed constraints (CNF) -------------------------------");
    println!(
        "{} incarnations, {} CNF variables, {} clauses, {} assertions",
        enc.num_incarnations,
        enc.formula.num_vars(),
        enc.formula.num_clauses(),
        enc.asserts.len()
    );

    let result = webssari::bmc::Xbmc::new(&ai).check_all();
    println!("\n--- counterexamples -----------------------------------------");
    if result.counterexamples.is_empty() {
        println!("none — program verified");
    }
    for cx in &result.counterexamples {
        print!("{}", cx.render(&ai));
    }
    println!(
        "\nB1 (the then-branch echo) is satisfiable — one counterexample;\nB2 (the else-branch echo) is unsatisfiable — $GuestCount is trusted."
    );
}
