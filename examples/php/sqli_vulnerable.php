<?php
// Figure 1 of the paper, minimally: a request parameter flows into a
// SQL query unsanitized. The query template resolves, so `webssari
// lint` flags the sink as an error-level `sql-concat-injection`;
// `webssari verify` enumerates the counterexample and roots the fix
// at $sid.
$sid = $_GET['sid'];
$query = "SELECT * FROM groups WHERE sid=$sid";
mysql_query($query);
