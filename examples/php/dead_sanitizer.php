<?php
// A sanitizer whose result never reaches any sink: the cleaned value
// is computed and then overwritten before the echo. `webssari lint`
// reports a warning-level `dead-sanitizer` (and an error for the raw
// value that actually flows out).
$clean = htmlspecialchars($_GET['q']);
$out = $_GET['q'];
echo $out;
