<?php
// The sanitized counterpart: every request parameter is cleaned before
// it reaches an output channel. The screening tier discharges both
// assertions statically (no SAT work), and `webssari lint` finds
// nothing.
$name = htmlspecialchars($_GET['name']);
echo $name;
$limit = intval($_GET['limit']);
mysql_query("SELECT * FROM posts LIMIT $limit");
