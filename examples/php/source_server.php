<?php
// $_SERVER entry point: request-derived server fields (user agent,
// referer, path info) are tainted. The user agent reaches both a log
// echo and a query; only the echo through htmlspecialchars is clean.
$agent = $_SERVER['HTTP_USER_AGENT'];
echo htmlspecialchars($agent);
mysql_query("INSERT INTO visits VALUES ('$agent')");
