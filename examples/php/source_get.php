<?php
// $_GET entry point: each literal key is its own request channel, so
// the report names the exact parameter (`_GET[sid]`) rather than the
// whole array. The unsanitized echo is an error-level finding.
$sid = $_GET['sid'];
echo "session: $sid";
