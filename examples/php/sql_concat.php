<?php
// A request parameter concatenated into the text of an INSERT: the
// query's *structure* is attacker-controlled. `webssari lint` reports
// an error-level `sql-concat-injection` naming the statement kind and
// table, and `webssari verify` suggests parameterizing under
// `--prefer-parameterize`.
$msg = $_GET['msg'];
mysql_query("INSERT INTO messages (body) VALUES ('$msg')");
