<?php
// A dynamic include whose path carries request data — the classic
// remote-file-inclusion shape. `webssari lint` reports it under its own
// rule id, `tainted-include`, at error level.
$page = $_GET['page'];
include($page);
