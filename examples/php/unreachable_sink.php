<?php
// Maintenance guard: the page aborts unconditionally, so the query
// below is dead code — lint flags it as a flow-unreachable sink.
$id = $_GET['id'];
exit;
mysql_query("SELECT * FROM maintenance WHERE id=$id");
