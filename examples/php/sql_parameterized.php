<?php
// The parameterized counterpart of sql_concat.php: the tainted value
// is bound at a `?` placeholder, so it becomes data, not query text.
// The SQL template analyzer sees a resolved INSERT whose only taint
// reaches a bound position — `webssari lint` finds nothing.
$msg = $_GET['msg'];
execute_query("INSERT INTO messages (body) VALUES (?)", $msg);
