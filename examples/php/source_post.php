<?php
// $_POST entry point: the message body flows into an INSERT without
// sanitization — an error-level `sql-concat-injection`, rooted at the
// `_POST[message]` channel.
$message = $_POST['message'];
mysql_query("INSERT INTO tickets VALUES ('$message')");
