<?php
// Request A of the two-file stored-XSS pair: an attacker-controlled
// nickname is written into the `profiles` table. On its own this is a
// `sql-concat-injection`; together with store_read.php it also seeds
// the cross-request store summary with a tainted write to `profiles`.
$nick = $_POST['nick'];
mysql_query("UPDATE profiles SET nick = '$nick' WHERE id = 1");
