<?php
// Request B of the two-file stored-XSS pair: the stored nickname is
// read back and rendered without escaping. The fetched row is modeled
// as a read of the cross-request store cell for `profiles`, so
// `webssari lint` reports `stored-taint-flow` alongside the
// `unsanitized-sink`, and `webssari verify` over both files shows the
// source-after-sink trace (write in request A, echo in request B).
$result = mysql_query('SELECT nick FROM profiles WHERE id = 1');
$row = mysql_fetch_array($result);
echo $row;
