<?php
// $_COOKIE entry point: cookie values are attacker-controlled exactly
// like query parameters. The tracking token is echoed raw — an
// error-level finding rooted at `_COOKIE[tracker]`.
$tracker = $_COOKIE['tracker'];
echo "<img src='/pixel?id=$tracker'>";
