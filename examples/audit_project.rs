//! Audit a whole generated project end to end: verify every file,
//! print the grouped report, patch the vulnerable files, and re-verify
//! — the full WebSSARI deployment story on a corpus project.
//!
//! ```text
//! cargo run --example audit_project            # default project
//! cargo run --example audit_project -- "Media Mate"
//! ```

use webssari::corpus_gen::{figure10_profiles, generate_project};
use webssari::{instrument_bmc, Verifier};

fn main() {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "PHPMyList".to_owned());
    let profile = figure10_profiles()
        .into_iter()
        .find(|p| p.name == wanted)
        .unwrap_or_else(|| panic!("no Figure 10 project named {wanted:?}"));
    println!(
        "auditing {:?} (activity {}, paper: TS={}, BMC={})\n",
        profile.name, profile.activity, profile.ts_errors, profile.bmc_groups
    );
    let project = generate_project(&profile);
    let verifier = Verifier::new();
    let report = verifier.verify_project(&project.sources);

    println!(
        "{} files, {} statements — {} vulnerable file(s), TS {} / BMC {}\n",
        report.files.len(),
        report.num_statements(),
        report.vulnerable_files(),
        report.ts_errors(),
        report.bmc_groups()
    );
    let mut patched_clean = 0usize;
    for file in report.files.iter().filter(|f| !f.is_safe()) {
        println!("== {} ==", file.file);
        for v in &file.vulnerabilities {
            println!(
                "  [{}] ${} -> {} symptom(s)",
                v.class,
                v.root_var,
                v.symptoms.len()
            );
        }
        let src = project.sources.file(&file.file).expect("file exists");
        let (patched, guards) = instrument_bmc(src, file);
        // Re-verify in project context so includes still resolve.
        let mut patched_sources = project.sources.clone();
        patched_sources.add_file(file.file.clone(), patched);
        let after = verifier
            .verify_file(&patched_sources, &file.file)
            .expect("patched file parses");
        println!(
            "  {} guard(s) inserted; re-verification: {}",
            guards.len(),
            if after.is_safe() {
                "CLEAN"
            } else {
                "STILL VULNERABLE"
            }
        );
        if after.is_safe() {
            patched_clean += 1;
        }
    }
    println!(
        "\n{patched_clean}/{} vulnerable files verified clean after automated patching",
        report.vulnerable_files()
    );
    if let Some(r) = report.reduction() {
        println!("instrumentation reduction vs TS: {:.1}%", r * 100.0);
    }
}
