//! Multi-class taint: the paper's §3.1 lattice model beyond two points.
//!
//! The safety-type lattice is instantiated as the powerset of taint
//! kinds `{xss, sqli, shell}`; each sanitizer removes exactly the kinds
//! it neutralizes, and each sink forbids exactly the kinds that exploit
//! it. This catches *wrong-sanitizer* bugs the two-point policy cannot
//! see.
//!
//! ```text
//! cargo run --example multiclass
//! ```

use webssari::{Verifier, VerifierBuilder};

fn main() {
    // A developer diligently "sanitized" everything — with the wrong
    // routines.
    let src = r#"<?php
$name = addslashes($_GET['name']);      // SQL-escaped…
echo "Hello, $name";                    // …but used in HTML: XSS
$id = htmlspecialchars($_GET['id']);    // HTML-escaped…
$q = "SELECT * FROM users WHERE id='$id'";
mysql_query($q);                        // …but used in SQL: injection
$file = addslashes($_GET['f']);
exec("cat " . $file, $out);             // nothing stops shell metachars
"#;
    println!("--- the code -------------------------------------------------");
    println!("{src}");

    let two_point = Verifier::new().verify_source(src, "wrong.php").unwrap();
    println!("--- two-point policy (the paper's experiments) ----------------");
    println!(
        "{} — every value passed through *some* sanitizer, so the\n\
         two-point lattice (tainted/untainted) sees nothing.\n",
        if two_point.is_safe() {
            "VERIFIED (falsely!)"
        } else {
            "vulnerable"
        }
    );

    let mc = VerifierBuilder::new()
        .multiclass()
        .build()
        .verify_source(src, "wrong.php")
        .unwrap();
    println!("--- multi-class policy (powerset lattice) ---------------------");
    for v in &mc.vulnerabilities {
        println!(
            "[{}] sanitize ${} — {} symptom(s): {}",
            v.class,
            v.root_var,
            v.symptoms.len(),
            v.symptoms.join(", ")
        );
    }
    println!();
    for cx in &mc.bmc.counterexamples {
        print!("{}", cx.render(&mc.ai));
    }
    println!(
        "\nThe same pipeline — filter, AI, renaming, SAT — runs unchanged;\n\
         only the lattice and the prelude contracts differ (3 bits per\n\
         type variable instead of 1, joins/meets as table circuits)."
    );
}
