//! Quickstart: verify a PHP snippet, read the grouped error report,
//! and apply the automated patch.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use webssari::{instrument_bmc, Verifier};

fn main() -> Result<(), webssari::VerifyError> {
    let src = r#"<?php
$sid = $_GET['sid'];
$query = "SELECT * FROM groups WHERE sid=$sid";
mysql_query($query);
echo $sid;
"#;
    let verifier = Verifier::new();
    let report = verifier.verify_source(src, "index.php")?;

    println!("--- error report -------------------------------------------");
    print!("{}", report.render_text());

    println!("--- automated patch (BMC mode) -----------------------------");
    let (patched, guards) = instrument_bmc(src, &report);
    println!("{} guard(s) inserted:\n", guards.len());
    println!("{patched}");

    println!("--- assurance ----------------------------------------------");
    let after = verifier.verify_source(&patched, "index.php")?;
    if after.is_safe() {
        println!("patched file VERIFIED: sound guarantee of no taint flows");
    } else {
        println!("patched file still vulnerable (unexpected)");
    }
    Ok(())
}
