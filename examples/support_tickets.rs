//! The PHP Support Tickets stored-XSS case study (paper Figures 1–2).
//!
//! Ticket submission inserts unsanitized user input into the database;
//! the ticket-display page later pulls it back out and builds HTML from
//! it. Both halves are flagged: the INSERT as SQL injection, the
//! display as cross-site scripting — because database reads are
//! untrusted input channels (stored attacks).
//!
//! ```text
//! cargo run --example support_tickets
//! ```

use webssari::php::SourceSet;
use webssari::Verifier;

fn main() {
    let mut project = SourceSet::new();
    // Figure 1 — ticket submission.
    project.add_file(
        "submit.php",
        r#"<?php
include 'db.php';
$query = "INSERT INTO tickets_tickets(tickets_id, tickets_username, tickets_subject, tickets_question) VALUES('" . $_SESSION['username'] . "', '" . $_POST['ticketsubject'] . "', '" . $_POST['message'] . "')";
$result = @mysql_query($query);
"#,
    );
    // Figure 2 — ticket display.
    project.add_file(
        "view.php",
        r#"<?php
include 'db.php';
$query = "SELECT tickets_id, tickets_username, tickets_subject FROM tickets_tickets";
$result = @mysql_query($query);
while ($row = @mysql_fetch_array($result)) {
    extract($row);
    echo "$tickets_username<BR>$tickets_subject<BR><BR>";
}
"#,
    );
    project.add_file(
        "db.php",
        "<?php\n$link = mysql_connect('localhost');\nmysql_select_db('tickets');\n",
    );

    let report = Verifier::new().verify_project(&project);
    println!(
        "project: {} files, {} statements, {} vulnerable file(s)\n",
        report.files.len(),
        report.num_statements(),
        report.vulnerable_files()
    );
    for file in &report.files {
        print!("{}", file.render_text());
        println!();
    }
    println!(
        "TS would insert {} guards; BMC inserts {} — the stored-XSS pair is",
        report.ts_errors(),
        report.bmc_groups()
    );
    println!("caught on both the write path (sqli) and the read path (xss).");
}
