//! The WebSSARI command-line tool: verify PHP trees, print grouped
//! error reports with counterexample traces, and apply runtime-guard
//! patches.
//!
//! ```text
//! webssari verify <path>… [--exact] [--prelude FILE] [--summary]
//! webssari patch  <path>… [--mode bmc|ts] [--write] [--suffix SUF]
//! webssari stages <file.php>
//! ```
//!
//! `verify` exits nonzero when vulnerabilities are found, so the tool
//! can gate CI. `patch` writes `<file><suffix>` next to each vulnerable
//! file (or rewrites in place with `--write`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use webssari::ir::{abstract_interpret, filter_program, FilterOptions, Prelude};
use webssari::php::{parse_source, SourceSet};
use webssari::{
    instrument_bmc, instrument_ts, EngineBuilder, FileOutcome, SolveBudget, Verifier,
    VerifierBuilder,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match command.as_str() {
        "verify" => cmd_verify(rest),
        "lint" => cmd_lint(rest),
        "patch" => cmd_patch(rest),
        "stages" => cmd_stages(rest),
        "serve" => cmd_serve(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
webssari — verify and patch PHP web applications (DSN'04 reproduction)

USAGE:
    webssari verify <path>... [--exact] [--prelude FILE] [--summary]
    webssari lint   <path>... [--sarif FILE] [--prelude FILE]
    webssari patch  <path>... [--mode bmc|ts] [--write] [--suffix SUF]
    webssari stages <file.php>
    webssari serve  [--addr HOST:PORT] [--jobs N] [--cache-dir DIR]
                    [--queue-depth N] [--request-budget-ms MS]
                    [--cache-max-entries N] [--cache-max-mb N]
                    [--read-timeout-ms MS] [--idle-timeout-ms MS]
                    [--threaded]

COMMANDS:
    verify   Check every .php file; print grouped reports with
             counterexample traces. Exits 1 if vulnerabilities exist.
    lint     Static lint pass only (no SAT): taint findings, dead
             sanitizers, unreachable code, approximation points — with
             stable rule ids. Exits 1 if any error-level finding exists.
             With --sarif FILE a SARIF 2.1.0 report is also written.
    patch    Insert runtime sanitization guards. By default writes
             <file>.patched.php; --write rewrites files in place.
    stages   Print every pipeline stage for one file: F(p), AI(F(p)),
             CNF sizes, and counterexamples. With --dimacs FILE the
             renamed constraints are exported for external solvers.
    serve    Run the long-lived verification daemon: POST /verify,
             POST /batch, GET /healthz, GET /metrics (Prometheus).
             The incremental cache stays warm across requests; SIGTERM
             drains in-flight work and flushes it to --cache-dir.

OPTIONS:
    --exact          Use the exact (branch-and-bound) minimal fixing
                     set instead of the greedy heuristic.
    --multiclass     Multi-class taint policy: kind-specific sanitizers
                     over the {xss, sqli, shell} powerset lattice.
    --certify        Emit and re-check DRAT certificates for every
                     assertion that holds (machine-checked soundness).
    --min-guards     Weight the fixing set by introduction points, so
                     patches minimize inserted guard lines.
    --prefer-parameterize
                     Lead SQL-structured vulnerability reports with the
                     \"parameterize the query\" patch shape instead of
                     \"sanitize the variable\".
    --no-screen      Disable the static screening tier (tier-1 discharge
                     and cone-of-influence slicing before SAT). Results
                     are identical either way; this is the escape hatch
                     for timing the raw BMC.
    --sarif FILE     (lint) Also write a SARIF 2.1.0 report.
    --prelude FILE   Load extra UIC/SOC/sanitizer contracts (one per
                     line: `uic f`, `soc f class [args=0,1]`,
                     `sanitizer f`, `superglobal NAME`).
    --summary        One line per file instead of full reports.
    --html FILE      Also write a cross-referenced HTML report.
    --mode bmc|ts    Guard placement strategy (default: bmc).
    --suffix SUF     Patched-file suffix (default: .patched.php).
    --write          Patch files in place.

BATCH ENGINE (verify):
    --jobs N             Verify files on N parallel workers. The report
                         is identical to the sequential one.
    --cache-dir DIR      Incremental cache: unchanged files under an
                         unchanged configuration are not re-verified.
    --solve-budget-ms MS Per-file SAT budget; files that exceed it are
                         reported as TIMEOUT instead of stalling the run.
    --metrics-json FILE  Write per-file timing/cache/solver metrics.

DAEMON (serve):
    --addr HOST:PORT       Bind address (default 127.0.0.1:8077).
    --jobs N               Engine workers per batch, and concurrent HTTP
                           workers (default 2).
    --cache-dir DIR        Persist the incremental cache here; loaded at
                           startup, flushed on graceful shutdown.
    --queue-depth N        Bounded accept queue; beyond it connections
                           are shed with 429 + Retry-After (default 64).
    --request-budget-ms MS Per-request solve deadline — exceeding it
                           yields a JSON \"timeout\" outcome, never a hung
                           connection (default 30000; 0 = unlimited).
    --max-body-kb N        Request body cap in KiB (default 1024).
    --cache-max-entries N  LRU cap on warm-cache entries; least recently
                           used results are evicted past it (default:
                           unlimited).
    --cache-max-mb N       LRU cap on the warm cache's approximate size
                           in MiB (default: unlimited).
    --read-timeout-ms MS   Close connections that dribble a partial
                           request for this long without completing it
                           (default 10000; event loop only).
    --idle-timeout-ms MS   Close idle keep-alive connections after this
                           long (default 30000; event loop only).
    --threaded             Use the legacy thread-per-connection core
                           instead of the keep-alive event loop.";

struct CommonOptions {
    paths: Vec<PathBuf>,
    exact: bool,
    multiclass: bool,
    certify: bool,
    min_guards: bool,
    dimacs: Option<PathBuf>,
    prelude_file: Option<PathBuf>,
    summary: bool,
    html: Option<PathBuf>,
    mode: String,
    suffix: String,
    write: bool,
    jobs: Option<usize>,
    cache_dir: Option<PathBuf>,
    solve_budget_ms: Option<u64>,
    metrics_json: Option<PathBuf>,
    no_screen: bool,
    prefer_parameterize: bool,
    sarif: Option<PathBuf>,
}

fn parse_options(args: &[String]) -> Result<CommonOptions, String> {
    let mut opts = CommonOptions {
        paths: Vec::new(),
        exact: false,
        multiclass: false,
        certify: false,
        min_guards: false,
        dimacs: None,
        prelude_file: None,
        summary: false,
        html: None,
        mode: "bmc".to_owned(),
        suffix: ".patched.php".to_owned(),
        write: false,
        jobs: None,
        cache_dir: None,
        solve_budget_ms: None,
        metrics_json: None,
        no_screen: false,
        prefer_parameterize: false,
        sarif: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--exact" => opts.exact = true,
            "--multiclass" => opts.multiclass = true,
            "--certify" => opts.certify = true,
            "--min-guards" => opts.min_guards = true,
            "--dimacs" => {
                opts.dimacs = Some(PathBuf::from(
                    it.next().ok_or("--dimacs needs a file argument")?,
                ));
            }
            "--summary" => opts.summary = true,
            "--html" => {
                opts.html = Some(PathBuf::from(
                    it.next().ok_or("--html needs a file argument")?,
                ));
            }
            "--write" => opts.write = true,
            "--prelude" => {
                opts.prelude_file = Some(PathBuf::from(
                    it.next().ok_or("--prelude needs a file argument")?,
                ));
            }
            "--mode" => {
                let m = it.next().ok_or("--mode needs bmc|ts")?;
                if m != "bmc" && m != "ts" {
                    return Err(format!("--mode must be bmc or ts, got {m:?}"));
                }
                opts.mode = m.clone();
            }
            "--suffix" => {
                opts.suffix = it.next().ok_or("--suffix needs an argument")?.clone();
            }
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a worker count")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--jobs needs a positive integer, got {n:?}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
                opts.jobs = Some(n);
            }
            "--cache-dir" => {
                opts.cache_dir = Some(PathBuf::from(
                    it.next().ok_or("--cache-dir needs a directory argument")?,
                ));
            }
            "--solve-budget-ms" => {
                let ms = it.next().ok_or("--solve-budget-ms needs a duration")?;
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("--solve-budget-ms needs milliseconds, got {ms:?}"))?;
                opts.solve_budget_ms = Some(ms);
            }
            "--metrics-json" => {
                opts.metrics_json = Some(PathBuf::from(
                    it.next().ok_or("--metrics-json needs a file argument")?,
                ));
            }
            "--no-screen" => opts.no_screen = true,
            "--prefer-parameterize" => opts.prefer_parameterize = true,
            "--sarif" => {
                opts.sarif = Some(PathBuf::from(
                    it.next().ok_or("--sarif needs a file argument")?,
                ));
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if opts.paths.is_empty() {
        return Err("no input paths given".to_owned());
    }
    Ok(opts)
}

/// The prelude implied by `--multiclass`/`--prelude`, shared by the
/// verifier builder and the lint pass.
fn load_prelude(opts: &CommonOptions) -> Result<Prelude, String> {
    let mut prelude = if opts.multiclass {
        Prelude::multiclass().1
    } else {
        Prelude::standard()
    };
    if let Some(file) = &opts.prelude_file {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read prelude {}: {e}", file.display()))?;
        prelude
            .extend_from_str(&text)
            .map_err(|e| format!("bad prelude {}: {e}", file.display()))?;
    }
    Ok(prelude)
}

fn build_verifier(opts: &CommonOptions) -> Result<Verifier, String> {
    let mut builder = VerifierBuilder::new();
    if opts.multiclass {
        builder = builder.multiclass();
    }
    // Install the (possibly extended) prelude; after `.multiclass()`
    // this keeps the multi-class policy but carries the extensions.
    builder = builder.prelude(load_prelude(opts)?);
    if let Some(ms) = opts.solve_budget_ms {
        builder = builder
            .solve_budget(SolveBudget::unlimited().wall_time(std::time::Duration::from_millis(ms)));
    }
    Ok(builder
        .exact_fixing_set(opts.exact)
        .certify(opts.certify)
        .minimize_guard_lines(opts.min_guards)
        .prefer_parameterize(opts.prefer_parameterize)
        .screen(!opts.no_screen)
        .build())
}

/// Collects `.php` files under the given paths into a [`SourceSet`]
/// keyed by paths relative to the closest given root.
fn collect_sources(paths: &[PathBuf]) -> Result<(SourceSet, Vec<(String, PathBuf)>), String> {
    let mut set = SourceSet::new();
    let mut mapping = Vec::new();
    for root in paths {
        if root.is_file() {
            add_file(
                root,
                root.file_name().unwrap().to_string_lossy().as_ref(),
                &mut set,
                &mut mapping,
            )?;
        } else if root.is_dir() {
            walk(root, root, &mut set, &mut mapping)?;
        } else {
            return Err(format!("{}: no such file or directory", root.display()));
        }
    }
    Ok((set, mapping))
}

fn walk(
    root: &Path,
    dir: &Path,
    set: &mut SourceSet,
    mapping: &mut Vec<(String, PathBuf)>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk(root, &path, set, mapping)?;
        } else if path.extension().is_some_and(|e| e == "php") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .into_owned();
            add_file(&path, &rel, set, mapping)?;
        }
    }
    Ok(())
}

fn add_file(
    path: &Path,
    name: &str,
    set: &mut SourceSet,
    mapping: &mut Vec<(String, PathBuf)>,
) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    set.add_file(name, text);
    mapping.push((name.to_owned(), path.to_owned()));
    Ok(())
}

fn cmd_verify(args: &[String]) -> ExitCode {
    let opts = match parse_options(args) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let verifier = match build_verifier(&opts) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let (sources, _) = match collect_sources(&opts.paths) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    if sources.is_empty() {
        return fail("no .php files found");
    }
    // The batch engine path: any engine flag opts in. The sequential
    // path below stays byte-for-byte what it always was.
    if opts.jobs.is_some() || opts.cache_dir.is_some() || opts.metrics_json.is_some() {
        return cmd_verify_engine(&opts, verifier, &sources);
    }
    let report = verifier.verify_project(&sources);
    if opts.summary {
        for file in &report.files {
            println!(
                "{:<40} {:>6} stmts {:>4} TS {:>4} BMC {}",
                file.file,
                file.num_statements,
                file.ts_instrumentations(),
                file.bmc_instrumentations(),
                if file.is_safe() { "ok" } else { "VULNERABLE" }
            );
        }
    } else {
        for file in &report.files {
            print!("{}", file.render_text());
            println!();
        }
    }
    for (file, err) in &report.failed_files {
        eprintln!("SKIPPED {file}: {err}");
    }
    if opts.certify {
        let mut total = 0usize;
        let mut ok = 0usize;
        for file in &report.files {
            total += file.bmc.certificates.len();
            match file.bmc.verify_certificates() {
                Ok(n) => ok += n,
                Err((id, e)) => {
                    eprintln!(
                        "{}: certificate for assertion {id:?} FAILED: {e}",
                        file.file
                    )
                }
            }
        }
        println!("certified assertions: {total} (independently re-checked: {ok})");
    }
    if let Some(html_path) = &opts.html {
        let html = webssari::render_html(&report, &sources);
        if let Err(e) = std::fs::write(html_path, html) {
            return fail(&format!("cannot write {}: {e}", html_path.display()));
        }
        println!("HTML report written to {}", html_path.display());
    }
    println!(
        "{} file(s), {} statements; {} vulnerable file(s); TS errors {}, BMC groups {}{}",
        report.files.len(),
        report.num_statements(),
        report.vulnerable_files(),
        report.ts_errors(),
        report.bmc_groups(),
        report
            .reduction()
            .map(|r| format!(" (instrumentation reduction {:.1}%)", r * 100.0))
            .unwrap_or_default(),
    );
    if report.is_vulnerable() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_verify_engine(opts: &CommonOptions, verifier: Verifier, sources: &SourceSet) -> ExitCode {
    if opts.html.is_some() || opts.certify {
        return fail(
            "--html and --certify need full reports for every file and are \
             not available with --jobs/--cache-dir/--metrics-json",
        );
    }
    let mut builder = EngineBuilder::new()
        .verifier(verifier)
        .workers(opts.jobs.unwrap_or(1));
    if let Some(dir) = &opts.cache_dir {
        builder = builder.cache_dir(dir);
    }
    let report = builder.build().run(sources);
    if opts.summary {
        for file in &report.files {
            let status = match file.summary.outcome {
                FileOutcome::Verified => "ok",
                FileOutcome::Vulnerable => "VULNERABLE",
                FileOutcome::Timeout => "TIMEOUT",
                FileOutcome::ParseError => "PARSE ERROR",
            };
            println!(
                "{:<40} {:>6} stmts {:>4} TS {:>4} BMC {}{}",
                file.summary.file,
                file.summary.num_statements,
                file.summary.ts_errors,
                file.summary.bmc_groups,
                status,
                if file.from_cache { " (cached)" } else { "" },
            );
        }
    } else {
        for file in &report.files {
            print!("{}", file.render_text());
            println!();
        }
    }
    for (file, err) in &report.failed_files {
        eprintln!("SKIPPED {file}: {err}");
    }
    if let Some(e) = &report.cache_error {
        eprintln!("webssari: warning: {e}");
    }
    print!("{}", report.metrics.render_text());
    if let Some(path) = &opts.metrics_json {
        if let Err(e) = std::fs::write(path, report.metrics.to_json()) {
            return fail(&format!("cannot write {}: {e}", path.display()));
        }
        println!("metrics written to {}", path.display());
    }
    println!(
        "{} file(s), {} statements; {} vulnerable file(s), {} timeout(s); \
         TS errors {}, BMC groups {}{}",
        report.files.len(),
        report.num_statements(),
        report.vulnerable_files(),
        report.timeout_files(),
        report.ts_errors(),
        report.bmc_groups(),
        report
            .reduction()
            .map(|r| format!(" (instrumentation reduction {:.1}%)", r * 100.0))
            .unwrap_or_default(),
    );
    if report.is_vulnerable() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_lint(args: &[String]) -> ExitCode {
    use webssari::analysis::{lint_file, to_sarif_json, Severity};

    let opts = match parse_options(args) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let prelude = match load_prelude(&opts) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let (sources, _) = match collect_sources(&opts.paths) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    if sources.is_empty() {
        return fail("no .php files found");
    }
    let filter_options = FilterOptions::default();
    let mut diagnostics = Vec::new();
    for (name, src) in sources.iter() {
        let result = if opts.multiclass {
            lint_file(
                src,
                name,
                &prelude,
                &filter_options,
                &Prelude::multiclass().0,
            )
        } else {
            lint_file(
                src,
                name,
                &prelude,
                &filter_options,
                &webssari::lattice::TwoPoint::new(),
            )
        };
        match result {
            Ok(ds) => diagnostics.extend(ds),
            Err(e) => eprintln!("SKIPPED {name}: {e}"),
        }
    }
    for d in &diagnostics {
        println!("{}", d.render());
    }
    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    println!(
        "{} finding(s) in {} file(s): {} error(s), {} warning(s), {} note(s)",
        diagnostics.len(),
        sources.len(),
        errors,
        warnings,
        diagnostics.len() - errors - warnings,
    );
    if let Some(path) = &opts.sarif {
        if let Err(e) = std::fs::write(path, to_sarif_json(&diagnostics)) {
            return fail(&format!("cannot write {}: {e}", path.display()));
        }
        println!("SARIF report written to {}", path.display());
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_patch(args: &[String]) -> ExitCode {
    let opts = match parse_options(args) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let verifier = match build_verifier(&opts) {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let (sources, mapping) = match collect_sources(&opts.paths) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let report = verifier.verify_project(&sources);
    let mut patched_count = 0usize;
    for file in report.files.iter().filter(|f| !f.is_safe()) {
        let src = sources.file(&file.file).expect("verified file exists");
        let (patched, guards) = if opts.mode == "ts" {
            instrument_ts(src, file)
        } else {
            instrument_bmc(src, file)
        };
        let Some((_, disk_path)) = mapping.iter().find(|(n, _)| n == &file.file) else {
            continue;
        };
        let out_path = if opts.write {
            disk_path.clone()
        } else {
            let mut p = disk_path.as_os_str().to_owned();
            p.push(&opts.suffix);
            PathBuf::from(p)
        };
        if let Err(e) = std::fs::write(&out_path, &patched) {
            return fail(&format!("cannot write {}: {e}", out_path.display()));
        }
        println!(
            "{}: {} guard(s) -> {}",
            file.file,
            guards.len(),
            out_path.display()
        );
        patched_count += 1;
    }
    println!("patched {patched_count} file(s)");
    ExitCode::SUCCESS
}

fn cmd_stages(args: &[String]) -> ExitCode {
    let opts = match parse_options(args) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let [path] = opts.paths.as_slice() else {
        return fail("stages takes exactly one file");
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {}: {e}", path.display())),
    };
    let ast = match parse_source(&src) {
        Ok(p) => p,
        Err(e) => return fail(&format!("parse error: {e}")),
    };
    let prelude = Prelude::standard();
    let name = path.file_name().unwrap().to_string_lossy();
    let f = filter_program(&ast, &src, &name, &prelude, &FilterOptions::default());
    println!("--- F(p) ---------------------------------------------------");
    println!("{f}");
    let ai = abstract_interpret(&f);
    println!("--- AI(F(p)) -----------------------------------------------");
    println!("{ai}");
    println!(
        "diameter {}, |BN| = {}, {} assertion(s)",
        ai.diameter(),
        ai.num_branches,
        ai.num_assertions()
    );
    let enc = webssari::bmc::renaming::encode(&ai, &webssari::lattice::TwoPoint::new());
    println!(
        "renamed constraints: {} CNF vars, {} clauses",
        enc.formula.num_vars(),
        enc.formula.num_clauses()
    );
    if let Some(out_path) = &opts.dimacs {
        match std::fs::File::create(out_path) {
            Ok(mut f) => {
                if let Err(e) = webssari::cnf::write_dimacs(&mut f, &enc.formula) {
                    return fail(&format!("cannot write {}: {e}", out_path.display()));
                }
                println!("DIMACS written to {} (solve with xsat)", out_path.display());
            }
            Err(e) => return fail(&format!("cannot create {}: {e}", out_path.display())),
        }
    }
    let result = webssari::bmc::Xbmc::new(&ai).check_all();
    println!("--- counterexamples ------------------------------------------");
    if result.counterexamples.is_empty() {
        println!("none — every assertion holds (sound guarantee)");
    }
    for cx in &result.counterexamples {
        print!("{}", cx.render(&ai));
    }
    ExitCode::SUCCESS
}

fn cmd_serve(args: &[String]) -> ExitCode {
    use webssari::serve::{Server, ServerConfig};

    let mut config = ServerConfig::default();
    let mut jobs = 2usize;
    let mut cache_dir: Option<PathBuf> = None;
    let mut cache_max_entries: Option<usize> = None;
    let mut cache_max_bytes: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(addr) => config.addr = addr.clone(),
                None => return fail("--addr needs HOST:PORT"),
            },
            "--jobs" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => jobs = n,
                _ => return fail("--jobs needs a positive integer"),
            },
            "--cache-dir" => match it.next() {
                Some(dir) => cache_dir = Some(PathBuf::from(dir)),
                None => return fail("--cache-dir needs a directory argument"),
            },
            "--queue-depth" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => config.queue_depth = n,
                _ => return fail("--queue-depth needs a positive integer"),
            },
            "--request-budget-ms" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(0)) => config.request_budget = None,
                Some(Ok(ms)) => {
                    config.request_budget = Some(std::time::Duration::from_millis(ms));
                }
                _ => return fail("--request-budget-ms needs milliseconds (0 = unlimited)"),
            },
            "--max-body-kb" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => config.max_body_bytes = n * 1024,
                _ => return fail("--max-body-kb needs a positive integer"),
            },
            "--cache-max-entries" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => cache_max_entries = Some(n),
                _ => return fail("--cache-max-entries needs a positive integer"),
            },
            "--cache-max-mb" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => cache_max_bytes = Some(n * 1024 * 1024),
                _ => return fail("--cache-max-mb needs a positive integer"),
            },
            "--read-timeout-ms" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(ms)) if ms >= 1 => {
                    config.read_timeout = std::time::Duration::from_millis(ms);
                }
                _ => return fail("--read-timeout-ms needs milliseconds"),
            },
            "--idle-timeout-ms" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(ms)) if ms >= 1 => {
                    config.idle_timeout = std::time::Duration::from_millis(ms);
                }
                _ => return fail("--idle-timeout-ms needs milliseconds"),
            },
            "--threaded" => config.mode = webssari::serve::ServeMode::Threaded,
            other => return fail(&format!("unknown serve option {other:?}")),
        }
    }
    config.http_workers = jobs;
    let mut builder = EngineBuilder::new().workers(jobs);
    if let Some(dir) = &cache_dir {
        builder = builder.cache_dir(dir);
    }
    if let Some(n) = cache_max_entries {
        builder = builder.cache_max_entries(n);
    }
    if let Some(b) = cache_max_bytes {
        builder = builder.cache_max_bytes(b);
    }

    webssari::serve::install_signal_handlers();
    let handle = match Server::start(config, builder.build()) {
        Ok(h) => h,
        Err(e) => return fail(&format!("cannot start server: {e}")),
    };
    println!(
        "webssari serve: listening on http://{}",
        handle.local_addr()
    );
    println!("routes: POST /verify, POST /batch, GET /healthz, GET /metrics");
    while !webssari::serve::shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("webssari serve: shutdown requested; draining in-flight work");
    match handle.shutdown() {
        Ok(Some(path)) => {
            println!("webssari serve: cache flushed to {}", path.display());
            ExitCode::SUCCESS
        }
        Ok(None) => {
            println!("webssari serve: stopped cleanly (no cache dir configured)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("webssari serve: cache flush failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("webssari: {message}");
    ExitCode::from(2)
}
