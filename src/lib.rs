//! # WebSSARI/xBMC — a reproduction of *Verifying Web Applications
//! Using Bounded Model Checking* (DSN 2004)
//!
//! This umbrella crate re-exports the reproduction's subsystems:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`php`] | `php-front` | lexer, parser, AST, include resolution |
//! | [`lattice`] | `taint-lattice` | security-type lattices (Denning model) |
//! | [`ir`] | `webssari-ir` | filter `F(p)`, preludes, abstract interpretation `AI(F(p))` |
//! | [`cnf`] | `cnf` | CNF formulas, Tseitin builder, DIMACS |
//! | [`sat`] | `sat` | CDCL SAT solver (ZChaff stand-in) |
//! | [`bmc`] | `xbmc` | bounded model checker, both encodings, counterexample enumeration |
//! | [`fixes`] | `fixes` | replacement sets, MINIMUM-INTERSECTING-SET, greedy/exact solvers |
//! | [`ts`] | `typestate` | the TS baseline (flow-sensitive taint dataflow) |
//! | [`analysis`] | `webssari-analysis` | static screening: cone-of-influence slicing, tiered TS→BMC discharge, lint + SARIF |
//! | [`core`] | `webssari-core` | the [`Verifier`] pipeline, reports, instrumentor |
//! | [`engine`] | `webssari-engine` | parallel batch verification: worker pool, cache, budgets, metrics |
//! | [`serve`] | `webssari-serve` | long-running verification daemon: HTTP API, bounded queue, Prometheus metrics |
//! | [`corpus_gen`] | `corpus` | calibrated synthetic SourceForge corpus |
//!
//! # Quickstart
//!
//! ```
//! use webssari::Verifier;
//!
//! let src = r#"<?php
//! $sid = $_GET['sid'];
//! $q = "SELECT * FROM groups WHERE sid=$sid";
//! mysql_query($q);
//! "#;
//! let report = Verifier::new().verify_source(src, "index.php")?;
//! assert!(!report.is_safe());
//! // The SQL injection is reported as one group, rooted at $sid.
//! assert_eq!(report.vulnerabilities[0].class, "sqli");
//! assert_eq!(report.vulnerabilities[0].root_var, "sid");
//! # Ok::<(), webssari::VerifyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use webssari_core::{
    instrument_bmc, instrument_ts, render_html, FileOutcome, FileReport, Instrumentation,
    ProjectReport, SolveBudget, Verifier, VerifierBuilder, VerifyError, Vulnerability,
};
pub use webssari_engine::{Engine, EngineBuilder, EngineMetrics, EngineReport};

/// PHP front end: lexer, parser, AST, includes.
pub mod php {
    pub use php_front::*;
}

/// Security-type lattices.
pub mod lattice {
    pub use taint_lattice::*;
}

/// Filtered command language and abstract interpretation.
pub mod ir {
    pub use webssari_ir::*;
}

/// CNF formula layer.
pub mod cnf {
    pub use ::cnf::*;
}

/// CDCL SAT solver.
pub mod sat {
    pub use ::sat::*;
}

/// Bounded model checking (xBMC).
pub mod bmc {
    pub use xbmc::*;
}

/// Counterexample analysis and minimal fixing sets.
pub mod fixes {
    pub use ::fixes::*;
}

/// The typestate baseline.
pub mod ts {
    pub use typestate::*;
}

/// Static screening and diagnostics: cone-of-influence slicing, tiered
/// discharge, taint lint with SARIF export.
pub mod analysis {
    pub use webssari_analysis::*;
}

/// The full pipeline (same items as the crate root).
pub mod core {
    pub use webssari_core::*;
}

/// Parallel batch verification: worker pool, incremental cache,
/// per-job budgets, metrics.
pub mod engine {
    pub use webssari_engine::*;
}

/// The verification daemon: HTTP API over the engine, bounded
/// queueing, per-request budgets, Prometheus metrics.
pub mod serve {
    pub use webssari_serve::*;
}

/// Synthetic corpus generation.
pub mod corpus_gen {
    pub use corpus::*;
}
