//! Offline stand-in for the `crossbeam` facade crate.
//!
//! Provides the two pieces this workspace uses:
//!
//! * [`scope`] — crossbeam-utils style scoped threads, implemented on
//!   `std::thread::scope` (stable since 1.63) with crossbeam's
//!   `Result`-returning signature.
//! * [`channel`] — multi-producer multi-consumer FIFO channels
//!   (`unbounded`), implemented with a `Mutex<VecDeque>` + `Condvar`.
//!   Throughput is far below the real crossbeam's lock-free queues but
//!   the semantics (clone-able `Sender`/`Receiver`, disconnect on last
//!   sender drop) match.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A scope handle passed to [`scope`]'s closure; spawn threads with
/// [`Scope::spawn`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread.
    ///
    /// Crossbeam passes the scope back into the closure so nested
    /// spawns are possible; every caller in this workspace ignores it
    /// (`|_| …`), so the stand-in passes a unit placeholder instead,
    /// which binds to the same `_` pattern.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Creates a scope for spawning threads that may borrow from the
/// caller's stack. All spawned threads are joined before `scope`
/// returns. Returns `Err` with the panic payload if any thread (or the
/// closure itself) panicked — crossbeam's contract.
///
/// # Errors
///
/// Returns the boxed panic payload of the first observed panic.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope, 'a> FnOnce(&'a Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

pub mod channel {
    //! MPMC FIFO channels (subset of `crossbeam-channel`).

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half; clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone freely (each message is delivered to
    /// exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The channel is disconnected: no receiver remains.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is disconnected and empty.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message, waking one waiting receiver.
        ///
        /// # Errors
        ///
        /// Returns the message back if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking while the channel is
        /// empty but still has senders.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and every
        /// sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .ready
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking receive attempt; `None` when currently empty
        /// (regardless of sender liveness).
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .pop_front()
        }

        /// A blocking iterator over messages, ending at disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers -= 1;
        }
    }

    /// Blocking message iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_and_returns() {
        let mut data = [0u64; 8];
        let r = scope(|s| {
            for chunk in data.chunks_mut(2) {
                s.spawn(move |_| {
                    for x in chunk {
                        *x += 1;
                    }
                });
            }
            42
        });
        assert_eq!(r.expect("no panics"), 42);
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn scope_propagates_panics_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_fifo_single_thread() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn channel_mpmc_delivers_each_message_once() {
        let (tx, rx) = channel::unbounded::<usize>();
        let (out_tx, out_rx) = channel::unbounded::<usize>();
        scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let out = out_tx.clone();
                s.spawn(move |_| {
                    for v in rx.iter() {
                        out.send(v).unwrap();
                    }
                });
            }
            drop(rx);
            drop(out_tx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
        })
        .expect("workers ok");
        let mut got: Vec<usize> = out_rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
