//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The container cannot reach crates.io, so this vendored crate
//! provides the exact surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::random_range` over integer
//! ranges, and `Rng::random_bool`. The generator is xoshiro256**
//! seeded through SplitMix64 — deterministic for a given seed, which
//! is all the corpus generator and benches rely on.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 high bits give a uniform f64 in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let x = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(x) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let x = (rng.next_u64() as u128) % span;
                ((start as u128) + x) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = (rng.next_u64() as u128) % span;
                (self.start as i128 + x as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let x = (rng.next_u64() as u128) % span;
                (start as i128 + x as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            StdRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..8);
            assert!((3..8).contains(&x));
            let y: u32 = rng.random_range(0..5u32);
            assert!(y < 5);
            let z: i64 = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}
