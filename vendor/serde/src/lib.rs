//! Offline stand-in for `serde`.
//!
//! The build container has no network and no crates.io mirror, so the
//! real `serde` cannot be fetched. Nothing in this workspace performs
//! actual serde serialization (there is no `serde_json` dependency);
//! the `#[derive(Serialize, Deserialize)]` attributes only declare
//! intent. This crate supplies the two marker traits and, behind the
//! `derive` feature, no-op derive macros, keeping every annotated type
//! source-compatible with the real crate.

/// Marker trait matching `serde::Serialize`'s name and namespace.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name and namespace.
pub trait Deserialize<'de> {}

/// Blanket-style impls for common std types so manual bounds (if any
/// appear later) keep working.
macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {}
          impl<'de> Deserialize<'de> for $t {})*
    };
}

impl_markers!(bool, char, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl Serialize for &str {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
