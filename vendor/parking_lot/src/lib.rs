//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API
//! (`lock()` returns the guard directly; a poisoned std lock is
//! recovered rather than propagated, matching parking_lot's semantics
//! of not poisoning at all).

use std::sync::PoisonError;

/// A mutex with parking_lot's non-poisoning `lock` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// An RAII mutex guard.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared read guard.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
