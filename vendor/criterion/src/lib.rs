//! Offline stand-in for `criterion`.
//!
//! The container has no crates.io access, so this vendored crate
//! implements just enough of criterion's API for the workspace's
//! benches to compile and produce useful wall-clock numbers: a few
//! timed samples per benchmark with mean / min / max printed to
//! stdout. There is no statistical analysis, HTML report, or baseline
//! comparison.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings and the entry point handed to benchmark
/// functions by `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, None, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: `name/parameter` or bare parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] accepted by the `bench_*` methods.
pub trait IntoBenchmarkId {
    /// Converts into a benchmark id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Units of work per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, recording one sample per configured sample count.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // One untimed warm-up, then calibrate iterations so a sample
        // takes a measurable slice of time without dragging on.
        let warmup = Instant::now();
        black_box(f());
        let once = warmup.elapsed();
        self.iters_per_sample = if once < Duration::from_micros(50) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)) as u64
        } else {
            1
        }
        .max(1);

        let samples = self.samples.capacity();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => {
                format!("  {:.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Throughput::Bytes(n) => {
                format!("  {:.0} B/s", n as f64 / mean.as_secs_f64())
            }
        })
        .unwrap_or_default();
    println!("{label:<48} mean {mean:>12?}  min {min:>12?}  max {max:>12?}{rate}");
}

/// Declares a function running each target against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        (1..=n)
            .fold((0u64, 1u64), |(a, b), _| (b, a.wrapping_add(b)))
            .0
    }

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("fib20", |b| b.iter(|| fib(black_box(20))));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        for n in [10u64, 20] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| fib(n));
            });
        }
        group.bench_function(BenchmarkId::new("named", 5), |b| b.iter(|| fib(5)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_all_shapes() {
        benches();
    }
}
