//! No-op `Serialize`/`Deserialize` derives for the offline serde
//! stand-in. The emitted impls are empty: the marker traits in the
//! stub `serde` crate have no required items.
//!
//! Implemented against the bare `proc_macro` API (no `syn`/`quote`,
//! which are equally unfetchable here). Supports plain structs and
//! enums without generic parameters — the only shapes this workspace
//! derives on.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the item name following the `struct`/`enum` keyword.
fn item_name(input: &TokenStream) -> String {
    let mut saw_keyword = false;
    for tt in input.clone() {
        // Attribute bodies, visibility groups, etc. are skipped: only
        // bare identifiers matter here.
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive (offline stub): could not find struct/enum name");
}

/// Panics when the derived item has generic parameters: the stub's
/// name-only parser cannot forward them faithfully, and nothing in the
/// workspace needs it.
fn reject_generics(input: &TokenStream, name: &str) {
    let mut after_name = false;
    for tt in input.clone() {
        match &tt {
            TokenTree::Ident(id) if id.to_string() == *name => after_name = true,
            TokenTree::Punct(p) if after_name => {
                if p.as_char() == '<' {
                    panic!("serde_derive (offline stub): generic type {name} is unsupported");
                }
                return;
            }
            TokenTree::Group(_) if after_name => return,
            _ => {}
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(&input);
    reject_generics(&input, &name);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(&input);
    reject_generics(&input, &name);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
