//! Offline stand-in for `proptest`.
//!
//! The container has no crates.io access, so this vendored crate
//! reimplements the subset of proptest the workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map`,
//! `prop_recursive`, and `boxed`; [`strategy::Just`]; [`arbitrary::any`];
//! range and string-pattern strategies; `prop::collection::vec` and
//! `prop::option::of`; and the `proptest!`, `prop_oneof!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, and
//! `prop_assume!` macros.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (reproducible by construction), there is
//! no shrinking (the failing case index and message are reported
//! as-is), and string strategies support only literal patterns plus the
//! `.{m,n}` / `[chars]{m,n}` forms.

pub mod test_runner {
    //! Deterministic RNG and run configuration.

    /// Per-run configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// xoshiro256** seeded from the test name (FNV-1a) so every test
    /// has its own reproducible stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Creates the RNG for a named test.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self::from_seed(h)
        }

        /// Creates the RNG from a raw seed.
        pub fn from_seed(seed: u64) -> Self {
            let mut st = seed;
            let mut next = || {
                st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = st;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A generator of random values of one type.
    ///
    /// Unlike the real proptest there is no value tree / shrinking:
    /// `generate` produces the final value directly.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> O + 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| f(inner.generate(rng)))
        }

        /// Generates a value, then uses it to pick the next strategy.
        fn prop_flat_map<O, S, F>(self, f: F) -> BoxedStrategy<O>
        where
            Self: Sized + 'static,
            S: Strategy<Value = O> + 'static,
            F: Fn(Self::Value) -> S + 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| f(inner.generate(rng)).generate(rng))
        }

        /// Discards generated values failing `f` (bounded retries).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| {
                for _ in 0..1000 {
                    let v = inner.generate(rng);
                    if f(&v) {
                        return v;
                    }
                }
                panic!("prop_filter: could not satisfy {whence} in 1000 draws");
            })
        }

        /// Builds a bounded-depth recursive strategy: values are drawn
        /// from `self` (the leaf) or from up to `depth` applications of
        /// `recurse` over the previous level. The `_desired_size` and
        /// `_expected_branch_size` tuning knobs of the real crate are
        /// accepted and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + Clone + 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let rec = recurse(cur).boxed();
                // Leaf-biased so expected size stays small.
                cur = one_of(vec![(2, leaf.clone()), (1, rec)]);
            }
            cur
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| inner.generate(rng))
        }
    }

    /// A clone-able type-erased strategy.
    pub struct BoxedStrategy<T> {
        gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen_fn: Rc::clone(&self.gen_fn),
            }
        }
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a generation closure.
        pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy { gen_fn: Rc::new(f) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen_fn)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice among erased strategies (backs `prop_oneof!`).
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn one_of<T>(arms: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T>
    where
        T: 'static,
    {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof needs at least one weighted arm");
        BoxedStrategy::from_fn(move |rng| {
            let mut pick = rng.below(total);
            for (w, s) in &arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights covered the whole draw range")
        })
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let x = (rng.next_u64() as u128) % span;
                    (self.start as u128).wrapping_add(x) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128) - (start as u128) + 1;
                    let x = (rng.next_u64() as u128) % span;
                    ((start as u128) + x) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let x = (rng.next_u64() as u128) % span;
                    (self.start as i128 + x as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u128;
                    let x = (rng.next_u64() as u128) % span;
                    (start as i128 + x as i128) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// String-pattern strategies: `".{m,n}"`, `"[chars]{m,n}"` (with
    /// `\t`/`\n`/`\r`/`\\` escapes and `a-z` ranges), or a literal.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let Some((class, min, max)) = parse_pattern(pattern) else {
            return pattern.to_owned(); // literal
        };
        let len = min + rng.below((max - min + 1) as u64) as usize;
        let mut out = String::new();
        for _ in 0..len {
            match &class {
                CharClass::Any => out.push(random_any_char(rng)),
                CharClass::Set(chars) => {
                    out.push(chars[rng.below(chars.len() as u64) as usize]);
                }
            }
        }
        out
    }

    enum CharClass {
        Any,
        Set(Vec<char>),
    }

    /// Parses `X{m,n}` where `X` is `.` or a `[...]` class. Returns
    /// `None` for anything else (treated as a literal).
    fn parse_pattern(pattern: &str) -> Option<(CharClass, usize, usize)> {
        let (class_part, rest) = if let Some(rest) = pattern.strip_prefix('.') {
            (CharClass::Any, rest)
        } else if let Some(after) = pattern.strip_prefix('[') {
            let close = after.find(']')?;
            (
                CharClass::Set(parse_class(&after[..close])),
                &after[close + 1..],
            )
        } else {
            return None;
        };
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (m, n) = counts.split_once(',')?;
        let min: usize = m.trim().parse().ok()?;
        let max: usize = n.trim().parse().ok()?;
        (min <= max).then_some((class_part, min, max))
    }

    fn parse_class(body: &str) -> Vec<char> {
        let mut chars = Vec::new();
        let mut it = body.chars().peekable();
        while let Some(c) = it.next() {
            let c = if c == '\\' {
                match it.next() {
                    Some('t') => '\t',
                    Some('n') => '\n',
                    Some('r') => '\r',
                    Some(other) => other,
                    None => break,
                }
            } else {
                c
            };
            // Range like a-z.
            if it.peek() == Some(&'-') {
                let mut clone = it.clone();
                clone.next(); // consume '-'
                if let Some(&hi) = clone.peek() {
                    if hi != ']' && (c as u32) <= (hi as u32) {
                        it = clone;
                        it.next();
                        for x in (c as u32)..=(hi as u32) {
                            if let Some(ch) = char::from_u32(x) {
                                chars.push(ch);
                            }
                        }
                        continue;
                    }
                }
            }
            chars.push(c);
        }
        assert!(!chars.is_empty(), "empty character class");
        chars
    }

    /// `.`-class characters: mostly printable ASCII with occasional
    /// whitespace and multibyte code points to stress lexers.
    fn random_any_char(rng: &mut TestRng) -> char {
        match rng.below(20) {
            0 => '\n',
            1 => '\t',
            2 => 'λ',
            3 => '€',
            _ => char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or(' '),
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap_or(' ')
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{BoxedStrategy, Strategy};

    /// A size specification for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
    {
        let size = size.into();
        BoxedStrategy::from_fn(move |rng| {
            let span = (size.max - size.min + 1) as u64;
            let len = size.min + rng.below(span) as usize;
            (0..len).map(|_| element.generate(rng)).collect()
        })
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::{BoxedStrategy, Strategy};

    /// `None` about a quarter of the time, `Some(value)` otherwise.
    pub fn of<S>(element: S) -> BoxedStrategy<Option<S::Value>>
    where
        S: Strategy + 'static,
    {
        BoxedStrategy::from_fn(move |rng| {
            if rng.below(4) == 0 {
                None
            } else {
                Some(element.generate(rng))
            }
        })
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    //! Everything a property test file needs.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]`-able function running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__config.cases {
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $(let $arg = {
                                let __strategy = $strat;
                                $crate::strategy::Strategy::generate(&__strategy, &mut __rng)
                            };)+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__message) = __outcome {
                        ::std::panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            __message
                        );
                    }
                }
            }
        )*
    };
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current case with a message if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current case if the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`: {:?} != {:?}",
                stringify!($left), stringify!($right), __l, __r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`: both {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            ));
        }
    }};
}

/// Skips the current case (counts as passing) if the condition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in 1u32..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0usize..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuple_and_map(pair in (0usize..4, any::<bool>()).prop_map(|(a, b)| (a * 2, b))) {
            prop_assert_eq!(pair.0 % 2, 0);
        }

        #[test]
        fn oneof_picks_arms(x in prop_oneof![Just(1usize), Just(2usize), 0usize..1]) {
            prop_assert!(x <= 2);
        }

        #[test]
        fn string_patterns(pad in "[ \t\n]{0,5}", soup in ".{0,20}") {
            prop_assert!(pad.len() <= 5);
            prop_assert!(pad.chars().all(|c| c == ' ' || c == '\t' || c == '\n'));
            prop_assert!(soup.chars().count() <= 20);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[derive(Clone, Debug)]
    enum Tree {
        Leaf(usize),
        Node(Vec<Tree>),
    }

    impl Tree {
        fn depth(&self) -> usize {
            match self {
                Tree::Leaf(_) => 0,
                Tree::Node(children) => 1 + children.iter().map(Tree::depth).max().unwrap_or(0),
            }
        }

        fn leaf_max(&self) -> usize {
            match self {
                Tree::Leaf(n) => *n,
                Tree::Node(children) => children.iter().map(Tree::leaf_max).max().unwrap_or(0),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursion_is_depth_bounded(
            t in (0usize..8).prop_map(Tree::Leaf).prop_recursive(3, 16, 3, |inner| {
                prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
            })
        ) {
            prop_assert!(t.depth() <= 3);
            prop_assert!(t.leaf_max() < 8);
        }

        #[test]
        fn option_of_mixes(opts in prop::collection::vec(prop::option::of(0usize..3), 32..33)) {
            // With 32 draws at 3:1 odds, both variants all-missing is
            // astronomically unlikely under any seed.
            prop_assert!(opts.iter().any(Option::is_some));
        }
    }

    #[test]
    fn deterministic_given_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        let s = crate::collection::vec(0usize..100, 5..10);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
