//! The filtered command language `F(p)` (paper §3.2).
//!
//! ```text
//! c ::= x := e | fi(X) | fo(X) | stop | if e then c1 else c2
//!     | while e do c | c1 ; c2
//! e ::= x | n | e1 ~ e2
//! ```
//!
//! UIC calls are folded into expressions as constants of the channel's
//! postcondition level (retrieving data *is* assigning it a type), and
//! SOC calls appear as [`FCmd::Soc`] carrying their precondition bound.

use std::fmt;

use taint_lattice::Elem;
use webssari_sinks::SqlSinkMeta;

use crate::site::Site;
use crate::vartable::{VarId, VarTable};

/// What property an assertion states about its argument variables.
///
/// The paper's SOC preconditions are opaque: "every argument below the
/// bound". [`AssertKind::SqlStructure`] refines that for query-shaped
/// sinks whose query template resolved: the checked variables are the
/// ones concatenated into the query *text* (the SQLI positions), and
/// the metadata records the statement shape so reports and fixes can
/// suggest parameterization instead of sanitization.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum AssertKind {
    /// An opaque sensitive-output-channel precondition (paper §3.2).
    #[default]
    Soc,
    /// A structural SQL precondition: the checked variables flow into
    /// the query text of a resolved SQL template.
    SqlStructure(SqlSinkMeta),
}

impl AssertKind {
    /// Whether this is a structural SQL assertion.
    pub fn is_sql_structure(&self) -> bool {
        matches!(self, AssertKind::SqlStructure(_))
    }
}

/// One modeled write to a cross-request store: the synthetic variable
/// `store::<key>#w<k>` holds the written level after filtering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreWrite {
    /// The synthetic write variable.
    pub var: VarId,
    /// Store identity (table name, session/file key, or `*`).
    pub key: String,
    /// Source location of the writing sink call.
    pub site: Site,
}

/// One modeled read from a cross-request store: the reading expression
/// was lowered to the synthetic cell variable `store::<key>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreRead {
    /// The synthetic cell variable the read observes.
    pub var: VarId,
    /// Store identity the read resolves to.
    pub key: String,
    /// Source location of the reading fetch.
    pub site: Site,
}

/// An information-flow expression: the safety type of the value is the
/// join of a constant base level and the types of the read variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FExpr {
    /// A constant of the given safety level (`t_n = ⊥` for literals;
    /// UIC postcondition levels for untrusted channel reads).
    Const(Elem),
    /// A variable read (`t_x`).
    Var(VarId),
    /// A binary/interpolation combination: `t_{e1 ~ e2} = t_e1 ⊔ t_e2`.
    Join(Vec<FExpr>),
}

impl FExpr {
    /// All variables read by the expression.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            FExpr::Const(_) => {}
            FExpr::Var(v) => out.push(*v),
            FExpr::Join(parts) => {
                for p in parts {
                    p.collect_vars(out);
                }
            }
        }
    }

    /// The constant part of the expression: the join of all `Const`
    /// levels, given the lattice join as a closure.
    pub fn const_base(&self, bottom: Elem, join: &impl Fn(Elem, Elem) -> Elem) -> Elem {
        match self {
            FExpr::Const(e) => *e,
            FExpr::Var(_) => bottom,
            FExpr::Join(parts) => parts
                .iter()
                .map(|p| p.const_base(bottom, join))
                .fold(bottom, join),
        }
    }
}

/// A filtered command.
#[derive(Clone, Debug, PartialEq)]
pub enum FCmd {
    /// `x := e`, optionally meeting the result with a constant `mask`
    /// (kind-specific sanitizers *remove* taint kinds:
    /// `t_x = t_e ⊓ mask`).
    Assign {
        /// Assigned variable.
        var: VarId,
        /// Right-hand side.
        expr: FExpr,
        /// Kinds kept after sanitization (`None` = no masking).
        mask: Option<Elem>,
        /// Source location.
        site: Site,
    },
    /// `fo(X)` — a sensitive output channel call whose precondition
    /// requires `∀x ∈ X: t_x < bound`.
    Soc {
        /// The channel (function) name.
        func: String,
        /// Argument variables checked by the precondition.
        args: Vec<VarId>,
        /// The precondition's bound `τ_r`.
        bound: Elem,
        /// `true` for the paper's strict `t < τ_r`; `false` for the
        /// non-strict `t ≤ τ_r` used by multi-class policies.
        strict: bool,
        /// What the precondition states ([`AssertKind::Soc`] for the
        /// paper's opaque channel check).
        kind: AssertKind,
        /// Source location of the call.
        site: Site,
    },
    /// `if e then c1 else c2` — the condition is treated as
    /// nondeterministic (paper §3.2).
    If {
        /// Then-branch commands.
        then_cmds: Vec<FCmd>,
        /// Else-branch commands.
        else_cmds: Vec<FCmd>,
        /// Source location of the condition.
        site: Site,
    },
    /// `while e do c` — deconstructed into a selection by `AI`.
    While {
        /// Loop-body commands.
        body: Vec<FCmd>,
        /// Source location of the loop header.
        site: Site,
    },
    /// `stop` — terminates execution (`exit`, top-level `return`).
    Stop {
        /// Source location.
        site: Site,
    },
}

impl FCmd {
    /// The command's source site.
    pub fn site(&self) -> &Site {
        match self {
            FCmd::Assign { site, .. }
            | FCmd::Soc { site, .. }
            | FCmd::If { site, .. }
            | FCmd::While { site, .. }
            | FCmd::Stop { site } => site,
        }
    }
}

/// A filtered program: `F(p)`.
#[derive(Clone, Debug, Default)]
pub struct FProgram {
    /// Interned variables.
    pub vars: VarTable,
    /// Top-level command sequence.
    pub cmds: Vec<FCmd>,
    /// Call sites where the recursion/inlining depth cutoff degraded a
    /// user-function call to the join of its arguments. Each entry is an
    /// over-approximation point downstream diagnostics can report.
    pub recursion_cutoffs: Vec<Site>,
    /// Modeled writes to cross-request stores (tainted `INSERT`s,
    /// `$_SESSION`/file writes), in program order.
    pub store_writes: Vec<StoreWrite>,
    /// Modeled reads from cross-request stores (fetches of resolved
    /// `SELECT` handles, `$_SESSION` reads), in program order.
    pub store_reads: Vec<StoreRead>,
}

impl FProgram {
    /// Total number of commands, recursively.
    pub fn num_commands(&self) -> usize {
        fn count(cmds: &[FCmd]) -> usize {
            cmds.iter()
                .map(|c| {
                    1 + match c {
                        FCmd::If {
                            then_cmds,
                            else_cmds,
                            ..
                        } => count(then_cmds) + count(else_cmds),
                        FCmd::While { body, .. } => count(body),
                        _ => 0,
                    }
                })
                .sum()
        }
        count(&self.cmds)
    }

    /// Number of SOC commands (potential assertion sites), recursively.
    pub fn num_socs(&self) -> usize {
        fn count(cmds: &[FCmd]) -> usize {
            cmds.iter()
                .map(|c| match c {
                    FCmd::Soc { .. } => 1,
                    FCmd::If {
                        then_cmds,
                        else_cmds,
                        ..
                    } => count(then_cmds) + count(else_cmds),
                    FCmd::While { body, .. } => count(body),
                    _ => 0,
                })
                .sum()
        }
        count(&self.cmds)
    }
}

impl fmt::Display for FProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn fmt_expr(e: &FExpr, vars: &VarTable, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match e {
                FExpr::Const(c) => write!(f, "const:{c}"),
                FExpr::Var(v) => write!(f, "${}", vars.name(*v)),
                FExpr::Join(parts) => {
                    for (i, p) in parts.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ~ ")?;
                        }
                        fmt_expr(p, vars, f)?;
                    }
                    Ok(())
                }
            }
        }
        fn fmt_cmds(
            cmds: &[FCmd],
            vars: &VarTable,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            for c in cmds {
                for _ in 0..depth {
                    write!(f, "  ")?;
                }
                match c {
                    FCmd::Assign {
                        var, expr, mask, ..
                    } => {
                        write!(f, "${} := ", vars.name(*var))?;
                        fmt_expr(expr, vars, f)?;
                        if let Some(m) = mask {
                            write!(f, " ⊓ {m}")?;
                        }
                        writeln!(f, ";")?;
                    }
                    FCmd::Soc {
                        func, args, bound, ..
                    } => {
                        write!(f, "{func}(")?;
                        for (i, a) in args.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "${}", vars.name(*a))?;
                        }
                        writeln!(f, ") requires < {bound};")?;
                    }
                    FCmd::If {
                        then_cmds,
                        else_cmds,
                        ..
                    } => {
                        writeln!(f, "if * then")?;
                        fmt_cmds(then_cmds, vars, depth + 1, f)?;
                        if !else_cmds.is_empty() {
                            for _ in 0..depth {
                                write!(f, "  ")?;
                            }
                            writeln!(f, "else")?;
                            fmt_cmds(else_cmds, vars, depth + 1, f)?;
                        }
                    }
                    FCmd::While { body, .. } => {
                        writeln!(f, "while * do")?;
                        fmt_cmds(body, vars, depth + 1, f)?;
                    }
                    FCmd::Stop { .. } => writeln!(f, "stop;")?,
                }
            }
            Ok(())
        }
        fmt_cmds(&self.cmds, &self.vars, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taint_lattice::{Lattice, TwoPoint};

    fn site() -> Site {
        Site::synthetic("t.php", "test")
    }

    #[test]
    fn fexpr_vars_are_collected() {
        let mut t = VarTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let e = FExpr::Join(vec![
            FExpr::Var(a),
            FExpr::Const(TwoPoint::UNTAINTED),
            FExpr::Join(vec![FExpr::Var(b)]),
        ]);
        assert_eq!(e.vars(), vec![a, b]);
    }

    #[test]
    fn fexpr_const_base_joins_constants() {
        let l = TwoPoint::new();
        let e = FExpr::Join(vec![
            FExpr::Const(TwoPoint::UNTAINTED),
            FExpr::Const(TwoPoint::TAINTED),
        ]);
        let base = e.const_base(l.bottom(), &|a, b| l.join(a, b));
        assert_eq!(base, TwoPoint::TAINTED);
    }

    #[test]
    fn num_commands_and_socs_recurse() {
        let mut vars = VarTable::new();
        let x = vars.intern("x");
        let p = FProgram {
            vars,
            recursion_cutoffs: Vec::new(),
            store_writes: Vec::new(),
            store_reads: Vec::new(),
            cmds: vec![
                FCmd::Assign {
                    var: x,
                    expr: FExpr::Const(TwoPoint::TAINTED),
                    mask: None,
                    site: site(),
                },
                FCmd::If {
                    then_cmds: vec![FCmd::Soc {
                        func: "echo".into(),
                        args: vec![x],
                        bound: TwoPoint::TAINTED,
                        strict: true,
                        kind: AssertKind::Soc,
                        site: site(),
                    }],
                    else_cmds: vec![FCmd::Stop { site: site() }],
                    site: site(),
                },
                FCmd::While {
                    body: vec![FCmd::Soc {
                        func: "mysql_query".into(),
                        args: vec![x],
                        bound: TwoPoint::TAINTED,
                        strict: true,
                        kind: AssertKind::Soc,
                        site: site(),
                    }],
                    site: site(),
                },
            ],
        };
        assert_eq!(p.num_commands(), 6);
        assert_eq!(p.num_socs(), 2);
        let text = p.to_string();
        assert!(text.contains("$x :="));
        assert!(text.contains("echo($x)"));
        assert!(text.contains("while * do"));
        assert!(text.contains("stop;"));
    }
}
