use std::fmt;

use php_front::Span;

/// Where an IR command came from in the original PHP source.
///
/// Sites survive filtering, abstract interpretation, renaming, and
/// constraint generation, so counterexample traces and runtime-guard
/// insertions can point back at concrete `file:line` locations.
///
/// # Examples
///
/// ```
/// use php_front::Span;
/// use webssari_ir::Site;
///
/// let s = Site::new("index.php", 12, Span::new(100, 130), "$q = \"id=$id\"");
/// assert_eq!(s.to_string(), "index.php:12");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Site {
    /// Source file name.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Byte span in the file.
    pub span: Span,
    /// A short source snippet for reports.
    pub snippet: String,
}

impl Site {
    /// Maximum snippet length retained (characters).
    pub const MAX_SNIPPET: usize = 80;

    /// Creates a site, truncating the snippet to [`Site::MAX_SNIPPET`].
    pub fn new(file: impl Into<String>, line: u32, span: Span, snippet: &str) -> Self {
        let snippet = snippet.trim();
        let snippet = if snippet.chars().count() > Self::MAX_SNIPPET {
            let cut: String = snippet.chars().take(Self::MAX_SNIPPET - 1).collect();
            format!("{cut}…")
        } else {
            snippet.to_owned()
        };
        Site {
            file: file.into(),
            line,
            span,
            snippet,
        }
    }

    /// A synthetic site for commands with no direct source location
    /// (e.g. implicit parameter-binding assignments).
    pub fn synthetic(file: impl Into<String>, detail: &str) -> Self {
        Site {
            file: file.into(),
            line: 0,
            span: Span::default(),
            snippet: detail.to_owned(),
        }
    }

    /// Whether this site was synthesized rather than read from source.
    pub fn is_synthetic(&self) -> bool {
        self.line == 0
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            write!(f, "{} (synthetic: {})", self.file, self.snippet)
        } else {
            write!(f, "{}:{}", self.file, self.line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snippet_is_truncated() {
        let long = "x".repeat(200);
        let s = Site::new("f.php", 1, Span::default(), &long);
        assert!(s.snippet.chars().count() <= Site::MAX_SNIPPET);
        assert!(s.snippet.ends_with('…'));
    }

    #[test]
    fn snippet_is_trimmed() {
        let s = Site::new("f.php", 1, Span::default(), "  echo $x;  ");
        assert_eq!(s.snippet, "echo $x;");
    }

    #[test]
    fn synthetic_sites_display_detail() {
        let s = Site::synthetic("f.php", "param binding");
        assert!(s.is_synthetic());
        assert!(s.to_string().contains("param binding"));
    }

    #[test]
    fn real_sites_display_file_line() {
        let s = Site::new("dir/f.php", 42, Span::new(1, 2), "echo $x;");
        assert!(!s.is_synthetic());
        assert_eq!(s.to_string(), "dir/f.php:42");
    }
}
