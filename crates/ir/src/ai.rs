//! Abstract interpretation: `F(p)` → `AI(F(p))` (paper §3.2, Figure 4).
//!
//! The AI consists of only `if` instructions, type assignments, and
//! assertions:
//!
//! * `x = e`  →  `t_x = t_e`, where constants have type `⊥` and binary
//!   combinations join;
//! * `fi(X)`  →  `∀x ∈ X: t_x = τ` (already folded into expressions by
//!   the filter);
//! * `fo(X)`  →  `assert(X, τ_r)` meaning `∀x ∈ X: t_x < τ_r`;
//! * `if e then c1 else c2` → a *nondeterministic* selection;
//! * `while e do c` → `if b then AI(c)` — loops deconstruct into
//!   selections, making the AI loop-free with a fixed program diameter.
//!
//! Per Figure 5 of the paper, `stop` contributes the constraint `true`
//! (it is kept in the AI for reporting but does not prune paths). The
//! `reference` interpreter exposes both semantics; the bounded model
//! checker is validated against the paper's.

use std::fmt;

use taint_lattice::{Elem, Lattice, TwoPoint};

use crate::fir::{AssertKind, FCmd, FProgram};
use crate::site::Site;
use crate::vartable::{VarId, VarTable};

/// Identifies one nondeterministic branch decision (the boolean `b` of
/// an AI `if`). The set of all branch variables is the paper's `BN`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BranchId(pub u32);

/// Identifies one assertion, in program order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AssertId(pub u32);

/// An AI command.
#[derive(Clone, Debug, PartialEq)]
pub enum AiCmd {
    /// `t_var = (base ⊔ ⊔_{d ∈ deps} t_d) ⊓ mask`
    Assign {
        /// Assigned type variable.
        var: VarId,
        /// Constant part of the right-hand side.
        base: Elem,
        /// Joined type variables.
        deps: Vec<VarId>,
        /// Kinds kept after sanitization (`None` = no meet).
        mask: Option<Elem>,
        /// Source location.
        site: Site,
    },
    /// `assert(∀v ∈ vars: t_v < bound)` (or `≤` when non-strict)
    Assert {
        /// Assertion id (program order).
        id: AssertId,
        /// Checked variables.
        vars: Vec<VarId>,
        /// Bound `τ_r`.
        bound: Elem,
        /// Strict (`<`, the paper's form) or non-strict (`≤`).
        strict: bool,
        /// The SOC whose precondition this is.
        func: String,
        /// What the assertion states (opaque SOC or structural SQL).
        kind: AssertKind,
        /// Source location.
        site: Site,
    },
    /// Nondeterministic selection.
    If {
        /// The branch decision variable `b ∈ BN`.
        branch: BranchId,
        /// Commands when the branch is taken.
        then_cmds: Vec<AiCmd>,
        /// Commands when it is not.
        else_cmds: Vec<AiCmd>,
        /// Source location.
        site: Site,
    },
    /// `stop` (constraint `true` per Figure 5; kept for reports).
    Stop {
        /// Source location.
        site: Site,
    },
}

/// A loop-free abstract interpretation ready for bounded model checking.
#[derive(Clone, Debug, Default)]
pub struct AiProgram {
    /// Interned variables (shared with the `F(p)` program).
    pub vars: VarTable,
    /// Top-level command sequence.
    pub cmds: Vec<AiCmd>,
    /// Number of nondeterministic branch variables (`|BN|`).
    pub num_branches: usize,
    num_assertions: usize,
}

impl AiProgram {
    /// Assembles a program from hand-built commands (used by tests and
    /// workload generators); the assertion count is recomputed.
    pub fn from_parts(vars: VarTable, cmds: Vec<AiCmd>, num_branches: usize) -> Self {
        let mut p = AiProgram {
            vars,
            cmds,
            num_branches,
            num_assertions: 0,
        };
        p.num_assertions = p.assertions().len();
        p
    }

    /// Number of assertions.
    pub fn num_assertions(&self) -> usize {
        self.num_assertions
    }

    /// The program diameter: the length (in commands) of the longest
    /// path. Loop-freeness makes this finite and fixed — the property
    /// that lets BMC be sound *and* complete (paper §3.3).
    pub fn diameter(&self) -> usize {
        fn depth(cmds: &[AiCmd]) -> usize {
            cmds.iter()
                .map(|c| match c {
                    AiCmd::If {
                        then_cmds,
                        else_cmds,
                        ..
                    } => 1 + depth(then_cmds).max(depth(else_cmds)),
                    _ => 1,
                })
                .sum()
        }
        depth(&self.cmds)
    }

    /// Total number of commands.
    pub fn num_commands(&self) -> usize {
        fn count(cmds: &[AiCmd]) -> usize {
            cmds.iter()
                .map(|c| match c {
                    AiCmd::If {
                        then_cmds,
                        else_cmds,
                        ..
                    } => 1 + count(then_cmds) + count(else_cmds),
                    _ => 1,
                })
                .sum()
        }
        count(&self.cmds)
    }

    /// All assertions in program order, with their sites.
    pub fn assertions(&self) -> Vec<(&AiCmd, &Site)> {
        fn walk<'a>(cmds: &'a [AiCmd], out: &mut Vec<(&'a AiCmd, &'a Site)>) {
            for c in cmds {
                match c {
                    AiCmd::Assert { site, .. } => out.push((c, site)),
                    AiCmd::If {
                        then_cmds,
                        else_cmds,
                        ..
                    } => {
                        walk(then_cmds, out);
                        walk(else_cmds, out);
                    }
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.cmds, &mut out);
        out
    }
}

impl fmt::Display for AiProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(
            cmds: &[AiCmd],
            vars: &VarTable,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            for c in cmds {
                for _ in 0..depth {
                    write!(f, "  ")?;
                }
                match c {
                    AiCmd::Assign {
                        var,
                        base,
                        deps,
                        mask,
                        ..
                    } => {
                        write!(f, "t[{}] = {base}", vars.name(*var))?;
                        for d in deps {
                            write!(f, " ⊔ t[{}]", vars.name(*d))?;
                        }
                        if let Some(m) = mask {
                            write!(f, " ⊓ {m}")?;
                        }
                        writeln!(f, ";")?;
                    }
                    AiCmd::Assert {
                        vars: vs,
                        bound,
                        strict,
                        func,
                        ..
                    } => {
                        let op = if *strict { "<" } else { "≤" };
                        write!(f, "assert(")?;
                        for (i, v) in vs.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "t[{}] {op} {bound}", vars.name(*v))?;
                        }
                        writeln!(f, ") // {func}")?;
                    }
                    AiCmd::If {
                        branch,
                        then_cmds,
                        else_cmds,
                        ..
                    } => {
                        writeln!(f, "if b{} then", branch.0)?;
                        go(then_cmds, vars, depth + 1, f)?;
                        if !else_cmds.is_empty() {
                            for _ in 0..depth {
                                write!(f, "  ")?;
                            }
                            writeln!(f, "else")?;
                            go(else_cmds, vars, depth + 1, f)?;
                        }
                    }
                    AiCmd::Stop { .. } => writeln!(f, "stop;")?,
                }
            }
            Ok(())
        }
        go(&self.cmds, &self.vars, 0, f)
    }
}

/// Translates `F(p)` into its abstract interpretation over the standard
/// two-point lattice with the paper's single-unfolding loop rule.
pub fn abstract_interpret(f: &FProgram) -> AiProgram {
    abstract_interpret_with(f, &TwoPoint::new(), 1)
}

/// Translates `F(p)` with an explicit lattice and loop unrolling factor.
///
/// `unroll = 1` is Figure 4's rule (`while e do c` → `if b then AI(c)`);
/// larger factors nest selections (`if b1 then (c; if b2 then (c; …))`),
/// an extension evaluated by the ablation benchmarks.
///
/// # Panics
///
/// Panics if `unroll` is zero.
pub fn abstract_interpret_with(f: &FProgram, lattice: &impl Lattice, unroll: usize) -> AiProgram {
    assert!(unroll >= 1, "loop unrolling factor must be at least 1");
    let mut cx = Translate {
        lattice,
        unroll,
        next_branch: 0,
        next_assert: 0,
    };
    let cmds = cx.go(&f.cmds);
    AiProgram {
        vars: f.vars.clone(),
        cmds,
        num_branches: cx.next_branch as usize,
        num_assertions: cx.next_assert as usize,
    }
}

struct Translate<'l, L: Lattice> {
    lattice: &'l L,
    unroll: usize,
    next_branch: u32,
    next_assert: u32,
}

impl<L: Lattice> Translate<'_, L> {
    fn fresh_branch(&mut self) -> BranchId {
        let b = BranchId(self.next_branch);
        self.next_branch += 1;
        b
    }

    fn go(&mut self, cmds: &[FCmd]) -> Vec<AiCmd> {
        let mut out = Vec::with_capacity(cmds.len());
        for c in cmds {
            match c {
                FCmd::Assign {
                    var,
                    expr,
                    mask,
                    site,
                } => {
                    let base =
                        expr.const_base(self.lattice.bottom(), &|a, b| self.lattice.join(a, b));
                    let mut deps = expr.vars();
                    deps.sort_unstable();
                    deps.dedup();
                    out.push(AiCmd::Assign {
                        var: *var,
                        base,
                        deps,
                        mask: *mask,
                        site: site.clone(),
                    });
                }
                FCmd::Soc {
                    func,
                    args,
                    bound,
                    strict,
                    kind,
                    site,
                } => {
                    let id = AssertId(self.next_assert);
                    self.next_assert += 1;
                    out.push(AiCmd::Assert {
                        id,
                        vars: args.clone(),
                        bound: *bound,
                        strict: *strict,
                        func: func.clone(),
                        kind: kind.clone(),
                        site: site.clone(),
                    });
                }
                FCmd::If {
                    then_cmds,
                    else_cmds,
                    site,
                } => {
                    let branch = self.fresh_branch();
                    let t = self.go(then_cmds);
                    let e = self.go(else_cmds);
                    out.push(AiCmd::If {
                        branch,
                        then_cmds: t,
                        else_cmds: e,
                        site: site.clone(),
                    });
                }
                FCmd::While { body, site } => {
                    out.push(self.unroll_loop(body, site, self.unroll));
                }
                FCmd::Stop { site } => out.push(AiCmd::Stop { site: site.clone() }),
            }
        }
        out
    }

    fn unroll_loop(&mut self, body: &[FCmd], site: &Site, remaining: usize) -> AiCmd {
        let branch = self.fresh_branch();
        let mut then_cmds = self.go(body);
        if remaining > 1 {
            then_cmds.push(self.unroll_loop(body, site, remaining - 1));
        }
        AiCmd::If {
            branch,
            then_cmds,
            else_cmds: Vec::new(),
            site: site.clone(),
        }
    }
}

/// A concrete-path reference interpreter for AI programs.
///
/// This is the executable definition of the AI's semantics; the bounded
/// model checker is property-tested against it.
pub mod reference {
    use super::*;

    /// One assertion violation on a concrete path.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Violation {
        /// Which assertion failed.
        pub assert_id: AssertId,
        /// The checked variables whose types violated the bound.
        pub violating_vars: Vec<VarId>,
    }

    /// Runs the program along the path selected by `branches`
    /// (`branches[b]` is the decision for [`BranchId`] `b`), returning
    /// every assertion violation on that path.
    ///
    /// With `respect_stop = false` (the paper's Figure 5 semantics,
    /// matched by the model checker), `stop` is a no-op; with `true`,
    /// execution halts at `stop`.
    pub fn run_path(
        program: &AiProgram,
        lattice: &impl Lattice,
        branches: &[bool],
        respect_stop: bool,
    ) -> Vec<Violation> {
        let mut types = vec![lattice.bottom(); program.vars.len()];
        let mut violations = Vec::new();
        let mut stopped = false;
        run_cmds(
            &program.cmds,
            lattice,
            branches,
            respect_stop,
            &mut types,
            &mut violations,
            &mut stopped,
        );
        violations
    }

    fn run_cmds(
        cmds: &[AiCmd],
        lattice: &impl Lattice,
        branches: &[bool],
        respect_stop: bool,
        types: &mut [Elem],
        violations: &mut Vec<Violation>,
        stopped: &mut bool,
    ) {
        for c in cmds {
            if *stopped {
                return;
            }
            match c {
                AiCmd::Assign {
                    var,
                    base,
                    deps,
                    mask,
                    ..
                } => {
                    let mut t = *base;
                    for d in deps {
                        t = lattice.join(t, types[d.index()]);
                    }
                    if let Some(m) = mask {
                        t = lattice.meet(t, *m);
                    }
                    types[var.index()] = t;
                }
                AiCmd::Assert {
                    id,
                    vars,
                    bound,
                    strict,
                    ..
                } => {
                    let ok = |t: Elem| {
                        if *strict {
                            lattice.lt(t, *bound)
                        } else {
                            lattice.leq(t, *bound)
                        }
                    };
                    let violating: Vec<VarId> = vars
                        .iter()
                        .copied()
                        .filter(|v| !ok(types[v.index()]))
                        .collect();
                    if !violating.is_empty() {
                        violations.push(Violation {
                            assert_id: *id,
                            violating_vars: violating,
                        });
                    }
                }
                AiCmd::If {
                    branch,
                    then_cmds,
                    else_cmds,
                    ..
                } => {
                    let taken = branches.get(branch.0 as usize).copied().unwrap_or(false);
                    let side = if taken { then_cmds } else { else_cmds };
                    run_cmds(
                        side,
                        lattice,
                        branches,
                        respect_stop,
                        types,
                        violations,
                        stopped,
                    );
                }
                AiCmd::Stop { .. } => {
                    if respect_stop {
                        *stopped = true;
                        return;
                    }
                }
            }
        }
    }

    /// Enumerates every path (all `2^|BN|` branch assignments) and
    /// returns, per assertion, the set of paths (as branch bit vectors)
    /// on which it is violated. Ground truth for testing; exponential.
    ///
    /// # Panics
    ///
    /// Panics if the program has more than 20 branch variables.
    pub fn all_violating_paths(
        program: &AiProgram,
        lattice: &impl Lattice,
    ) -> Vec<(AssertId, Vec<Vec<bool>>)> {
        assert!(
            program.num_branches <= 20,
            "exhaustive path enumeration limited to 20 branches"
        );
        let n = program.num_branches;
        let mut per_assert: std::collections::BTreeMap<AssertId, Vec<Vec<bool>>> =
            std::collections::BTreeMap::new();
        for bits in 0u64..(1u64 << n) {
            let branches: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            for v in run_path(program, lattice, &branches, false) {
                per_assert
                    .entry(v.assert_id)
                    .or_default()
                    .push(branches.clone());
            }
        }
        per_assert.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{filter_program, FilterOptions};
    use crate::prelude::Prelude;
    use php_front::parse_source;

    fn ai_of(src: &str) -> AiProgram {
        let program = parse_source(src).expect("parse");
        let f = filter_program(
            &program,
            src,
            "t.php",
            &Prelude::standard(),
            &FilterOptions::default(),
        );
        abstract_interpret(&f)
    }

    #[test]
    fn straight_line_taint_violates() {
        let ai = ai_of("<?php $x = $_GET['a']; echo $x;");
        assert_eq!(ai.num_assertions(), 1);
        assert_eq!(ai.num_branches, 0);
        let l = TwoPoint::new();
        let v = reference::run_path(&ai, &l, &[], false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].violating_vars.len(), 1);
    }

    #[test]
    fn sanitized_flow_is_safe() {
        let ai = ai_of("<?php $x = htmlspecialchars($_GET['a']); echo $x;");
        let l = TwoPoint::new();
        assert!(reference::run_path(&ai, &l, &[], false).is_empty());
    }

    #[test]
    fn branch_sensitive_violation() {
        // Tainted only on the then-branch.
        let ai = ai_of("<?php $x = 'safe'; if ($c) { $x = $_GET['a']; } echo $x;");
        assert_eq!(ai.num_branches, 1);
        let l = TwoPoint::new();
        assert_eq!(reference::run_path(&ai, &l, &[true], false).len(), 1);
        assert!(reference::run_path(&ai, &l, &[false], false).is_empty());
    }

    #[test]
    fn figure6_shape_two_assertions() {
        // Paper Figure 6: both branches echo, one tainted, one not.
        let src = r#"<?php
if (Nick) {
    $tmp = $_GET['nick'];
    echo htmlspecialchars_off($tmp);
} else {
    $tmp = "You are the " . $GuestCount . " guest";
    echo $tmp;
}"#;
        let ai = ai_of(src);
        assert_eq!(ai.num_assertions(), 2);
        assert_eq!(ai.num_branches, 1);
        let l = TwoPoint::new();
        // Then-branch: tainted echo (htmlspecialchars_off is unknown,
        // so taint propagates).
        let v_then = reference::run_path(&ai, &l, &[true], false);
        assert_eq!(v_then.len(), 1);
        // Else-branch: $GuestCount is read but never assigned → ⊥.
        let v_else = reference::run_path(&ai, &l, &[false], false);
        assert!(v_else.is_empty());
    }

    #[test]
    fn loop_unrolls_to_selection() {
        let ai = ai_of("<?php while ($c) { $x = $_GET['a']; } echo $x;");
        assert_eq!(ai.num_branches, 1);
        let l = TwoPoint::new();
        assert_eq!(reference::run_path(&ai, &l, &[true], false).len(), 1);
        assert!(reference::run_path(&ai, &l, &[false], false).is_empty());
    }

    #[test]
    fn two_step_propagation_needs_two_unrollings() {
        // $b taints $a only after two iterations: the paper's single
        // unfolding misses it, unroll = 2 catches it.
        let src = "<?php $t = $_GET['x']; while ($c) { $a = $b; $b = $t; } echo $a;";
        let program = parse_source(src).unwrap();
        let f = filter_program(
            &program,
            src,
            "t.php",
            &Prelude::standard(),
            &FilterOptions::default(),
        );
        let l = TwoPoint::new();
        let ai1 = abstract_interpret_with(&f, &l, 1);
        let all1 = reference::all_violating_paths(&ai1, &l);
        assert!(all1.is_empty(), "single unfolding cannot see 2-step flow");
        let ai2 = abstract_interpret_with(&f, &l, 2);
        let all2 = reference::all_violating_paths(&ai2, &l);
        assert_eq!(all2.len(), 1, "two unrollings expose the 2-step flow");
    }

    #[test]
    fn stop_semantics_flag() {
        let ai = ai_of("<?php $x = $_GET['a']; exit; echo $x;");
        let l = TwoPoint::new();
        // Paper semantics: stop is `true`, the echo is still checked.
        assert_eq!(reference::run_path(&ai, &l, &[], false).len(), 1);
        // Concrete semantics: execution halts at exit.
        assert!(reference::run_path(&ai, &l, &[], true).is_empty());
    }

    #[test]
    fn diameter_is_fixed_and_finite() {
        let ai = ai_of("<?php if ($a) { $x = 1; $y = 2; } else { $z = 3; } echo $q;");
        assert!(ai.diameter() >= 3);
        assert!(ai.num_commands() >= 4);
    }

    #[test]
    fn assertions_listed_in_program_order() {
        let ai = ai_of("<?php echo $a; if ($c) { echo $b; } echo $d;");
        let asserts = ai.assertions();
        assert_eq!(asserts.len(), 3);
        let ids: Vec<u32> = asserts
            .iter()
            .map(|(c, _)| match c {
                AiCmd::Assert { id, .. } => id.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn display_renders_ai() {
        let ai = ai_of("<?php $x = $_GET['a']; if ($c) { echo $x; }");
        let text = ai.to_string();
        assert!(text.contains("t[x] ="));
        assert!(text.contains("if b0 then"));
        assert!(text.contains("assert("));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_unroll_panics() {
        let f = FProgram::default();
        let _ = abstract_interpret_with(&f, &TwoPoint::new(), 0);
    }

    #[test]
    fn all_violating_paths_groups_by_assertion() {
        let ai =
            ai_of("<?php $x = 'a'; if ($c) { $x = $_GET['q']; } if ($d) { echo $x; } echo $x;");
        let l = TwoPoint::new();
        let all = reference::all_violating_paths(&ai, &l);
        // Both echoes violate only when branch 0 (taint) is taken; the
        // first additionally needs branch 1.
        assert_eq!(all.len(), 2);
        let (_, paths0) = &all[0];
        let (_, paths1) = &all[1];
        assert_eq!(paths0.len(), 1); // b0=true, b1=true
        assert_eq!(paths1.len(), 2); // b0=true, b1 ∈ {true,false}
    }
}
