//! The filtered command language `F(p)` and abstract interpretation
//! `AI(F(p))` of the WebSSARI pipeline (paper §3.2, Figure 4).
//!
//! Given a parsed PHP program, the [`filter`] stage produces an
//! [`FProgram`]: command sequences built from assignments, untrusted
//! input channels (UIC, `fi(X)`), sensitive output channels (SOC,
//! `fo(X)`), `stop`, conditionals, and loops — everything not associated
//! with information flow is discarded, and function calls are unfolded.
//! The [`ai`] stage then translates `F(p)` into an [`AiProgram`]
//! consisting solely of type assignments, assertions, and
//! nondeterministic `if` commands: loops deconstruct into selections
//! (Figure 4's `while e do c` → `if b then AI(c)` rule), after which the
//! program is loop-free, has a fixed diameter, and is ready for bounded
//! model checking.
//!
//! Pre- and postconditions of built-in functions come from a
//! [`Prelude`]: UICs are given postconditions that set the safety level
//! of retrieved data, SOCs preconditions that assert argument safety,
//! and sanitization routines reset data to the bottom (safest) type.
//!
//! # Examples
//!
//! ```
//! use php_front::parse_source;
//! use webssari_ir::{abstract_interpret, filter_program, FilterOptions, Prelude};
//!
//! let src = r#"<?php $q = "id=" . $_GET['id']; mysql_query($q);"#;
//! let program = parse_source(src).unwrap();
//! let prelude = Prelude::standard();
//! let f = filter_program(&program, src, "index.php", &prelude, &FilterOptions::default());
//! let ai = abstract_interpret(&f);
//! assert_eq!(ai.num_assertions(), 1); // the mysql_query precondition
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ai;
pub mod filter;
mod fir;
mod prelude;
mod site;
mod vartable;

pub use ai::{abstract_interpret, abstract_interpret_with, AiCmd, AiProgram, AssertId, BranchId};
pub use filter::{filter_program, filter_program_with_stores, FilterOptions};
pub use fir::{AssertKind, FCmd, FExpr, FProgram, StoreRead, StoreWrite};
pub use prelude::{Prelude, SocSpec};
pub use site::Site;
pub use vartable::{VarId, VarTable};
// Re-exported so downstream crates can build and consume store
// summaries and SQL sink metadata without a direct sinks dependency.
pub use webssari_sinks::{
    is_store_cell, store_cell_key, store_cell_name, SqlSinkMeta, SqlStmtKind, StoreEntry,
    StoreSummary,
};
