//! The filter: PHP AST → `F(p)` (paper §3.2).
//!
//! "By preserving only assignments, function calls and conditional
//! structures, `F(p)` unfolds function calls and discards all program
//! constructs that are not associated with information flow."
//!
//! The lowering implements the paper's model plus the practical details
//! a real PHP corpus needs:
//!
//! * superglobal reads (`$_GET['x']`, `$HTTP_REFERER`) are constants at
//!   the UIC postcondition level,
//! * assignments through arrays/properties and compound assignments
//!   (`.=`) are weak updates (join with the old value),
//! * user functions are unfolded at call sites with per-call variable
//!   renaming; recursion is cut off at a configurable depth, after which
//!   calls degrade to the sound "join of arguments" approximation,
//! * `extract($row)` materializes assignments to variables that are read
//!   in the program but never assigned (the Figure 2 idiom),
//! * `die(expr)`/`exit(expr)` output their argument (an `echo`-class
//!   SOC) and then `stop`.

use std::collections::{HashMap, HashSet};

use php_front::ast::{AssignOp, BinOp, Expr, LValue, Param, Program, Stmt, StrPart};
use php_front::{LineIndex, Span};
use taint_lattice::{Lattice, TwoPoint};
use webssari_sinks::{
    store_cell_name, store_write_name, SqlSinkMeta, SqlStmtKind, SqlTemplate, StoreSummary,
    TplPart, WILDCARD_KEY,
};

use crate::fir::{AssertKind, FCmd, FExpr, FProgram, StoreRead, StoreWrite};
use crate::prelude::Prelude;
use crate::site::Site;
use crate::vartable::VarId;

/// Maximum depth of variable chasing when reconstructing a query
/// template from string-building expressions.
const MAX_TEMPLATE_DEPTH: usize = 8;

/// Options controlling the filter.
#[derive(Clone, Debug)]
pub struct FilterOptions {
    /// Maximum function-unfolding depth before calls degrade to the
    /// join-of-arguments approximation.
    pub max_inline_depth: usize,
}

impl Default for FilterOptions {
    fn default() -> Self {
        FilterOptions {
            max_inline_depth: 3,
        }
    }
}

/// Lowers a parsed program into the filtered command language.
///
/// `src` and `file` are used to attach [`Site`]s (line numbers and
/// snippets) to every command. Store reads are lowered against an empty
/// [`StoreSummary`]: every modeled store reads at the prelude's `⊤`,
/// reproducing the legacy treatment of database input exactly.
pub fn filter_program(
    program: &Program,
    src: &str,
    file: &str,
    prelude: &Prelude,
    options: &FilterOptions,
) -> FProgram {
    filter_program_with_stores(
        program,
        src,
        file,
        prelude,
        options,
        &StoreSummary::new(),
        &TwoPoint::new(),
    )
}

/// Lowers a parsed program with a cross-request store summary: reads of
/// modeled stores (fetches of resolved `SELECT` handles, `$_SESSION`
/// reads) observe the summary's per-store write levels instead of the
/// blanket `⊤` channel, turning a tainted write in one file into a
/// tainted read in another (second-order flows).
///
/// `lattice` is only consulted to join write levels recorded in
/// `stores`; stores the summary never saw read at the prelude's `⊤`.
pub fn filter_program_with_stores(
    program: &Program,
    src: &str,
    file: &str,
    prelude: &Prelude,
    options: &FilterOptions,
    stores: &StoreSummary,
    lattice: &impl Lattice,
) -> FProgram {
    let mut f = Filter {
        prelude,
        options,
        stores,
        file: file.to_owned(),
        src,
        lines: LineIndex::new(src),
        out: FProgram::default(),
        funcs: HashMap::new(),
        unassigned_reads: Vec::new(),
        used_superglobals: Vec::new(),
        call_counter: 0,
        inline_stack: Vec::new(),
        templates: HashMap::new(),
        handles: HashMap::new(),
        pending_select: None,
    };
    f.collect_functions(&program.stmts);
    f.collect_unassigned_reads(program);
    let mut scope = Scope::global();
    let mut cmds = Vec::new();
    for stmt in &program.stmts {
        f.lower_stmt(stmt, &mut scope, &mut cmds);
    }
    // UIC postconditions: each read superglobal is a channel variable
    // whose type is set by fi(X) at program start (paper §3.2).
    let mut inits = Vec::with_capacity(f.used_superglobals.len());
    for (name, level) in std::mem::take(&mut f.used_superglobals) {
        let var = f.out.vars.intern(&name);
        inits.push(FCmd::Assign {
            var,
            expr: FExpr::Const(level),
            mask: None,
            site: Site::synthetic(&f.file, &format!("UIC postcondition for ${name}")),
        });
    }
    // Second-order sources: each referenced store cell is initialized at
    // the level the summary says its writers reach. A store the summary
    // never saw written stays at the prelude's ⊤ (legacy database-input
    // treatment), so an empty summary changes nothing but provenance.
    let mut seen_cells = HashSet::new();
    for r in &f.out.store_reads {
        if seen_cells.insert(r.key.clone()) {
            // Source-after-sink provenance: name the write sites that
            // feed this read so counterexample traces show the chain.
            let (level, detail) = match stores.entry(&r.key) {
                None => (
                    prelude.top(),
                    format!("second-order store read of {}", r.key),
                ),
                Some(_) => (
                    stores.read_level(&r.key, lattice),
                    format!(
                        "second-order store read of {} (written at {})",
                        r.key,
                        stores.provenance(&r.key).join(", "),
                    ),
                ),
            };
            inits.push(FCmd::Assign {
                var: r.var,
                expr: FExpr::Const(level),
                mask: None,
                site: Site::synthetic(&f.file, &detail),
            });
        }
    }
    inits.extend(cmds);
    f.out.cmds = inits;
    f.out
}

#[derive(Clone, Debug)]
struct FuncInfo {
    params: Vec<Param>,
    body: Vec<Stmt>,
}

#[derive(Clone, Debug)]
enum ScopeKind {
    Global,
    Function {
        prefix: String,
        globals: HashSet<String>,
        ret: VarId,
    },
}

#[derive(Clone, Debug)]
struct Scope {
    kind: ScopeKind,
}

impl Scope {
    fn global() -> Self {
        Scope {
            kind: ScopeKind::Global,
        }
    }
}

struct Filter<'a> {
    prelude: &'a Prelude,
    options: &'a FilterOptions,
    stores: &'a StoreSummary,
    file: String,
    src: &'a str,
    lines: LineIndex,
    out: FProgram,
    funcs: HashMap<String, FuncInfo>,
    /// Variables read somewhere but never assigned anywhere — the
    /// candidates that `extract()` may define dynamically.
    unassigned_reads: Vec<String>,
    /// Superglobals read by the program, in first-read order, with
    /// their UIC postcondition levels.
    used_superglobals: Vec<(String, taint_lattice::Elem)>,
    call_counter: usize,
    inline_stack: Vec<String>,
    /// Query templates tracked through string-building assignments:
    /// variable → literal/hole parts of the string it currently holds.
    templates: HashMap<VarId, Vec<TplPart<VarId>>>,
    /// Query-result handles: variable → store key of the `SELECT`
    /// result it holds, so the matching fetch reads the store cell.
    handles: HashMap<VarId, String>,
    /// Set when a resolved `SELECT` sink executes in the current
    /// statement; bound to a handle by the enclosing assignment or
    /// consumed directly by a nested fetch.
    pending_select: Option<String>,
}

impl Filter<'_> {
    fn site(&self, span: Span) -> Site {
        let line = self.lines.line(span.start);
        let snippet = if (span.end as usize) <= self.src.len() {
            span.slice(self.src)
        } else {
            ""
        };
        Site::new(&self.file, line, span, snippet)
    }

    // ---- pre-passes --------------------------------------------------

    fn collect_functions(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::FuncDecl {
                    name, params, body, ..
                } => {
                    self.funcs.insert(
                        name.to_ascii_lowercase(),
                        FuncInfo {
                            params: params.clone(),
                            body: body.clone(),
                        },
                    );
                    self.collect_functions(body);
                }
                Stmt::If {
                    then_branch,
                    elseifs,
                    else_branch,
                    ..
                } => {
                    self.collect_functions(then_branch);
                    for (_, b) in elseifs {
                        self.collect_functions(b);
                    }
                    if let Some(b) = else_branch {
                        self.collect_functions(b);
                    }
                }
                Stmt::While { body, .. }
                | Stmt::DoWhile { body, .. }
                | Stmt::For { body, .. }
                | Stmt::Foreach { body, .. } => self.collect_functions(body),
                Stmt::Switch { cases, .. } => {
                    for (_, b) in cases {
                        self.collect_functions(b);
                    }
                }
                Stmt::Block(body) => self.collect_functions(body),
                _ => {}
            }
        }
    }

    fn collect_unassigned_reads(&mut self, program: &Program) {
        let mut reads: Vec<String> = Vec::new();
        let mut writes: HashSet<String> = HashSet::new();
        fn walk_stmts(stmts: &[Stmt], reads: &mut Vec<String>, writes: &mut HashSet<String>) {
            for s in stmts {
                match s {
                    Stmt::Expr(e, _) => walk_expr(e, reads, writes),
                    Stmt::Echo(es, _) => {
                        for e in es {
                            walk_expr(e, reads, writes);
                        }
                    }
                    Stmt::If {
                        cond,
                        then_branch,
                        elseifs,
                        else_branch,
                        ..
                    } => {
                        walk_expr(cond, reads, writes);
                        walk_stmts(then_branch, reads, writes);
                        for (c, b) in elseifs {
                            walk_expr(c, reads, writes);
                            walk_stmts(b, reads, writes);
                        }
                        if let Some(b) = else_branch {
                            walk_stmts(b, reads, writes);
                        }
                    }
                    Stmt::While { cond, body, .. } | Stmt::DoWhile { cond, body, .. } => {
                        walk_expr(cond, reads, writes);
                        walk_stmts(body, reads, writes);
                    }
                    Stmt::For {
                        init,
                        cond,
                        step,
                        body,
                        ..
                    } => {
                        for e in init.iter().chain(step) {
                            walk_expr(e, reads, writes);
                        }
                        if let Some(c) = cond {
                            walk_expr(c, reads, writes);
                        }
                        walk_stmts(body, reads, writes);
                    }
                    Stmt::Foreach {
                        array,
                        key,
                        value,
                        body,
                        ..
                    } => {
                        walk_expr(array, reads, writes);
                        if let Some(k) = key {
                            writes.insert(k.clone());
                        }
                        writes.insert(value.clone());
                        walk_stmts(body, reads, writes);
                    }
                    Stmt::Switch { subject, cases, .. } => {
                        walk_expr(subject, reads, writes);
                        for (l, b) in cases {
                            if let Some(l) = l {
                                walk_expr(l, reads, writes);
                            }
                            walk_stmts(b, reads, writes);
                        }
                    }
                    Stmt::FuncDecl { params, body, .. } => {
                        for p in params {
                            writes.insert(p.name.clone());
                        }
                        walk_stmts(body, reads, writes);
                    }
                    Stmt::Return(Some(e), _) | Stmt::Exit(Some(e), _) => {
                        walk_expr(e, reads, writes)
                    }
                    Stmt::Block(b) => walk_stmts(b, reads, writes),
                    _ => {}
                }
            }
        }
        fn walk_expr(e: &Expr, reads: &mut Vec<String>, writes: &mut HashSet<String>) {
            if let Expr::Assign { target, value, .. } = e {
                for root in target.root_vars() {
                    writes.insert(root.to_owned());
                }
                walk_expr(value, reads, writes);
                if let LValue::ArrayElem { index: Some(i), .. } = target {
                    walk_expr(i, reads, writes);
                }
                return;
            }
            reads.extend(e.read_vars());
            // Recurse into subexpressions for nested assignments.
            match e {
                Expr::Binary { left, right, .. } => {
                    walk_expr(left, reads, writes);
                    walk_expr(right, reads, writes);
                }
                Expr::Unary { expr, .. } => walk_expr(expr, reads, writes),
                Expr::Ternary {
                    cond,
                    then,
                    otherwise,
                } => {
                    walk_expr(cond, reads, writes);
                    if let Some(t) = then {
                        walk_expr(t, reads, writes);
                    }
                    walk_expr(otherwise, reads, writes);
                }
                Expr::Call { args, .. } => {
                    for a in args {
                        walk_expr(a, reads, writes);
                    }
                }
                Expr::MethodCall { base, args, .. } => {
                    walk_expr(base, reads, writes);
                    for a in args {
                        walk_expr(a, reads, writes);
                    }
                }
                _ => {}
            }
        }
        walk_stmts(&program.stmts, &mut reads, &mut writes);
        let mut seen = HashSet::new();
        for r in reads {
            if !writes.contains(&r) && !self.prelude.is_superglobal(&r) && seen.insert(r.clone()) {
                self.unassigned_reads.push(r);
            }
        }
    }

    // ---- variable resolution ------------------------------------------

    fn resolve(&mut self, scope: &Scope, name: &str) -> VarId {
        match &scope.kind {
            ScopeKind::Global => self.out.vars.intern(name),
            ScopeKind::Function {
                prefix, globals, ..
            } => {
                if globals.contains(name) {
                    self.out.vars.intern(name)
                } else {
                    self.out.vars.intern(&format!("{prefix}::{name}"))
                }
            }
        }
    }

    /// The keyed channel name (`_GET[sid]`) of a literal-indexed
    /// superglobal access, if the expression is one. Computed indexes
    /// fall back to the whole-channel read.
    fn keyed_superglobal(&self, base: &Expr, index: Option<&Expr>) -> Option<String> {
        let Expr::Var(name) = base else { return None };
        if !self.prelude.is_superglobal(name) {
            return None;
        }
        let key = index?.literal_key()?;
        Some(format!("{name}[{key}]"))
    }

    /// The channel name an interpolated array read (`"$_GET[sid]"`)
    /// resolves to: superglobal bases become keyed channels, everything
    /// else stays attributed to the base variable.
    fn interp_array_name(&self, var: &str, index: &str) -> String {
        if self.prelude.is_superglobal(var) {
            format!("{var}[{index}]")
        } else {
            var.to_owned()
        }
    }

    fn var_read(&mut self, scope: &Scope, name: &str) -> FExpr {
        if let Some(level) = self.prelude.superglobal_level(name) {
            // Superglobals are global in every scope and carry the UIC
            // postcondition level from an init emitted at program start.
            if !self.used_superglobals.iter().any(|(n, _)| n == name) {
                self.used_superglobals.push((name.to_owned(), level));
            }
            return FExpr::Var(self.out.vars.intern(name));
        }
        if name == "_SESSION" && self.stores.entry("_SESSION").is_some() {
            // A session read is a store read once the summary models any
            // session write; otherwise it stays a plain variable (legacy).
            let site = Site::synthetic(&self.file, "read of $_SESSION");
            return self.store_read_expr("_SESSION", site);
        }
        FExpr::Var(self.resolve(scope, name))
    }

    // ---- query templates and store modeling -----------------------------

    /// The variable a template hole resolves to (no read side effects:
    /// the hole's expression is lowered separately by the normal path).
    fn template_var(&mut self, scope: &Scope, name: &str) -> VarId {
        if self.prelude.is_superglobal(name) {
            self.out.vars.intern(name)
        } else if name == "_SESSION" && self.stores.entry("_SESSION").is_some() {
            // Matches `var_read`: session reads resolve to the store
            // cell once the summary models any session write.
            self.out.vars.intern(&store_cell_name("_SESSION"))
        } else {
            self.resolve(scope, name)
        }
    }

    /// Reconstructs the literal/hole parts of a string-building
    /// expression, chasing variables through tracked templates. `None`
    /// means the expression's string structure is opaque.
    fn template_of_expr(
        &mut self,
        e: &Expr,
        scope: &Scope,
        depth: usize,
    ) -> Option<Vec<TplPart<VarId>>> {
        if depth > MAX_TEMPLATE_DEPTH {
            return None;
        }
        match e {
            Expr::StringLit(parts) => {
                let mut out = Vec::new();
                for p in parts {
                    match p {
                        StrPart::Lit(s) => out.push(TplPart::Lit(s.clone())),
                        StrPart::Var(v) => {
                            out.push(TplPart::Hole(self.template_var(scope, v)));
                        }
                        StrPart::ArrayVar { var, index } => {
                            let name = self.interp_array_name(var, index);
                            out.push(TplPart::Hole(self.template_var(scope, &name)));
                        }
                    }
                }
                Some(out)
            }
            Expr::Binary {
                op: BinOp::Concat,
                left,
                right,
            } => {
                let mut l = self.template_of_expr(left, scope, depth + 1)?;
                let r = self.template_of_expr(right, scope, depth + 1)?;
                l.extend(r);
                Some(l)
            }
            Expr::Var(name) => {
                let id = self.template_var(scope, name);
                match self.templates.get(&id) {
                    Some(t) => Some(t.clone()),
                    // An untracked variable is one opaque hole: inside a
                    // concatenation it is a concatenated-in value; as the
                    // whole argument it leaves the template unresolved.
                    None => Some(vec![TplPart::Hole(id)]),
                }
            }
            // An indexed read (`$_POST['msg']`) is one concatenated-in
            // value — attributed to the keyed channel when the index is
            // literal and the base is a superglobal, else to the base.
            Expr::ArrayAccess { base, index } => {
                if let Some(keyed) = self.keyed_superglobal(base, index.as_deref()) {
                    return Some(vec![TplPart::Hole(self.template_var(scope, &keyed))]);
                }
                match base.as_ref() {
                    Expr::Var(name) => Some(vec![TplPart::Hole(self.template_var(scope, name))]),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Drops tracked templates and handles for every variable assigned
    /// in `cmds` — used after conditional/loop bodies, where the
    /// assignment may or may not have executed.
    fn invalidate_tracked(&mut self, cmds: &[FCmd]) {
        fn collect(cmds: &[FCmd], out: &mut Vec<VarId>) {
            for c in cmds {
                match c {
                    FCmd::Assign { var, .. } => out.push(*var),
                    FCmd::If {
                        then_cmds,
                        else_cmds,
                        ..
                    } => {
                        collect(then_cmds, out);
                        collect(else_cmds, out);
                    }
                    FCmd::While { body, .. } => collect(body, out),
                    _ => {}
                }
            }
        }
        let mut assigned = Vec::new();
        collect(cmds, &mut assigned);
        for v in assigned {
            self.templates.remove(&v);
            self.handles.remove(&v);
        }
    }

    /// Lowers a read of store `key` to the synthetic cell variable
    /// (initialized at the summary's read level at program start).
    fn store_read_expr(&mut self, key: &str, site: Site) -> FExpr {
        let var = self.out.vars.intern(&store_cell_name(key));
        self.out.store_reads.push(StoreRead {
            var,
            key: key.to_owned(),
            site,
        });
        FExpr::Var(var)
    }

    /// Emits a fresh write variable capturing the level of one store
    /// write, so the first verification pass can read it off the final
    /// typestate.
    fn emit_store_write(&mut self, key: &str, expr: FExpr, site: Site, out: &mut Vec<FCmd>) {
        let k = self.out.store_writes.len();
        let var = self.out.vars.intern(&store_write_name(key, k));
        out.push(FCmd::Assign {
            var,
            expr,
            mask: None,
            site: site.clone(),
        });
        self.out.store_writes.push(StoreWrite {
            var,
            key: key.to_owned(),
            site,
        });
    }

    /// The constant text of a template with no holes (e.g. a literal
    /// file path), if it is fully literal.
    fn literal_text(parts: &[TplPart<VarId>]) -> Option<String> {
        let mut text = String::new();
        for p in parts {
            match p {
                TplPart::Lit(s) => text.push_str(s),
                TplPart::Hole(_) => return None,
            }
        }
        Some(text)
    }

    // ---- expressions ---------------------------------------------------

    fn lower_expr(&mut self, e: &Expr, scope: &mut Scope, out: &mut Vec<FCmd>) -> FExpr {
        match e {
            Expr::Var(name) => self.var_read(scope, name),
            Expr::ArrayAccess { base, index } => {
                // A literal-keyed superglobal read (`$_GET['sid']`) is a
                // first-class channel: each key gets its own variable
                // (`_GET[sid]`) initialized at the channel's level, so
                // fix plans and witnesses name the exact parameter.
                if let Some(keyed) = self.keyed_superglobal(base, index.as_deref()) {
                    return self.var_read(scope, &keyed);
                }
                if let Some(i) = index {
                    // Evaluate the index for side effects only; index
                    // taint does not flow into the retrieved value.
                    let _ = self.lower_expr(i, scope, out);
                }
                self.lower_expr(base, scope, out)
            }
            Expr::PropFetch { base, .. } => self.lower_expr(base, scope, out),
            Expr::StringLit(parts) => {
                let mut joined = vec![FExpr::Const(self.prelude.bottom())];
                for p in parts {
                    match p {
                        StrPart::Lit(_) => {}
                        StrPart::Var(v) => joined.push(self.var_read(scope, v)),
                        StrPart::ArrayVar { var, index } => {
                            let name = self.interp_array_name(var, index);
                            joined.push(self.var_read(scope, &name));
                        }
                    }
                }
                if joined.len() == 1 {
                    joined.pop().expect("nonempty")
                } else {
                    FExpr::Join(joined)
                }
            }
            Expr::IntLit(_) | Expr::FloatLit(_) | Expr::BoolLit(_) | Expr::NullLit => {
                FExpr::Const(self.prelude.bottom())
            }
            Expr::ArrayLit(entries) => {
                let mut joined = vec![FExpr::Const(self.prelude.bottom())];
                for (k, v) in entries {
                    if let Some(k) = k {
                        joined.push(self.lower_expr(k, scope, out));
                    }
                    joined.push(self.lower_expr(v, scope, out));
                }
                FExpr::Join(joined)
            }
            Expr::Binary { left, right, .. } => {
                let l = self.lower_expr(left, scope, out);
                let r = self.lower_expr(right, scope, out);
                FExpr::Join(vec![l, r])
            }
            Expr::Unary { expr, .. } => self.lower_expr(expr, scope, out),
            Expr::Ternary {
                cond,
                then,
                otherwise,
            } => {
                let c = self.lower_expr(cond, scope, out);
                let t = match then {
                    Some(t) => self.lower_expr(t, scope, out),
                    None => c, // `?:` yields the condition when truthy
                };
                let o = self.lower_expr(otherwise, scope, out);
                FExpr::Join(vec![t, o])
            }
            Expr::Call {
                name, args, span, ..
            } => self.lower_call(name, args, *span, scope, out),
            Expr::MethodCall {
                base,
                name,
                args,
                span,
            } => {
                let base_f = self.lower_expr(base, scope, out);
                let arg_fs: Vec<FExpr> = args
                    .iter()
                    .map(|a| self.lower_expr(a, scope, out))
                    .collect();
                if self.prelude.soc(name).is_some() {
                    // Method-call sinks ($db->query(...)) go through the
                    // same classifier as plain calls, so structured SQL
                    // and store modeling see both call shapes.
                    self.lower_soc_call(
                        &name.to_ascii_lowercase(),
                        args,
                        &arg_fs,
                        *span,
                        scope,
                        out,
                    );
                    return FExpr::Const(self.prelude.bottom());
                }
                if self.prelude.uic_level(name).is_some() {
                    // A fetch method on a resolved SELECT handle
                    // ($r->fetch_assoc()) reads the store cell; other
                    // method UICs keep the legacy join-of-receiver.
                    if let Expr::Var(n) = &**base {
                        let id = self.template_var(scope, n);
                        if let Some(key) = self.handles.get(&id).cloned() {
                            return self.store_read_expr(&key, self.site(*span));
                        }
                    }
                }
                let mut joined = vec![base_f];
                joined.extend(arg_fs);
                FExpr::Join(joined)
            }
            Expr::Assign {
                target,
                op,
                value,
                span,
            } => {
                let v = self.lower_expr(value, scope, out);
                // Evaluate array-index side effects.
                if let LValue::ArrayElem { index: Some(i), .. } = target {
                    let _ = self.lower_expr(i, scope, out);
                }
                if let LValue::List(items) = target {
                    // list($a, $b) = e: every element receives e's type.
                    for item in items {
                        let Some(root) = item.root_var() else {
                            continue;
                        };
                        let root = root.to_owned();
                        let var = self.resolve(scope, &root);
                        let weak = !matches!(item, LValue::Var(_));
                        let expr = if weak {
                            FExpr::Join(vec![FExpr::Var(var), v.clone()])
                        } else {
                            v.clone()
                        };
                        out.push(FCmd::Assign {
                            var,
                            expr,
                            mask: None,
                            site: self.site(*span),
                        });
                    }
                    return v;
                }
                let Some(root) = target.root_var() else {
                    return v; // unresolvable target: value still flows
                };
                let root = root.to_owned();
                let mut var = self.resolve(scope, &root);
                let mut weak = !matches!(op, AssignOp::Assign) || !matches!(target, LValue::Var(_));
                if let LValue::ArrayElem {
                    var: base,
                    index: Some(i),
                } = target
                {
                    if self.prelude.is_superglobal(base) {
                        if let Some(key) = i.literal_key() {
                            // `$_GET['a'] = e` overwrites exactly the
                            // keyed channel — a strong update of the
                            // channel variable (the instrumentor's
                            // channel guards rely on this).
                            var = self.out.vars.intern(&format!("{base}[{key}]"));
                            weak = !matches!(op, AssignOp::Assign);
                        }
                    }
                }
                // Track query templates through string-building
                // assignments, and bind a SELECT handle produced while
                // lowering the value to the assigned variable.
                if matches!(target, LValue::Var(_)) {
                    match op {
                        AssignOp::Assign => {
                            match self.template_of_expr(value, scope, 0) {
                                Some(t) => {
                                    self.templates.insert(var, t);
                                }
                                None => {
                                    self.templates.remove(&var);
                                }
                            }
                            self.handles.remove(&var);
                            if let Some(key) = self.pending_select.take() {
                                self.handles.insert(var, key);
                            }
                        }
                        AssignOp::Concat => {
                            let appended = self.template_of_expr(value, scope, 0);
                            if let (Some(mut t), Some(more)) =
                                (self.templates.remove(&var), appended)
                            {
                                t.extend(more);
                                self.templates.insert(var, t);
                            }
                            self.handles.remove(&var);
                        }
                        _ => {
                            self.templates.remove(&var);
                            self.handles.remove(&var);
                        }
                    }
                } else {
                    self.templates.remove(&var);
                    self.handles.remove(&var);
                }
                let expr = if weak {
                    FExpr::Join(vec![FExpr::Var(var), v.clone()])
                } else {
                    v.clone()
                };
                out.push(FCmd::Assign {
                    var,
                    expr,
                    mask: None,
                    site: self.site(*span),
                });
                // `$_SESSION[...] = e` is a cross-request store write.
                if root == "_SESSION" {
                    self.emit_store_write("_SESSION", v, self.site(*span), out);
                }
                FExpr::Var(var)
            }
            Expr::IncDec { target } => {
                let root = target.root_var().unwrap_or_default().to_owned();
                if root.is_empty() {
                    FExpr::Const(self.prelude.bottom())
                } else {
                    self.var_read(scope, &root)
                }
            }
        }
    }

    fn lower_call(
        &mut self,
        name: &str,
        args: &[Expr],
        span: Span,
        scope: &mut Scope,
        out: &mut Vec<FCmd>,
    ) -> FExpr {
        let arg_fs: Vec<FExpr> = args
            .iter()
            .map(|a| self.lower_expr(a, scope, out))
            .collect();
        let lower = name.to_ascii_lowercase();

        if let Some(keep) = self.prelude.sanitizer_mask(&lower) {
            // Kind-removing sanitizer: materialize a temp assignment
            // `tmp := join(args) ⊓ keep` so the mask survives nesting.
            let k = self.call_counter;
            self.call_counter += 1;
            let tmp = self.out.vars.intern(&format!("{lower}#san{k}"));
            out.push(FCmd::Assign {
                var: tmp,
                expr: FExpr::Join(arg_fs),
                mask: Some(keep),
                site: self.site(span),
            });
            return FExpr::Var(tmp);
        }
        if let Some(level) = self.prelude.sanitizer_level(&lower) {
            // Materialize the sanitizer's result as a temp so downstream
            // diagnostics can tell whether it ever reaches a sink.
            let k = self.call_counter;
            self.call_counter += 1;
            let tmp = self.out.vars.intern(&format!("{lower}#san{k}"));
            out.push(FCmd::Assign {
                var: tmp,
                expr: FExpr::Const(level),
                mask: None,
                site: self.site(span),
            });
            return FExpr::Var(tmp);
        }
        if let Some(level) = self.prelude.uic_level(&lower) {
            // Second-order store reads: a fetch through a resolved
            // SELECT handle (or nested directly in the query call)
            // observes the store cell instead of the blanket ⊤ channel.
            let key = args
                .iter()
                .find_map(|a| match a {
                    Expr::Var(n) => {
                        let id = self.template_var(scope, n);
                        self.handles.get(&id).cloned()
                    }
                    _ => None,
                })
                .or_else(|| self.pending_select.take())
                .or_else(|| {
                    // file_get_contents of a literal path reads the file
                    // store — only when the summary models that file.
                    if lower != "file_get_contents" {
                        return None;
                    }
                    let parts = self.template_of_expr(args.first()?, scope, 0)?;
                    let key = format!("file:{}", Self::literal_text(&parts)?);
                    self.stores.entry(&key).map(|_| key)
                });
            if let Some(key) = key {
                return self.store_read_expr(&key, self.site(span));
            }
            return FExpr::Const(level);
        }
        if self.prelude.soc(&lower).is_some() {
            self.lower_soc_call(&lower, args, &arg_fs, span, scope, out);
            return FExpr::Const(self.prelude.bottom());
        }
        if lower == "extract" {
            // `extract($row)` defines variables dynamically; materialize
            // assignments to every read-but-never-assigned variable.
            let source = FExpr::Join(arg_fs);
            for name in self.unassigned_reads.clone() {
                let var = self.resolve(scope, &name);
                out.push(FCmd::Assign {
                    var,
                    expr: source.clone(),
                    mask: None,
                    site: self.site(span),
                });
            }
            return FExpr::Const(self.prelude.bottom());
        }
        if self.prelude.returns_trusted(&lower) {
            return FExpr::Const(self.prelude.bottom());
        }
        if let Some(info) = self.funcs.get(&lower).cloned() {
            let depth = self
                .inline_stack
                .iter()
                .filter(|f| f.as_str() == lower)
                .count();
            if depth < self.options.max_inline_depth {
                return self.inline_function(&lower, &info, args, arg_fs, span, scope, out);
            }
            // Depth cutoff: the call degrades to join-of-arguments; record
            // the exact call site so diagnostics can point at it.
            let site = self.site(span);
            self.out.recursion_cutoffs.push(site);
        }
        // Unknown function: taint propagates from arguments to result.
        FExpr::Join(arg_fs)
    }

    /// Emits the SOC precondition for a sink call, shared by plain
    /// calls and method-call receivers (`$db->query(...)`).
    ///
    /// Query-shaped (sqli-class) sinks are classified structurally: when
    /// the query argument's template resolves to a known statement kind,
    /// the assertion carries [`AssertKind::SqlStructure`], parameterized
    /// calls (`?` placeholders with bound data arguments) check only the
    /// query text, resolved writes record a store write at the join of
    /// the concatenated-in values, and resolved `SELECT`s arm the
    /// pending handle so the matching fetch reads the store cell.
    fn lower_soc_call(
        &mut self,
        lower: &str,
        args: &[Expr],
        arg_fs: &[FExpr],
        span: Span,
        scope: &mut Scope,
        out: &mut Vec<FCmd>,
    ) {
        let Some(spec) = self.prelude.soc(lower) else {
            return;
        };
        let mut vars = soc_arg_vars(arg_fs, spec.arg_positions.as_deref());
        let mut kind = AssertKind::Soc;
        // (key, written expression) of a store write to emit after the
        // precondition, so the trace shows sink-then-source order.
        let mut store_write: Option<(String, FExpr)> = None;
        if spec.class == "sqli" {
            let qi = if lower == "mysql_db_query" { 1 } else { 0 };
            let template = args
                .get(qi)
                .and_then(|a| self.template_of_expr(a, scope, 0))
                .map(SqlTemplate::parse);
            match template {
                Some(t) if t.is_resolved() => {
                    if t.placeholders >= 1 && args.len() > 1 {
                        // Parameterized call: data arguments are bound,
                        // not concatenated — only the query text is a
                        // SQLI precondition.
                        vars = arg_fs
                            .get(qi)
                            .map(|a| soc_arg_vars(std::slice::from_ref(a), None))
                            .unwrap_or_default();
                    }
                    let holes = t.holes();
                    if t.stmt.is_write() {
                        let key = t.store_write_key().unwrap_or(WILDCARD_KEY).to_owned();
                        let expr = if holes.is_empty() {
                            FExpr::Const(self.prelude.bottom())
                        } else {
                            FExpr::Join(holes.iter().map(|v| FExpr::Var(*v)).collect())
                        };
                        store_write = Some((key, expr));
                    } else if t.stmt == SqlStmtKind::Select {
                        self.pending_select = t.table.clone();
                    }
                    kind = AssertKind::SqlStructure(SqlSinkMeta {
                        stmt: t.stmt,
                        table: t.table,
                        placeholders: t.placeholders,
                    });
                }
                _ => {
                    // Opaque query text on a write-capable sink: the
                    // write may have hit any store. Record it under the
                    // wildcard key at the join of the checked values.
                    if !vars.is_empty() {
                        let expr = FExpr::Join(vars.iter().map(|v| FExpr::Var(*v)).collect());
                        store_write = Some((WILDCARD_KEY.to_owned(), expr));
                    }
                }
            }
        }
        if !vars.is_empty() {
            out.push(FCmd::Soc {
                func: lower.to_owned(),
                args: vars,
                bound: spec.bound,
                strict: spec.strict,
                kind,
                site: self.site(span),
            });
        }
        if lower == "file_put_contents" {
            // A file write is a store write keyed by the literal path
            // (wildcard when the path is dynamic).
            let key = args
                .first()
                .and_then(|a| self.template_of_expr(a, scope, 0))
                .and_then(|parts| Self::literal_text(&parts))
                .map(|path| format!("file:{path}"))
                .unwrap_or_else(|| WILDCARD_KEY.to_owned());
            let data: Vec<VarId> = arg_fs.iter().skip(1).flat_map(|a| a.vars()).collect();
            if !data.is_empty() {
                let expr = FExpr::Join(data.into_iter().map(FExpr::Var).collect());
                store_write = Some((key, expr));
            }
        }
        if let Some((key, expr)) = store_write {
            self.emit_store_write(&key, expr, self.site(span), out);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn inline_function(
        &mut self,
        name: &str,
        info: &FuncInfo,
        args: &[Expr],
        arg_fs: Vec<FExpr>,
        call_span: Span,
        caller_scope: &mut Scope,
        out: &mut Vec<FCmd>,
    ) -> FExpr {
        let k = self.call_counter;
        self.call_counter += 1;
        let prefix = format!("{name}#{k}");
        let ret = self.out.vars.intern(&format!("{prefix}::return"));
        let mut callee_scope = Scope {
            kind: ScopeKind::Function {
                prefix: prefix.clone(),
                globals: HashSet::new(),
                ret,
            },
        };
        // Bind parameters: actual argument, or the default, or ⊥.
        for (i, p) in info.params.iter().enumerate() {
            let pvar = self.resolve(&callee_scope, &p.name);
            let expr = match arg_fs.get(i) {
                Some(a) => a.clone(),
                None => match &p.default {
                    Some(d) => self.lower_expr(&d.clone(), &mut callee_scope, out),
                    None => FExpr::Const(self.prelude.bottom()),
                },
            };
            out.push(FCmd::Assign {
                var: pvar,
                expr,
                mask: None,
                site: self.site(call_span),
            });
        }
        // The return variable starts trusted.
        out.push(FCmd::Assign {
            var: ret,
            expr: FExpr::Const(self.prelude.bottom()),
            mask: None,
            site: self.site(call_span),
        });
        self.inline_stack.push(name.to_owned());
        for s in info.body.clone() {
            self.lower_stmt(&s, &mut callee_scope, out);
        }
        self.inline_stack.pop();
        // Copy back by-reference parameters.
        for (i, p) in info.params.iter().enumerate() {
            if !p.by_ref {
                continue;
            }
            let Some(Expr::Var(arg_name)) = args.get(i) else {
                continue;
            };
            if self.prelude.is_superglobal(arg_name) {
                continue;
            }
            let pvar = self.resolve(&callee_scope, &p.name);
            let cvar = self.resolve(caller_scope, arg_name);
            out.push(FCmd::Assign {
                var: cvar,
                expr: FExpr::Var(pvar),
                mask: None,
                site: self.site(call_span),
            });
        }
        FExpr::Var(ret)
    }

    // ---- statements ----------------------------------------------------

    fn lower_stmt(&mut self, s: &Stmt, scope: &mut Scope, out: &mut Vec<FCmd>) {
        // A pending SELECT never survives its own statement.
        self.pending_select = None;
        match s {
            Stmt::Expr(e, _) => {
                let _ = self.lower_expr(e, scope, out);
            }
            Stmt::Echo(args, span) => {
                let mut vars = Vec::new();
                for a in args {
                    let f = self.lower_expr(a, scope, out);
                    vars.extend(f.vars());
                }
                if !vars.is_empty() {
                    let spec = self.prelude.soc("echo").expect("echo is in the prelude");
                    out.push(FCmd::Soc {
                        func: "echo".to_owned(),
                        args: vars,
                        bound: spec.bound,
                        strict: spec.strict,
                        kind: AssertKind::Soc,
                        site: self.site(*span),
                    });
                }
            }
            Stmt::If {
                cond,
                then_branch,
                elseifs,
                else_branch,
                span,
            } => {
                let _ = self.lower_expr(cond, scope, out);
                let mut then_cmds = Vec::new();
                for st in then_branch {
                    self.lower_stmt(st, scope, &mut then_cmds);
                }
                // Build the else side from elseif arms, right to left.
                let mut else_cmds = Vec::new();
                if let Some(b) = else_branch {
                    for st in b {
                        self.lower_stmt(st, scope, &mut else_cmds);
                    }
                }
                for (c, b) in elseifs.iter().rev() {
                    let mut arm_pre = Vec::new();
                    let _ = self.lower_expr(c, scope, &mut arm_pre);
                    let mut arm_cmds = Vec::new();
                    for st in b {
                        self.lower_stmt(st, scope, &mut arm_cmds);
                    }
                    let inner_else = std::mem::take(&mut else_cmds);
                    else_cmds = arm_pre;
                    else_cmds.push(FCmd::If {
                        then_cmds: arm_cmds,
                        else_cmds: inner_else,
                        site: self.site(*span),
                    });
                }
                self.invalidate_tracked(&then_cmds);
                self.invalidate_tracked(&else_cmds);
                out.push(FCmd::If {
                    then_cmds,
                    else_cmds,
                    site: self.site(*span),
                });
            }
            Stmt::While { cond, body, span } => {
                let mut cond_pre = Vec::new();
                let _ = self.lower_expr(cond, scope, &mut cond_pre);
                out.extend(cond_pre.iter().cloned());
                let mut body_cmds = Vec::new();
                for st in body {
                    self.lower_stmt(st, scope, &mut body_cmds);
                }
                body_cmds.extend(cond_pre);
                self.invalidate_tracked(&body_cmds);
                out.push(FCmd::While {
                    body: body_cmds,
                    site: self.site(*span),
                });
            }
            Stmt::DoWhile { body, cond, span } => {
                // The body runs at least once, then as a selection.
                let mut body_cmds = Vec::new();
                for st in body {
                    self.lower_stmt(st, scope, &mut body_cmds);
                }
                let _ = self.lower_expr(cond, scope, &mut body_cmds);
                out.extend(body_cmds.iter().cloned());
                self.invalidate_tracked(&body_cmds);
                out.push(FCmd::While {
                    body: body_cmds,
                    site: self.site(*span),
                });
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                span,
            } => {
                for e in init {
                    let _ = self.lower_expr(e, scope, out);
                }
                let mut cond_pre = Vec::new();
                if let Some(c) = cond {
                    let _ = self.lower_expr(c, scope, &mut cond_pre);
                }
                out.extend(cond_pre.iter().cloned());
                let mut body_cmds = Vec::new();
                for st in body {
                    self.lower_stmt(st, scope, &mut body_cmds);
                }
                for e in step {
                    let _ = self.lower_expr(e, scope, &mut body_cmds);
                }
                body_cmds.extend(cond_pre);
                self.invalidate_tracked(&body_cmds);
                out.push(FCmd::While {
                    body: body_cmds,
                    site: self.site(*span),
                });
            }
            Stmt::Foreach {
                array,
                key,
                value,
                body,
                span,
            } => {
                let arr = self.lower_expr(array, scope, out);
                let mut body_cmds = Vec::new();
                let vvar = self.resolve(scope, value);
                body_cmds.push(FCmd::Assign {
                    var: vvar,
                    expr: arr.clone(),
                    mask: None,
                    site: self.site(*span),
                });
                if let Some(k) = key {
                    let kvar = self.resolve(scope, k);
                    body_cmds.push(FCmd::Assign {
                        var: kvar,
                        expr: arr,
                        mask: None,
                        site: self.site(*span),
                    });
                }
                for st in body {
                    self.lower_stmt(st, scope, &mut body_cmds);
                }
                self.invalidate_tracked(&body_cmds);
                out.push(FCmd::While {
                    body: body_cmds,
                    site: self.site(*span),
                });
            }
            Stmt::Switch {
                subject,
                cases,
                span,
            } => {
                let _ = self.lower_expr(subject, scope, out);
                // Each case body may or may not run: a sequence of
                // independent nondeterministic selections soundly
                // over-approximates fallthrough.
                for (label, body) in cases {
                    if let Some(l) = label {
                        let _ = self.lower_expr(l, scope, out);
                    }
                    let mut case_cmds = Vec::new();
                    for st in body {
                        self.lower_stmt(st, scope, &mut case_cmds);
                    }
                    if !case_cmds.is_empty() {
                        self.invalidate_tracked(&case_cmds);
                        out.push(FCmd::If {
                            then_cmds: case_cmds,
                            else_cmds: Vec::new(),
                            site: self.site(*span),
                        });
                    }
                }
            }
            Stmt::FuncDecl { .. } => {} // unfolded at call sites
            Stmt::Return(value, span) => {
                if let Some(v) = value {
                    let f = self.lower_expr(v, scope, out);
                    if let ScopeKind::Function { ret, .. } = scope.kind {
                        // A function may return on several paths; join.
                        out.push(FCmd::Assign {
                            var: ret,
                            expr: FExpr::Join(vec![FExpr::Var(ret), f]),
                            mask: None,
                            site: self.site(*span),
                        });
                    }
                }
                if matches!(scope.kind, ScopeKind::Global) {
                    out.push(FCmd::Stop {
                        site: self.site(*span),
                    });
                }
            }
            Stmt::Include { path, span, .. } => {
                // Constant-path includes are spliced before filtering; a
                // leftover one has a dynamic path. Its content is unknown,
                // but the path itself flows to a sensitive channel: a
                // tainted path is a file-inclusion vulnerability.
                let f = self.lower_expr(path, scope, out);
                let vars = f.vars();
                if !vars.is_empty() {
                    if let Some(spec) = self.prelude.soc("include") {
                        out.push(FCmd::Soc {
                            func: "include".to_owned(),
                            args: vars,
                            bound: spec.bound,
                            strict: spec.strict,
                            kind: AssertKind::Soc,
                            site: self.site(*span),
                        });
                    }
                }
            }
            Stmt::Global(names, _) => {
                if let ScopeKind::Function { globals, .. } = &mut scope.kind {
                    for n in names {
                        globals.insert(n.clone());
                    }
                }
            }
            Stmt::Break(_) | Stmt::Continue(_) => {}
            Stmt::Exit(value, span) => {
                if let Some(v) = value {
                    let f = self.lower_expr(v, scope, out);
                    let vars = f.vars();
                    if !vars.is_empty() {
                        let spec = self.prelude.soc("echo").expect("echo is in the prelude");
                        out.push(FCmd::Soc {
                            func: "echo".to_owned(),
                            args: vars,
                            bound: spec.bound,
                            strict: spec.strict,
                            kind: AssertKind::Soc,
                            site: self.site(*span),
                        });
                    }
                }
                out.push(FCmd::Stop {
                    site: self.site(*span),
                });
            }
            Stmt::Block(body) => {
                for st in body {
                    self.lower_stmt(st, scope, out);
                }
            }
            Stmt::InlineHtml(..) | Stmt::Nop(_) => {}
        }
    }
}

/// Collects the variables a SOC precondition covers, honoring
/// `arg_positions` when present.
fn soc_arg_vars(arg_fs: &[FExpr], positions: Option<&[usize]>) -> Vec<VarId> {
    let mut vars = Vec::new();
    match positions {
        None => {
            for a in arg_fs {
                vars.extend(a.vars());
            }
        }
        Some(ps) => {
            for &p in ps {
                if let Some(a) = arg_fs.get(p) {
                    vars.extend(a.vars());
                }
            }
        }
    }
    let mut seen = HashSet::new();
    vars.retain(|v| seen.insert(*v));
    vars
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_front::parse_source;

    fn filter(src: &str) -> FProgram {
        let program = parse_source(src).expect("parse");
        filter_program(
            &program,
            src,
            "test.php",
            &Prelude::standard(),
            &FilterOptions::default(),
        )
    }

    fn assigns_to<'p>(p: &'p FProgram, name: &str) -> Vec<&'p FCmd> {
        fn walk<'p>(cmds: &'p [FCmd], id: VarId, out: &mut Vec<&'p FCmd>) {
            for c in cmds {
                match c {
                    FCmd::Assign { var, .. } if *var == id => out.push(c),
                    FCmd::If {
                        then_cmds,
                        else_cmds,
                        ..
                    } => {
                        walk(then_cmds, id, out);
                        walk(else_cmds, id, out);
                    }
                    FCmd::While { body, .. } => walk(body, id, out),
                    _ => {}
                }
            }
        }
        let id = p
            .vars
            .lookup(name)
            .unwrap_or_else(|| panic!("no var {name}"));
        let mut out = Vec::new();
        walk(&p.cmds, id, &mut out);
        out
    }

    #[test]
    fn superglobal_read_flows_through_channel_variable() {
        let p = filter("<?php $sid = $_GET['sid'];");
        // The channel variable is initialized by a synthetic UIC
        // postcondition at program start…
        let inits = assigns_to(&p, "_GET[sid]");
        assert_eq!(inits.len(), 1);
        match inits[0] {
            FCmd::Assign { expr, site, .. } => {
                assert_eq!(expr, &FExpr::Const(taint_lattice::TwoPoint::TAINTED));
                assert!(site.is_synthetic());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&p.cmds[0], FCmd::Assign { .. }));
        // …and the program variable copies from it. The bare `_GET`
        // channel is never materialized: only the key that was read.
        match assigns_to(&p, "sid")[0] {
            FCmd::Assign { expr, .. } => {
                let get = p.vars.lookup("_GET[sid]").unwrap();
                assert_eq!(expr, &FExpr::Var(get));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(p.vars.lookup("_GET").is_none());
    }

    #[test]
    fn distinct_keys_are_distinct_channels() {
        let p = filter(
            "<?php $a = $_GET['a']; $b = $_GET['b']; $c = $_POST['a']; \
             $d = $_GET[$k]; $q = \"x=$_COOKIE[tok]\"; echo $q;",
        );
        // One channel per (superglobal, literal key)…
        for name in ["_GET[a]", "_GET[b]", "_POST[a]", "_COOKIE[tok]"] {
            assert_eq!(assigns_to(&p, name).len(), 1, "{name}");
        }
        // …while a computed index degrades to the whole-channel read.
        assert_eq!(assigns_to(&p, "_GET").len(), 1);
    }

    #[test]
    fn echo_of_variable_is_a_soc() {
        let p = filter("<?php echo $x;");
        assert_eq!(p.num_socs(), 1);
    }

    #[test]
    fn echo_of_constant_is_not_a_soc() {
        let p = filter("<?php echo 'hello', 42;");
        assert_eq!(p.num_socs(), 0);
    }

    #[test]
    fn sanitizer_resets_taint() {
        let p = filter("<?php $x = htmlspecialchars($_GET['q']);");
        // The sanitizer materializes an untainted temp…
        match assigns_to(&p, "htmlspecialchars#san0")[0] {
            FCmd::Assign { expr, .. } => {
                assert_eq!(expr, &FExpr::Const(taint_lattice::TwoPoint::UNTAINTED));
            }
            other => panic!("unexpected {other:?}"),
        }
        // …and the program variable copies from it.
        match assigns_to(&p, "x")[0] {
            FCmd::Assign { expr, .. } => {
                let tmp = p.vars.lookup("htmlspecialchars#san0").unwrap();
                assert_eq!(expr, &FExpr::Var(tmp));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn string_interpolation_reads_vars() {
        let p = filter("<?php $q = \"WHERE sid=$sid\"; mysql_query($q);");
        match assigns_to(&p, "q")[0] {
            FCmd::Assign { expr, .. } => {
                let sid = p.vars.lookup("sid").unwrap();
                assert_eq!(expr.vars(), vec![sid]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.num_socs(), 1);
    }

    #[test]
    fn unknown_function_propagates_taint() {
        let p = filter("<?php $y = mystery($x, $z);");
        match assigns_to(&p, "y")[0] {
            FCmd::Assign { expr, .. } => {
                assert_eq!(expr.vars().len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compound_concat_is_weak_update() {
        let p = filter("<?php $q .= $part;");
        match assigns_to(&p, "q")[0] {
            FCmd::Assign { expr, .. } => {
                let vars = expr.vars();
                let q = p.vars.lookup("q").unwrap();
                assert!(vars.contains(&q), "old value must be joined in");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn array_element_assignment_is_weak_update() {
        let p = filter("<?php $a['k'] = $v;");
        match assigns_to(&p, "a")[0] {
            FCmd::Assign { expr, .. } => {
                let a = p.vars.lookup("a").unwrap();
                assert!(expr.vars().contains(&a));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_branches_lower_to_nested_ifs() {
        let p = filter("<?php if ($c) { $x = 1; } elseif ($d) { $x = 2; } else { $x = 3; }");
        match &p.cmds[0] {
            FCmd::If { else_cmds, .. } => match &else_cmds[0] {
                FCmd::If { else_cmds, .. } => assert_eq!(else_cmds.len(), 1),
                other => panic!("expected nested if, got {other:?}"),
            },
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn while_condition_assignment_runs_in_loop() {
        // Figure 2 idiom: while ($row = @mysql_fetch_array($r)) …
        let p = filter("<?php while ($row = @mysql_fetch_array($r)) { echo $row; }");
        // The condition's assignment happens once before and once in the
        // loop body.
        assert_eq!(assigns_to(&p, "row").len(), 2);
        assert_eq!(p.num_socs(), 1);
    }

    #[test]
    fn db_fetch_is_untrusted_input() {
        let p = filter("<?php $row = mysql_fetch_array($r);");
        match assigns_to(&p, "row")[0] {
            FCmd::Assign { expr, .. } => {
                assert_eq!(expr, &FExpr::Const(taint_lattice::TwoPoint::TAINTED));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn function_unfolding_binds_params_and_return() {
        let p = filter(
            "<?php function wrap($s) { return $s . '!'; } $out = wrap($_GET['x']); echo $out;",
        );
        // A parameter binding for wrap#0::s must exist and carry taint.
        let binds = assigns_to(&p, "wrap#0::s");
        assert_eq!(binds.len(), 1);
        match binds[0] {
            FCmd::Assign { expr, site, .. } => {
                let get = p.vars.lookup("_GET[x]").unwrap();
                assert_eq!(expr, &FExpr::Var(get));
                // Parameter bindings carry the call site, not a
                // synthetic location.
                assert!(!site.is_synthetic());
            }
            other => panic!("unexpected {other:?}"),
        }
        // The return variable feeds $out.
        match assigns_to(&p, "out")[0] {
            FCmd::Assign { expr, .. } => {
                let ret = p.vars.lookup("wrap#0::return").unwrap();
                assert_eq!(expr, &FExpr::Var(ret));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn recursive_functions_are_cut_off() {
        let p = filter("<?php function r($x) { return r($x); } $y = r($_GET['q']); echo $y;");
        // Must terminate; inner recursive calls degrade to join-of-args.
        assert!(p.num_commands() > 0);
        // The degraded call records its exact call site.
        assert_eq!(p.recursion_cutoffs.len(), 1);
        let site = &p.recursion_cutoffs[0];
        assert!(!site.is_synthetic());
        assert!(site.snippet.contains("r($x)"), "{:?}", site.snippet);
    }

    #[test]
    fn non_recursive_programs_record_no_cutoffs() {
        let p = filter("<?php function w($s) { return $s; } echo w($_GET['x']);");
        assert!(p.recursion_cutoffs.is_empty());
    }

    #[test]
    fn dynamic_include_path_is_a_file_inclusion_soc() {
        let p = filter("<?php include $_GET['page'];");
        assert_eq!(p.num_socs(), 1);
        fn find_soc(cmds: &[FCmd]) -> Option<&FCmd> {
            cmds.iter().find(|c| matches!(c, FCmd::Soc { .. }))
        }
        match find_soc(&p.cmds).expect("one soc") {
            FCmd::Soc { func, args, .. } => {
                assert_eq!(func, "include");
                assert_eq!(args, &vec![p.vars.lookup("_GET[page]").unwrap()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn constant_include_path_is_not_a_soc() {
        let p = filter("<?php include 'header.php';");
        assert_eq!(p.num_socs(), 0);
    }

    #[test]
    fn globals_link_function_locals_to_toplevel() {
        let p = filter("<?php $g = $_GET['x']; function f() { global $g; echo $g; } f();");
        assert_eq!(p.num_socs(), 1);
        // The echo inside f() must reference the top-level $g.
        fn find_soc(cmds: &[FCmd]) -> Option<&FCmd> {
            for c in cmds {
                match c {
                    FCmd::Soc { .. } => return Some(c),
                    FCmd::If {
                        then_cmds,
                        else_cmds,
                        ..
                    } => {
                        if let Some(s) = find_soc(then_cmds).or_else(|| find_soc(else_cmds)) {
                            return Some(s);
                        }
                    }
                    FCmd::While { body, .. } => {
                        if let Some(s) = find_soc(body) {
                            return Some(s);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        match find_soc(&p.cmds).expect("one soc") {
            FCmd::Soc { args, .. } => {
                assert_eq!(args, &vec![p.vars.lookup("g").unwrap()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn by_ref_params_copy_back() {
        let p = filter("<?php function taintit(&$o) { $o = $_GET['x']; } taintit($v); echo $v;");
        let assigns = assigns_to(&p, "v");
        assert_eq!(
            assigns.len(),
            1,
            "by-ref copy-back must assign the caller var"
        );
    }

    #[test]
    fn extract_materializes_unassigned_reads() {
        // Figure 2: extract($row); echo "$tickets_username…";
        let p =
            filter("<?php $row = mysql_fetch_array($r); extract($row); echo \"$tickets_subject\";");
        let assigns = assigns_to(&p, "tickets_subject");
        assert_eq!(assigns.len(), 1);
        match assigns[0] {
            FCmd::Assign { expr, .. } => {
                let row = p.vars.lookup("row").unwrap();
                assert!(expr.vars().contains(&row));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exit_emits_stop_and_die_message_is_checked() {
        let p = filter("<?php die($msg);");
        assert_eq!(p.num_socs(), 1);
        assert!(matches!(p.cmds.last(), Some(FCmd::Stop { .. })));
    }

    #[test]
    fn top_level_return_stops() {
        let p = filter("<?php return; echo $x;");
        assert!(matches!(p.cmds[0], FCmd::Stop { .. }));
    }

    #[test]
    fn foreach_assigns_value_and_key_in_loop() {
        let p = filter("<?php foreach ($rows as $k => $v) { echo $v; }");
        match &p.cmds[0] {
            FCmd::While { body, .. } => {
                assert!(matches!(body[0], FCmd::Assign { .. }));
                assert!(matches!(body[1], FCmd::Assign { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn switch_cases_become_selections() {
        let p = filter("<?php switch ($x) { case 1: $a = $_GET['p']; break; default: echo $a; }");
        let ifs = p
            .cmds
            .iter()
            .filter(|c| matches!(c, FCmd::If { .. }))
            .count();
        assert_eq!(ifs, 2);
    }

    #[test]
    fn exec_checks_first_argument_only() {
        let p = filter("<?php exec($cmd, $output_lines);");
        fn soc_args(cmds: &[FCmd]) -> Vec<VarId> {
            for c in cmds {
                if let FCmd::Soc { args, .. } = c {
                    return args.clone();
                }
            }
            Vec::new()
        }
        let args = soc_args(&p.cmds);
        assert_eq!(args.len(), 1);
        assert_eq!(args[0], p.vars.lookup("cmd").unwrap());
    }

    #[test]
    fn method_query_is_a_soc() {
        let p = filter("<?php $db->query($q);");
        assert_eq!(p.num_socs(), 1);
    }

    #[test]
    fn sites_carry_lines() {
        let src = "<?php\n$x = $_GET['a'];\necho $x;\n";
        let p = filter(src);
        // cmds[0] is the synthetic _GET init; the real statements follow.
        assert!(p.cmds[0].site().is_synthetic());
        assert_eq!(p.cmds[1].site().line, 2);
        assert_eq!(p.cmds[2].site().line, 3);
        assert_eq!(p.cmds[2].site().file, "test.php");
    }
}
