use std::collections::HashMap;
use std::fmt;

/// An interned program variable in the information-flow model.
///
/// Every PHP variable that survives filtering — including synthesized
/// ones for unfolded function parameters and return values — gets a
/// dense id usable as an array index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(u32);

impl VarId {
    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `VarId` from an index previously obtained with
    /// [`VarId::index`].
    pub fn from_index(index: usize) -> Self {
        VarId(u32::try_from(index).expect("variable index overflows u32"))
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Interns variable names to [`VarId`]s and back.
///
/// # Examples
///
/// ```
/// use webssari_ir::VarTable;
///
/// let mut t = VarTable::new();
/// let sid = t.intern("sid");
/// assert_eq!(t.intern("sid"), sid);
/// assert_eq!(t.name(sid), "sid");
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct VarTable {
    names: Vec<String>,
    ids: HashMap<String, VarId>,
}

impl VarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        VarTable::default()
    }

    /// Returns the id for `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = VarId(u32::try_from(self.names.len()).expect("too many variables"));
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.ids.get(name).copied()
    }

    /// The name of an interned variable.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variables are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all ids in interning order.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.names.len()).map(|i| VarId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = VarTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.intern("a"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_without_interning() {
        let mut t = VarTable::new();
        assert_eq!(t.lookup("x"), None);
        let x = t.intern("x");
        assert_eq!(t.lookup("x"), Some(x));
    }

    #[test]
    fn names_round_trip() {
        let mut t = VarTable::new();
        let id = t.intern("query");
        assert_eq!(t.name(id), "query");
    }

    #[test]
    fn iter_in_order() {
        let mut t = VarTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn var_id_index_round_trip() {
        let id = VarId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "v7");
    }
}
