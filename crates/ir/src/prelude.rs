//! Pre- and postcondition prelude for built-in functions.
//!
//! "In WebSSARI, UICs are given predefined postconditions consisting of
//! command sets that match the designated safety levels of the retrieved
//! data. […] sensitive output channels (SOC) […] require trusted
//! arguments. Each one is assigned a predefined precondition that states
//! the required argument safety levels. […] pre- and postcondition
//! definitions are stored in two prelude files that are loaded during
//! startup" (paper §3.2).

use std::collections::HashMap;

use taint_lattice::{Elem, Lattice, Powerset, TwoPoint};

/// A sensitive output channel's precondition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SocSpec {
    /// Required bound `τ_r` on argument types.
    pub bound: Elem,
    /// `true` for the paper's strict check (`∀x ∈ X: t_x < τ_r`, the
    /// two-point policy); `false` for the non-strict `t_x ≤ τ_r` used
    /// by multi-class policies where `τ_r` is the *allowed* kind set.
    pub strict: bool,
    /// Which argument positions the precondition covers; `None` means
    /// every argument.
    pub arg_positions: Option<Vec<usize>>,
    /// The vulnerability class reports attribute to violations
    /// (`"xss"`, `"sqli"`, `"shell"`, …).
    pub class: String,
}

/// The prelude: per-function information-flow contracts.
///
/// # Examples
///
/// ```
/// use webssari_ir::Prelude;
///
/// let p = Prelude::standard();
/// assert!(p.soc("mysql_query").is_some());
/// assert!(p.uic_level("mysql_fetch_array").is_some());
/// assert!(p.is_sanitizer("htmlspecialchars"));
/// assert!(p.is_superglobal("_GET"));
/// ```
#[derive(Clone, Debug)]
pub struct Prelude {
    uic: HashMap<String, Elem>,
    soc: HashMap<String, SocSpec>,
    sanitizers: HashMap<String, Elem>,
    /// Kind-removing sanitizers: the result is the argument join
    /// *met* with the kept set (multi-class policies).
    sanitizer_masks: HashMap<String, Elem>,
    superglobals: HashMap<String, Elem>,
    /// Functions that return trusted scalars regardless of input
    /// (isset, count, strlen, …).
    trusted_returns: Vec<String>,
    top: Elem,
    bottom: Elem,
}

impl Prelude {
    /// Creates an empty prelude over the two-point lattice.
    pub fn empty() -> Self {
        let l = TwoPoint::new();
        Prelude {
            uic: HashMap::new(),
            soc: HashMap::new(),
            sanitizers: HashMap::new(),
            sanitizer_masks: HashMap::new(),
            superglobals: HashMap::new(),
            trusted_returns: Vec::new(),
            top: l.top(),
            bottom: l.bottom(),
        }
    }

    /// The standard prelude used by the experiments: PHP's untrusted
    /// input channels, sensitive output channels, and sanitization
    /// routines over the two-point taint lattice.
    pub fn standard() -> Self {
        let mut p = Prelude::empty();
        let tainted = TwoPoint::TAINTED;
        let top = tainted;

        // --- Untrusted input channels (postcondition: retrieved data is
        // tainted). Database reads are untrusted because of stored
        // attacks (the paper's Figure 1/2 stored-XSS example).
        for f in [
            "get_http_vars",
            "http_get_vars",
            "getenv",
            "file_get_contents",
            "file",
            "fread",
            "fgets",
            "gzread",
            "mysql_fetch_array",
            "mysql_fetch_row",
            "mysql_fetch_assoc",
            "mysql_fetch_object",
            "mysql_result",
            "pg_fetch_array",
            "pg_fetch_row",
            "import_request_variables",
            "apache_request_headers",
            "read_input",
        ] {
            p.uic.insert(f.to_owned(), tainted);
        }

        // --- Superglobals and legacy request globals: reading them is
        // reading an untrusted channel.
        for g in [
            "_GET",
            "_POST",
            "_REQUEST",
            "_COOKIE",
            "_FILES",
            "_SERVER",
            "HTTP_GET_VARS",
            "HTTP_POST_VARS",
            "HTTP_COOKIE_VARS",
            "HTTP_SERVER_VARS",
            "HTTP_REFERER",
            "HTTP_USER_AGENT",
            "QUERY_STRING",
            "PHP_SELF",
            "REQUEST_URI",
        ] {
            p.superglobals.insert(g.to_owned(), tainted);
        }

        // --- Sensitive output channels (precondition: args < ⊤, i.e.
        // untainted) with their vulnerability classes.
        let soc = |bound, class: &str, positions: Option<Vec<usize>>| SocSpec {
            bound,
            strict: true,
            arg_positions: positions,
            class: class.to_owned(),
        };
        for f in ["echo", "print", "printf", "print_r", "vprintf", "die_msg"] {
            p.soc.insert(f.to_owned(), soc(top, "xss", None));
        }
        for f in [
            "mysql_query",
            "mysql_db_query",
            "mysql_unbuffered_query",
            "pg_query",
            "pg_exec",
            "sqlite_query",
            "dosql",
            "db_query",
            "query",
            "execute_query",
        ] {
            p.soc.insert(f.to_owned(), soc(top, "sqli", None));
        }
        for f in [
            "exec",
            "system",
            "passthru",
            "shell_exec",
            "popen",
            "proc_open",
        ] {
            p.soc.insert(f.to_owned(), soc(top, "shell", Some(vec![0])));
        }
        for f in ["eval", "assert_code", "create_function"] {
            p.soc.insert(f.to_owned(), soc(top, "code-injection", None));
        }
        for f in ["fopen", "unlink", "readfile", "file_put_contents"] {
            p.soc
                .insert(f.to_owned(), soc(top, "file-access", Some(vec![0])));
        }
        p.soc
            .insert("header".to_owned(), soc(top, "response-splitting", None));
        p.soc
            .insert("setcookie".to_owned(), soc(top, "response-splitting", None));
        p.soc
            .insert("mail".to_owned(), soc(top, "mail-injection", None));
        // Dynamic `include $x` / `require $x` statements are lowered to
        // this pseudo-channel when the path expression reads variables.
        p.soc
            .insert("include".to_owned(), soc(top, "file-inclusion", None));

        // --- Sanitization routines: postcondition resets to ⊥.
        for f in [
            "htmlspecialchars",
            "htmlentities",
            "addslashes",
            "mysql_escape_string",
            "mysql_real_escape_string",
            "pg_escape_string",
            "escapeshellarg",
            "escapeshellcmd",
            "intval",
            "floatval",
            "urlencode",
            "rawurlencode",
            "basename",
            "md5",
            "sha1",
            "crc32",
            "strip_tags",
            "sanitize",
            "webssari_sanitize",
        ] {
            p.sanitizers.insert(f.to_owned(), TwoPoint::UNTAINTED);
        }

        // --- Builtins returning trusted scalars.
        for f in [
            "isset",
            "empty",
            "count",
            "sizeof",
            "strlen",
            "is_array",
            "is_numeric",
            "is_string",
            "is_int",
            "defined",
            "function_exists",
            "rand",
            "mt_rand",
            "time",
            "date",
            "mysql_num_rows",
            "mysql_insert_id",
            "mysql_error",
            "mysql_connect",
            "mysql_select_db",
            "mysql_close",
            "session_start",
            "ob_start",
            "error_reporting",
            "define",
            "headers_sent",
        ] {
            p.trusted_returns.push(f.to_owned());
        }
        p
    }

    /// The lattice top used by this prelude's contracts.
    pub fn top(&self) -> Elem {
        self.top
    }

    /// The lattice bottom used by this prelude's contracts.
    pub fn bottom(&self) -> Elem {
        self.bottom
    }

    /// UIC postcondition level of `func`, if it is a UIC.
    pub fn uic_level(&self, func: &str) -> Option<Elem> {
        self.uic.get(&func.to_ascii_lowercase()).copied()
    }

    /// SOC precondition of `func`, if it is a SOC.
    pub fn soc(&self, func: &str) -> Option<&SocSpec> {
        self.soc.get(&func.to_ascii_lowercase())
    }

    /// Whether `func` is a sanitization routine; returns its
    /// postcondition level.
    pub fn sanitizer_level(&self, func: &str) -> Option<Elem> {
        self.sanitizers.get(&func.to_ascii_lowercase()).copied()
    }

    /// Whether `func` is a sanitizer.
    pub fn is_sanitizer(&self, func: &str) -> bool {
        self.sanitizer_level(func).is_some() || self.sanitizer_mask(func).is_some()
    }

    /// The kept-kind set of a kind-removing sanitizer, if `func` is one
    /// (multi-class preludes only).
    pub fn sanitizer_mask(&self, func: &str) -> Option<Elem> {
        self.sanitizer_masks
            .get(&func.to_ascii_lowercase())
            .copied()
    }

    /// Registers a kind-removing sanitizer: the result keeps only the
    /// kinds in `keep`.
    pub fn add_sanitizer_mask(&mut self, func: impl Into<String>, keep: Elem) {
        self.sanitizer_masks
            .insert(func.into().to_ascii_lowercase(), keep);
    }

    /// Whether `func` returns a trusted scalar regardless of arguments.
    pub fn returns_trusted(&self, func: &str) -> bool {
        let lower = func.to_ascii_lowercase();
        self.trusted_returns.contains(&lower)
    }

    /// The taint level assigned to reading superglobal `name`, if it is
    /// one. Keyed channel reads (`_GET[id]`) resolve through their base
    /// superglobal: every key of a request channel carries the
    /// channel's level.
    pub fn superglobal_level(&self, name: &str) -> Option<Elem> {
        let base = name.split('[').next().unwrap_or(name);
        self.superglobals.get(base).copied()
    }

    /// Whether `name` is a superglobal / legacy request global, or a
    /// keyed read of one (`_POST[msg]`).
    pub fn is_superglobal(&self, name: &str) -> bool {
        let base = name.split('[').next().unwrap_or(name);
        self.superglobals.contains_key(base)
    }

    /// Registers a custom UIC.
    pub fn add_uic(&mut self, func: impl Into<String>, level: Elem) {
        self.uic.insert(func.into().to_ascii_lowercase(), level);
    }

    /// Registers a custom SOC.
    pub fn add_soc(&mut self, func: impl Into<String>, spec: SocSpec) {
        self.soc.insert(func.into().to_ascii_lowercase(), spec);
    }

    /// Registers a custom sanitizer.
    pub fn add_sanitizer(&mut self, func: impl Into<String>, level: Elem) {
        self.sanitizers
            .insert(func.into().to_ascii_lowercase(), level);
    }

    /// Number of SOC contracts.
    pub fn num_socs(&self) -> usize {
        self.soc.len()
    }

    /// A deterministic, canonical text rendering of every contract in
    /// this prelude.
    ///
    /// Two preludes with identical contracts render identically
    /// regardless of registration order (entries are emitted sorted),
    /// and any contract change — adding, removing, or altering a UIC,
    /// SOC, sanitizer, superglobal, or trusted return — changes the
    /// text. The incremental verification cache hashes this string into
    /// its config fingerprint so stale results self-invalidate when the
    /// prelude changes.
    pub fn canonical_description(&self) -> String {
        use std::fmt::Write as _;

        let mut out = String::new();
        let _ = writeln!(out, "top {:?}", self.top);
        let _ = writeln!(out, "bottom {:?}", self.bottom);
        let levels = |out: &mut String, tag: &str, map: &HashMap<String, Elem>| {
            let mut entries: Vec<_> = map.iter().collect();
            entries.sort_by(|a, b| a.0.cmp(b.0));
            for (name, level) in entries {
                let _ = writeln!(out, "{tag} {name} {level:?}");
            }
        };
        levels(&mut out, "uic", &self.uic);
        levels(&mut out, "sanitizer", &self.sanitizers);
        levels(&mut out, "sanitizer_mask", &self.sanitizer_masks);
        levels(&mut out, "superglobal", &self.superglobals);
        let mut socs: Vec<_> = self.soc.iter().collect();
        socs.sort_by(|a, b| a.0.cmp(b.0));
        for (name, spec) in socs {
            let _ = writeln!(
                out,
                "soc {name} class={} strict={} bound={:?} args={:?}",
                spec.class, spec.strict, spec.bound, spec.arg_positions,
            );
        }
        let mut trusted = self.trusted_returns.clone();
        trusted.sort();
        for name in trusted {
            let _ = writeln!(out, "trusted {name}");
        }
        out
    }

    /// Extends the prelude from a declaration text — the reproduction's
    /// version of WebSSARI's user-editable prelude files ("users can
    /// supply the prelude with their own routines", §4).
    ///
    /// One declaration per line; `#` starts a comment:
    ///
    /// ```text
    /// uic        read_feed
    /// soc        my_exec      shell  args=0
    /// soc        tpl_render   xss
    /// sanitizer  my_escape
    /// superglobal _ENV
    /// ```
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input.
    pub fn extend_from_str(&mut self, text: &str) -> Result<(), String> {
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let kind = parts.next().expect("nonempty line has a first token");
            let name = parts
                .next()
                .ok_or_else(|| format!("line {}: missing name after `{kind}`", lineno + 1))?;
            match kind {
                "uic" => self.add_uic(name, self.top),
                "sanitizer" => self.add_sanitizer(name, self.bottom),
                "superglobal" => {
                    self.superglobals.insert(name.to_owned(), self.top);
                }
                "soc" => {
                    let class = parts.next().unwrap_or("taint").to_owned();
                    let mut arg_positions = None;
                    for opt in parts {
                        if let Some(list) = opt.strip_prefix("args=") {
                            let positions: Result<Vec<usize>, _> =
                                list.split(',').map(str::parse).collect();
                            arg_positions = Some(positions.map_err(|_| {
                                format!("line {}: bad args list {list:?}", lineno + 1)
                            })?);
                        } else {
                            return Err(format!("line {}: unknown option {opt:?}", lineno + 1));
                        }
                    }
                    self.add_soc(
                        name,
                        SocSpec {
                            bound: self.top,
                            strict: true,
                            arg_positions,
                            class,
                        },
                    );
                }
                other => {
                    return Err(format!(
                        "line {}: unknown declaration kind {other:?} \
                         (expected uic/soc/sanitizer/superglobal)",
                        lineno + 1
                    ))
                }
            }
        }
        Ok(())
    }
}

impl Prelude {
    /// A multi-class prelude over the powerset lattice of taint kinds
    /// `{xss, sqli, shell}` — the paper's §3.1 lattice generality made
    /// executable. Unlike the two-point policy, sanitizers here remove
    /// only the kinds they actually neutralize, so
    /// `echo addslashes($_GET[...])` is still cross-site scripting and
    /// `mysql_query(htmlspecialchars(...))` is still SQL injection.
    ///
    /// Returns the lattice together with the prelude (contract [`Elem`]s
    /// are only meaningful against that lattice).
    pub fn multiclass() -> (Powerset, Prelude) {
        let lattice = Powerset::new(vec!["xss".into(), "sqli".into(), "shell".into()]);
        let (xss, sqli, shell) = (0usize, 1usize, 2usize);
        let all = lattice.top();
        let none = lattice.bottom();
        let without = |kind: usize| lattice.without_kind(all, kind);

        let mut p = Prelude::standard();
        p.top = all;
        p.bottom = none;
        // Sources carry every kind of taint.
        for level in p.uic.values_mut() {
            *level = all;
        }
        for level in p.superglobals.values_mut() {
            *level = all;
        }
        // SOC preconditions: non-strict ≤ against the *allowed* set
        // (the complement of the forbidden kind).
        for spec in p.soc.values_mut() {
            spec.strict = false;
            spec.bound = match spec.class.as_str() {
                "xss" => without(xss),
                "sqli" => without(sqli),
                "shell" => without(shell),
                // eval / file access / header splitting: nothing tainted
                // may reach them.
                _ => none,
            };
        }
        // Kind-specific sanitizers replace the set-to-⊥ contracts.
        p.sanitizers.clear();
        for f in ["htmlspecialchars", "htmlentities", "strip_tags"] {
            p.add_sanitizer_mask(f, without(xss));
        }
        for f in [
            "addslashes",
            "mysql_escape_string",
            "mysql_real_escape_string",
            "pg_escape_string",
        ] {
            p.add_sanitizer_mask(f, without(sqli));
        }
        for f in ["escapeshellarg", "escapeshellcmd"] {
            p.add_sanitizer_mask(f, without(shell));
        }
        // Full neutralizers still reset to ⊥.
        for f in [
            "intval",
            "floatval",
            "md5",
            "sha1",
            "crc32",
            "urlencode",
            "rawurlencode",
            "webssari_sanitize",
            "sanitize",
            "basename",
        ] {
            p.add_sanitizer(f, none);
        }
        (lattice, p)
    }
}

impl Default for Prelude {
    /// The default prelude is [`Prelude::standard`].
    fn default() -> Self {
        Prelude::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_are_case_insensitive() {
        let p = Prelude::standard();
        assert!(p.soc("MYSQL_QUERY").is_some());
        assert!(p.uic_level("Mysql_Fetch_Array").is_some());
        assert!(p.is_sanitizer("HTMLSpecialChars"));
        assert!(p.returns_trusted("ISSET"));
    }

    #[test]
    fn superglobals_are_case_sensitive_names() {
        let p = Prelude::standard();
        assert!(p.is_superglobal("_GET"));
        assert!(p.is_superglobal("HTTP_REFERER"));
        assert!(!p.is_superglobal("_get"));
        assert!(!p.is_superglobal("sid"));
    }

    #[test]
    fn keyed_channel_reads_resolve_through_their_base() {
        let p = Prelude::standard();
        assert!(p.is_superglobal("_GET[sid]"));
        assert_eq!(p.superglobal_level("_POST[msg]"), Some(p.top()));
        assert!(!p.is_superglobal("row[id]"));
        assert_eq!(p.superglobal_level("row[id]"), None);
    }

    #[test]
    fn soc_classes_are_set() {
        let p = Prelude::standard();
        assert_eq!(p.soc("echo").unwrap().class, "xss");
        assert_eq!(p.soc("mysql_query").unwrap().class, "sqli");
        assert_eq!(p.soc("exec").unwrap().class, "shell");
    }

    #[test]
    fn shell_socs_check_first_argument_only() {
        let p = Prelude::standard();
        assert_eq!(p.soc("exec").unwrap().arg_positions, Some(vec![0]));
        assert_eq!(p.soc("echo").unwrap().arg_positions, None);
    }

    #[test]
    fn custom_registrations() {
        let mut p = Prelude::empty();
        assert_eq!(p.num_socs(), 0);
        p.add_soc(
            "my_sink",
            SocSpec {
                bound: TwoPoint::TAINTED,
                strict: true,
                arg_positions: None,
                class: "custom".into(),
            },
        );
        p.add_uic("my_source", TwoPoint::TAINTED);
        p.add_sanitizer("my_clean", TwoPoint::UNTAINTED);
        assert!(p.soc("MY_SINK").is_some());
        assert!(p.uic_level("my_source").is_some());
        assert!(p.is_sanitizer("my_clean"));
        assert_eq!(p.num_socs(), 1);
    }

    #[test]
    fn default_is_standard() {
        assert!(Prelude::default().soc("echo").is_some());
    }

    #[test]
    fn prelude_file_format_round_trip() {
        let mut p = Prelude::empty();
        p.extend_from_str(
            "# custom contracts\n\
             uic        read_feed\n\
             soc        my_exec   shell args=0,2\n\
             soc        tpl_render xss\n\
             sanitizer  my_escape  # trailing comment\n\
             superglobal _ENV\n\
             \n",
        )
        .expect("valid prelude text");
        assert!(p.uic_level("read_feed").is_some());
        let spec = p.soc("my_exec").unwrap();
        assert_eq!(spec.class, "shell");
        assert_eq!(spec.arg_positions, Some(vec![0, 2]));
        assert_eq!(p.soc("tpl_render").unwrap().arg_positions, None);
        assert!(p.is_sanitizer("my_escape"));
        assert!(p.is_superglobal("_ENV"));
    }

    #[test]
    fn canonical_description_is_order_independent() {
        let mut a = Prelude::empty();
        a.add_uic("alpha", TwoPoint::TAINTED);
        a.add_uic("beta", TwoPoint::TAINTED);
        a.add_sanitizer("clean", TwoPoint::UNTAINTED);
        let mut b = Prelude::empty();
        b.add_sanitizer("clean", TwoPoint::UNTAINTED);
        b.add_uic("beta", TwoPoint::TAINTED);
        b.add_uic("alpha", TwoPoint::TAINTED);
        assert_eq!(a.canonical_description(), b.canonical_description());
    }

    #[test]
    fn canonical_description_reflects_every_contract_kind() {
        let base = Prelude::standard().canonical_description();
        let mut with_uic = Prelude::standard();
        with_uic.add_uic("extra_source", TwoPoint::TAINTED);
        assert_ne!(base, with_uic.canonical_description());
        let mut with_soc = Prelude::standard();
        with_soc.add_soc(
            "extra_sink",
            SocSpec {
                bound: TwoPoint::TAINTED,
                strict: true,
                arg_positions: Some(vec![1]),
                class: "custom".into(),
            },
        );
        assert_ne!(base, with_soc.canonical_description());
        let mut with_sanitizer = Prelude::standard();
        with_sanitizer.add_sanitizer("extra_clean", TwoPoint::UNTAINTED);
        assert_ne!(base, with_sanitizer.canonical_description());
        let (_, multiclass) = Prelude::multiclass();
        assert_ne!(base, multiclass.canonical_description());
    }

    #[test]
    fn prelude_file_format_errors_name_the_line() {
        let mut p = Prelude::empty();
        let err = p.extend_from_str("uic ok\nbogus thing\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = p.extend_from_str("soc f taint args=x\n").unwrap_err();
        assert!(err.contains("bad args list"), "{err}");
        let err = p.extend_from_str("soc\n").unwrap_err();
        assert!(err.contains("missing name"), "{err}");
        let err = p.extend_from_str("soc f taint wat=1\n").unwrap_err();
        assert!(err.contains("unknown option"), "{err}");
    }
}
