//! Information flow through the extended PHP constructs: heredocs,
//! `do…while`, alternative syntax, and `list()` destructuring.

use php_front::parse_source;
use taint_lattice::TwoPoint;
use webssari_ir::ai::reference;
use webssari_ir::{abstract_interpret, filter_program, AiProgram, FilterOptions, Prelude};

fn ai_of(src: &str) -> AiProgram {
    let ast = parse_source(src).expect("parse");
    let f = filter_program(
        &ast,
        src,
        "t.php",
        &Prelude::standard(),
        &FilterOptions::default(),
    );
    abstract_interpret(&f)
}

fn violates_somewhere(ai: &AiProgram) -> bool {
    !reference::all_violating_paths(ai, &TwoPoint::new()).is_empty()
}

#[test]
fn heredoc_interpolation_carries_taint() {
    let ai = ai_of(
        "<?php\n$sid = $_GET['sid'];\n$q = <<<SQL\nSELECT * FROM t WHERE sid=$sid\nSQL;\nmysql_query($q);\n",
    );
    assert_eq!(ai.num_assertions(), 1);
    assert!(violates_somewhere(&ai));
}

#[test]
fn nowdoc_is_trusted() {
    let ai = ai_of("<?php\n$q = <<<'SQL'\nSELECT 1\nSQL;\nmysql_query($q);\n");
    assert!(!violates_somewhere(&ai));
}

#[test]
fn do_while_body_taints_like_while() {
    let ai = ai_of("<?php do { $x = $_GET['p']; } while ($c); echo $x;");
    assert!(violates_somewhere(&ai));
    // Unlike `while`, the body runs at least once: the straight-line
    // path (all branches false) already violates.
    let v = reference::run_path(&ai, &TwoPoint::new(), &[false; 4], false);
    assert!(!v.is_empty(), "do-while body executes unconditionally");
}

#[test]
fn alternative_if_taints_conditionally() {
    let ai = ai_of("<?php $x = 'ok'; if ($c): $x = $_GET['p']; endif; echo $x;");
    assert_eq!(ai.num_branches, 1);
    let l = TwoPoint::new();
    assert_eq!(reference::run_path(&ai, &l, &[true], false).len(), 1);
    assert!(reference::run_path(&ai, &l, &[false], false).is_empty());
}

#[test]
fn list_destructuring_taints_every_element() {
    let ai = ai_of(
        "<?php list($user, $pass) = explode(':', $_COOKIE['auth']); echo $user; mysql_query($pass);",
    );
    assert_eq!(ai.num_assertions(), 2);
    let l = TwoPoint::new();
    let violations = reference::run_path(&ai, &l, &[], false);
    assert_eq!(violations.len(), 2, "both list elements are tainted");
}

#[test]
fn list_of_trusted_value_is_clean() {
    let ai = ai_of("<?php list($a, $b) = array(1, 2); echo $a, $b;");
    assert!(!violates_somewhere(&ai));
}

#[test]
fn template_idiom_with_html_between_branches() {
    let src = "<?php $m = $_GET['m']; if ($show): ?><ul><?php echo $m; ?></ul><?php endif;";
    let ai = ai_of(src);
    let l = TwoPoint::new();
    assert_eq!(reference::run_path(&ai, &l, &[true], false).len(), 1);
    assert!(reference::run_path(&ai, &l, &[false], false).is_empty());
}

#[test]
fn end_to_end_verifier_on_new_constructs() {
    // The whole pipeline, through the umbrella of webssari-core's deps.
    let src = "<?php\n$sid = $_GET['sid'];\n$q = <<<SQL\nDELETE FROM t WHERE sid=$sid\nSQL;\ndo { mysql_query($q); } while ($again);\n";
    let ai = ai_of(src);
    let result = xbmc::Xbmc::new(&ai).check_all();
    assert!(!result.is_safe());
    let plan = fixes::minimal_fixing_set(&result.counterexamples);
    assert!(plan.num_patches() >= 1);
}
