//! Property-based tests on the lattice algebra.

use proptest::prelude::*;
use taint_lattice::{laws, Chain, Elem, Lattice, Powerset, Product, TwoPoint};

fn elem_strategy(len: usize) -> impl Strategy<Value = Elem> {
    (0..len).prop_map(Elem::new)
}

proptest! {
    #[test]
    fn chain_join_meet_agree_with_min_max(h in 1usize..12, a in 0usize..12, b in 0usize..12) {
        let l = Chain::new(h);
        let a = Elem::new(a % h);
        let b = Elem::new(b % h);
        prop_assert_eq!(l.join(a, b).index(), a.index().max(b.index()));
        prop_assert_eq!(l.meet(a, b).index(), a.index().min(b.index()));
    }

    #[test]
    fn powerset_join_is_union(kinds in 1usize..8, a in any::<u16>(), b in any::<u16>()) {
        let names = (0..kinds).map(|i| format!("k{i}")).collect();
        let l = Powerset::new(names);
        let mask = (l.len() - 1) as u16;
        let a = Elem::new((a & mask) as usize);
        let b = Elem::new((b & mask) as usize);
        prop_assert_eq!(l.join(a, b).index(), a.index() | b.index());
        prop_assert_eq!(l.meet(a, b).index(), a.index() & b.index());
        prop_assert_eq!(l.leq(a, b), a.index() & !b.index() == 0);
    }

    #[test]
    fn join_is_associative_in_products(
        a in elem_strategy(6), b in elem_strategy(6), c in elem_strategy(6)
    ) {
        let l = Product::new(Chain::new(3), TwoPoint::new());
        prop_assert_eq!(l.join(a, l.join(b, c)), l.join(l.join(a, b), c));
        prop_assert_eq!(l.meet(a, l.meet(b, c)), l.meet(l.meet(a, b), c));
    }

    #[test]
    fn join_is_idempotent_and_monotone(a in elem_strategy(8), b in elem_strategy(8)) {
        let l = Powerset::new(vec!["x".into(), "y".into(), "z".into()]);
        prop_assert_eq!(l.join(a, a), a);
        // a ≤ a ⊔ b always
        prop_assert!(l.leq(a, l.join(a, b)));
        // join with top is absorbing
        prop_assert_eq!(l.join(a, l.top()), l.top());
        prop_assert_eq!(l.meet(a, l.bottom()), l.bottom());
    }

    #[test]
    fn leq_iff_join_is_right_operand(a in elem_strategy(8), b in elem_strategy(8)) {
        // Paper §3.1: τ1 ≤ τ2 iff τ1 ⊔ τ2 = τ2 (lattice-theoretic ≤).
        let l = Powerset::new(vec!["x".into(), "y".into(), "z".into()]);
        prop_assert_eq!(l.leq(a, b), l.join(a, b) == b);
        prop_assert_eq!(l.leq(a, b), l.meet(a, b) == a);
    }

    #[test]
    fn random_chains_and_products_pass_laws(h1 in 1usize..5, h2 in 1usize..5) {
        laws::assert_lattice_laws(&Product::new(Chain::new(h1), Chain::new(h2)));
    }

    #[test]
    fn join_all_equals_manual_fold(elems in prop::collection::vec(0usize..8, 0..10)) {
        let l = Powerset::new(vec!["x".into(), "y".into(), "z".into()]);
        let elems: Vec<Elem> = elems.into_iter().map(Elem::new).collect();
        let expected = elems.iter().fold(0usize, |acc, e| acc | e.index());
        prop_assert_eq!(l.join_all(elems).index(), expected);
    }
}
