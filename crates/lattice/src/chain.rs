use crate::{Elem, Lattice};

/// A linear (totally ordered) lattice `τ0 < τ1 < … < τ(n-1)`.
///
/// Chains model graded trust levels, e.g. `public < internal < secret`,
/// or multi-level sanitization schemes where each sanitizer lowers data
/// by one level. The two-point taint lattice is `Chain::new(2)` up to
/// element names.
///
/// # Examples
///
/// ```
/// use taint_lattice::{Chain, Elem, Lattice};
///
/// let l = Chain::new(3);
/// assert_eq!(l.join(Elem::new(0), Elem::new(2)), Elem::new(2));
/// assert_eq!(l.meet(Elem::new(1), Elem::new(2)), Elem::new(1));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Chain {
    height: usize,
}

impl Chain {
    /// Creates a chain with `height` elements.
    ///
    /// # Panics
    ///
    /// Panics if `height` is zero: a lattice needs at least `⊥`.
    pub fn new(height: usize) -> Self {
        assert!(height >= 1, "a chain lattice needs at least one element");
        Chain { height }
    }

    /// The number of elements (same as [`Lattice::len`]).
    pub fn height(&self) -> usize {
        self.height
    }
}

impl Default for Chain {
    /// The default chain is the two-point chain.
    fn default() -> Self {
        Chain::new(2)
    }
}

impl Lattice for Chain {
    fn len(&self) -> usize {
        self.height
    }

    fn leq(&self, a: Elem, b: Elem) -> bool {
        debug_assert!(a.index() < self.height && b.index() < self.height);
        a.index() <= b.index()
    }

    fn join(&self, a: Elem, b: Elem) -> Elem {
        Elem::new(a.index().max(b.index()))
    }

    fn meet(&self, a: Elem, b: Elem) -> Elem {
        Elem::new(a.index().min(b.index()))
    }

    fn bottom(&self) -> Elem {
        Elem::new(0)
    }

    fn top(&self) -> Elem {
        Elem::new(self.height - 1)
    }

    fn name(&self, a: Elem) -> String {
        format!("level{}", a.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn chains_satisfy_lattice_laws() {
        for h in 1..=6 {
            laws::assert_lattice_laws(&Chain::new(h));
        }
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_height_panics() {
        let _ = Chain::new(0);
    }

    #[test]
    fn singleton_chain_bottom_equals_top() {
        let l = Chain::new(1);
        assert_eq!(l.bottom(), l.top());
    }

    #[test]
    fn default_is_two_point() {
        assert_eq!(Chain::default().height(), 2);
    }

    #[test]
    fn names_mention_level() {
        assert_eq!(Chain::new(3).name(Elem::new(2)), "level2");
    }

    #[test]
    fn order_is_total() {
        let l = Chain::new(5);
        for a in l.elems() {
            for b in l.elems() {
                assert_eq!(l.leq(a, b), a.index() <= b.index());
            }
        }
    }
}
