//! Finite security-type lattices for secure information flow.
//!
//! The WebSSARI information-flow model (paper §3.1) follows Denning's
//! lattice model of secure information flow: every program variable is
//! associated with a *safety type* drawn from a finite set `T` that is
//! partially ordered by `≤` (reflexive, transitive, antisymmetric) and
//! forms a complete lattice with a lower bound `⊥` (the safest type) and
//! an upper bound `⊤` (the least trusted type). Types that result from
//! expressions are computed with the least-upper-bound operator `⊔`
//! (join), and assertion checks compare against fixed thresholds with
//! `≤`.
//!
//! This crate provides:
//!
//! * [`Lattice`] — the abstract interface shared by every lattice
//!   implementation, together with blanket helpers (`join_all`,
//!   `meet_all`, comparability queries).
//! * [`Elem`] — a compact index newtype naming one element of a lattice.
//! * Concrete lattices:
//!   [`TwoPoint`] (untainted < tainted — the lattice the paper's
//!   experiments use), [`Chain`] (linear orders of any height),
//!   [`Powerset`] (subsets of named taint kinds ordered by inclusion),
//!   [`Product`] (componentwise products), and [`TableLattice`]
//!   (arbitrary user-supplied orders, validated at construction).
//! * [`laws`] — executable lattice axioms, used by the unit and property
//!   tests of every implementation and available to downstream crates to
//!   validate their own lattices.
//!
//! # Examples
//!
//! ```
//! use taint_lattice::{Lattice, TwoPoint};
//!
//! let l = TwoPoint::new();
//! let (clean, dirty) = (TwoPoint::UNTAINTED, TwoPoint::TAINTED);
//! assert!(l.leq(clean, dirty));
//! assert_eq!(l.join(clean, dirty), dirty);
//! assert_eq!(l.meet(clean, dirty), clean);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod elem;
pub mod laws;
mod powerset;
mod product;
mod table;
mod two_point;

pub use chain::Chain;
pub use elem::Elem;
pub use powerset::Powerset;
pub use product::Product;
pub use table::{LatticeError, TableLattice};
pub use two_point::TwoPoint;

/// A finite complete lattice of safety types.
///
/// Elements are identified by [`Elem`] indices in `0..self.len()`.
/// Implementations must guarantee the usual lattice laws; the executable
/// checks in [`laws`] verify them exhaustively for small lattices.
///
/// # Examples
///
/// ```
/// use taint_lattice::{Chain, Lattice};
///
/// let l = Chain::new(4);
/// assert_eq!(l.len(), 4);
/// assert_eq!(l.join(l.bottom(), l.top()), l.top());
/// ```
pub trait Lattice {
    /// Number of elements in the lattice. Always at least 1.
    fn len(&self) -> usize;

    /// Whether the lattice has no elements. Always `false`: a lattice has
    /// at least `⊥ = ⊤`. Provided for `len`/`is_empty` API symmetry.
    fn is_empty(&self) -> bool {
        false
    }

    /// The partial order: `true` iff `a ≤ b` ("a is at least as safe as b").
    ///
    /// # Panics
    ///
    /// Implementations may panic if `a` or `b` is out of range.
    fn leq(&self, a: Elem, b: Elem) -> bool;

    /// Least upper bound `a ⊔ b`.
    fn join(&self, a: Elem, b: Elem) -> Elem;

    /// Greatest lower bound `a ⊓ b`.
    fn meet(&self, a: Elem, b: Elem) -> Elem;

    /// The least element `⊥` (the safest type).
    fn bottom(&self) -> Elem;

    /// The greatest element `⊤` (the least trusted type).
    fn top(&self) -> Elem;

    /// A human-readable name for element `a`, used in reports.
    fn name(&self, a: Elem) -> String {
        format!("τ{}", a.index())
    }

    /// Strict order: `a < b` iff `a ≤ b` and `a ≠ b` (paper §3.1 item 3).
    fn lt(&self, a: Elem, b: Elem) -> bool {
        a != b && self.leq(a, b)
    }

    /// Whether `a` and `b` are comparable under `≤`.
    fn comparable(&self, a: Elem, b: Elem) -> bool {
        self.leq(a, b) || self.leq(b, a)
    }

    /// Least upper bound of an iterator of elements (`⊔ Y`).
    ///
    /// Returns [`Lattice::bottom`] when the iterator is empty, matching
    /// the paper's convention that `⊔ ∅ = ⊥`.
    fn join_all<I: IntoIterator<Item = Elem>>(&self, elems: I) -> Elem
    where
        Self: Sized,
    {
        elems
            .into_iter()
            .fold(self.bottom(), |acc, e| self.join(acc, e))
    }

    /// Greatest lower bound of an iterator of elements (`⊓ Y`).
    ///
    /// Returns [`Lattice::top`] when the iterator is empty, matching the
    /// paper's convention that `⊓ ∅ = ⊤`.
    fn meet_all<I: IntoIterator<Item = Elem>>(&self, elems: I) -> Elem
    where
        Self: Sized,
    {
        elems
            .into_iter()
            .fold(self.top(), |acc, e| self.meet(acc, e))
    }

    /// All elements of the lattice, in index order.
    fn elems(&self) -> Vec<Elem> {
        (0..self.len()).map(Elem::new).collect()
    }

    /// Number of bits needed to binary-encode one element.
    ///
    /// Used by the CNF encoder in the `xbmc` crate: an element index in
    /// `0..len` fits in `ceil(log2(len))` bits (at least 1).
    fn bits(&self) -> usize {
        let n = self.len().max(2);
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_all_of_empty_is_bottom() {
        let l = Chain::new(5);
        assert_eq!(l.join_all(std::iter::empty()), l.bottom());
    }

    #[test]
    fn meet_all_of_empty_is_top() {
        let l = Chain::new(5);
        assert_eq!(l.meet_all(std::iter::empty()), l.top());
    }

    #[test]
    fn join_all_folds_left() {
        let l = Chain::new(5);
        let e = Elem::new;
        assert_eq!(l.join_all([e(1), e(3), e(2)]), e(3));
    }

    #[test]
    fn meet_all_folds_left() {
        let l = Chain::new(5);
        let e = Elem::new;
        assert_eq!(l.meet_all([e(1), e(3), e(2)]), e(1));
    }

    #[test]
    fn bits_is_ceil_log2() {
        assert_eq!(Chain::new(2).bits(), 1);
        assert_eq!(Chain::new(3).bits(), 2);
        assert_eq!(Chain::new(4).bits(), 2);
        assert_eq!(Chain::new(5).bits(), 3);
        assert_eq!(Chain::new(8).bits(), 3);
        assert_eq!(Chain::new(9).bits(), 4);
    }

    #[test]
    fn one_element_chain_has_one_bit() {
        assert_eq!(Chain::new(1).bits(), 1);
    }

    #[test]
    fn lt_is_strict() {
        let l = TwoPoint::new();
        assert!(l.lt(TwoPoint::UNTAINTED, TwoPoint::TAINTED));
        assert!(!l.lt(TwoPoint::TAINTED, TwoPoint::TAINTED));
        assert!(!l.lt(TwoPoint::TAINTED, TwoPoint::UNTAINTED));
    }

    #[test]
    fn comparable_in_chain_is_total() {
        let l = Chain::new(4);
        for a in l.elems() {
            for b in l.elems() {
                assert!(l.comparable(a, b));
            }
        }
    }

    #[test]
    fn is_empty_is_always_false() {
        assert!(!Chain::new(1).is_empty());
        assert!(!TwoPoint::new().is_empty());
    }
}
