use crate::{Elem, Lattice};

/// The two-point taint lattice `{Untainted < Tainted}`.
///
/// This is the lattice WebSSARI's experiments run with: `⊥ = Untainted`
/// is the safety level of constants and sanitized data, and
/// `⊤ = Tainted` is the level given by UIC postconditions to data read
/// from HTTP requests, cookies, and other untrusted channels. A SOC
/// precondition `assert(tx < ⊤)` then demands the argument be strictly
/// safer than tainted, i.e. untainted.
///
/// # Examples
///
/// ```
/// use taint_lattice::{Lattice, TwoPoint};
///
/// let l = TwoPoint::new();
/// assert_eq!(l.join(TwoPoint::UNTAINTED, TwoPoint::TAINTED), TwoPoint::TAINTED);
/// assert_eq!(l.name(TwoPoint::TAINTED), "tainted");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TwoPoint;

impl TwoPoint {
    /// The bottom element: trusted/sanitized data.
    pub const UNTAINTED: Elem = Elem::from_const(0);
    /// The top element: untrusted data.
    pub const TAINTED: Elem = Elem::from_const(1);

    /// Creates the two-point lattice.
    pub fn new() -> Self {
        TwoPoint
    }
}

impl Lattice for TwoPoint {
    fn len(&self) -> usize {
        2
    }

    fn leq(&self, a: Elem, b: Elem) -> bool {
        debug_assert!(a.index() < 2 && b.index() < 2);
        a.index() <= b.index()
    }

    fn join(&self, a: Elem, b: Elem) -> Elem {
        Elem::new(a.index().max(b.index()))
    }

    fn meet(&self, a: Elem, b: Elem) -> Elem {
        Elem::new(a.index().min(b.index()))
    }

    fn bottom(&self) -> Elem {
        Self::UNTAINTED
    }

    fn top(&self) -> Elem {
        Self::TAINTED
    }

    fn name(&self, a: Elem) -> String {
        match a.index() {
            0 => "untainted".to_owned(),
            _ => "tainted".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn satisfies_lattice_laws() {
        laws::assert_lattice_laws(&TwoPoint::new());
    }

    #[test]
    fn constants_are_bottom_and_top() {
        let l = TwoPoint::new();
        assert_eq!(l.bottom(), TwoPoint::UNTAINTED);
        assert_eq!(l.top(), TwoPoint::TAINTED);
    }

    #[test]
    fn names_are_descriptive() {
        let l = TwoPoint::new();
        assert_eq!(l.name(TwoPoint::UNTAINTED), "untainted");
        assert_eq!(l.name(TwoPoint::TAINTED), "tainted");
    }

    #[test]
    fn join_is_max_meet_is_min() {
        let l = TwoPoint::new();
        let (u, t) = (TwoPoint::UNTAINTED, TwoPoint::TAINTED);
        assert_eq!(l.join(u, u), u);
        assert_eq!(l.join(t, u), t);
        assert_eq!(l.meet(t, t), t);
        assert_eq!(l.meet(t, u), u);
    }

    #[test]
    fn one_bit_encoding() {
        assert_eq!(TwoPoint::new().bits(), 1);
    }
}
