use std::fmt;

use serde::{Deserialize, Serialize};

/// An element of a finite lattice, identified by its index.
///
/// `Elem` is just a validated index; which lattice it belongs to is
/// determined by context. Indices are assigned by each lattice
/// implementation in `0..len`.
///
/// # Examples
///
/// ```
/// use taint_lattice::Elem;
///
/// let e = Elem::new(3);
/// assert_eq!(e.index(), 3);
/// assert_eq!(e.to_string(), "τ3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Elem(u32);

impl Elem {
    /// Creates the element with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    pub fn new(index: usize) -> Self {
        Elem(u32::try_from(index).expect("lattice element index overflows u32"))
    }

    /// The element's index within its lattice.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// `const`-context constructor used for lattice-constant elements.
    pub(crate) const fn from_const(index: u32) -> Self {
        Elem(index)
    }
}

impl fmt::Debug for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Elem({})", self.0)
    }
}

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

impl From<u32> for Elem {
    fn from(value: u32) -> Self {
        Elem(value)
    }
}

impl From<Elem> for u32 {
    fn from(value: Elem) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in [0usize, 1, 7, 1000] {
            assert_eq!(Elem::new(i).index(), i);
        }
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let e = Elem::new(2);
        assert_eq!(format!("{e}"), "τ2");
        assert_eq!(format!("{e:?}"), "Elem(2)");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Elem::new(1) < Elem::new(2));
    }

    #[test]
    fn u32_conversions_round_trip() {
        let e = Elem::from(9u32);
        assert_eq!(u32::from(e), 9);
    }
}
