use std::fmt;

use crate::{Elem, Lattice};

/// Errors detected while validating a user-supplied order as a lattice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LatticeError {
    /// The element count was zero.
    Empty,
    /// The `leq` matrix was not square with side `len`.
    MalformedOrder,
    /// `leq` is not reflexive at the given element.
    NotReflexive(Elem),
    /// `leq` is not antisymmetric for the given pair.
    NotAntisymmetric(Elem, Elem),
    /// `leq` is not transitive for the given triple.
    NotTransitive(Elem, Elem, Elem),
    /// The pair has no least upper bound.
    NoJoin(Elem, Elem),
    /// The pair has no greatest lower bound.
    NoMeet(Elem, Elem),
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::Empty => write!(f, "lattice has no elements"),
            LatticeError::MalformedOrder => {
                write!(
                    f,
                    "order relation matrix is not square with the element count"
                )
            }
            LatticeError::NotReflexive(a) => write!(f, "order is not reflexive at {a}"),
            LatticeError::NotAntisymmetric(a, b) => {
                write!(f, "order is not antisymmetric for {a} and {b}")
            }
            LatticeError::NotTransitive(a, b, c) => {
                write!(f, "order is not transitive for {a} ≤ {b} ≤ {c}")
            }
            LatticeError::NoJoin(a, b) => write!(f, "{a} and {b} have no least upper bound"),
            LatticeError::NoMeet(a, b) => write!(f, "{a} and {b} have no greatest lower bound"),
        }
    }
}

impl std::error::Error for LatticeError {}

/// A lattice defined by an explicit order relation, validated and with
/// join/meet tables precomputed at construction.
///
/// This is how nonstandard policies enter the system: a prelude can
/// declare any finite poset; `TableLattice::new` rejects it unless it is
/// a genuine complete lattice (every pair has a least upper bound and a
/// greatest lower bound).
///
/// # Examples
///
/// The "diamond" lattice `⊥ < {a, b} < ⊤` with `a`, `b` incomparable:
///
/// ```
/// use taint_lattice::{Elem, Lattice, TableLattice};
///
/// let names = ["bot", "a", "b", "top"].map(String::from).to_vec();
/// let mut leq = vec![vec![false; 4]; 4];
/// for i in 0..4 { leq[i][i] = true; }
/// for i in 0..4 { leq[0][i] = true; leq[i][3] = true; }
/// let l = TableLattice::new(names, leq)?;
/// assert_eq!(l.join(Elem::new(1), Elem::new(2)), Elem::new(3));
/// assert_eq!(l.meet(Elem::new(1), Elem::new(2)), Elem::new(0));
/// # Ok::<(), taint_lattice::LatticeError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableLattice {
    names: Vec<String>,
    leq: Vec<Vec<bool>>,
    join: Vec<Vec<u32>>,
    meet: Vec<Vec<u32>>,
    bottom: Elem,
    top: Elem,
}

impl TableLattice {
    /// Builds a lattice from element names and an order matrix
    /// (`leq[a][b]` iff `τa ≤ τb`).
    ///
    /// # Errors
    ///
    /// Returns a [`LatticeError`] if the relation is not a partial order
    /// or some pair lacks a join or meet (i.e. the poset is not a
    /// lattice).
    #[allow(clippy::needless_range_loop)] // index math mirrors the relation matrix
    pub fn new(names: Vec<String>, leq: Vec<Vec<bool>>) -> Result<Self, LatticeError> {
        let n = names.len();
        if n == 0 {
            return Err(LatticeError::Empty);
        }
        if leq.len() != n || leq.iter().any(|row| row.len() != n) {
            return Err(LatticeError::MalformedOrder);
        }
        // Partial order axioms.
        for a in 0..n {
            if !leq[a][a] {
                return Err(LatticeError::NotReflexive(Elem::new(a)));
            }
        }
        for a in 0..n {
            for b in 0..n {
                if a != b && leq[a][b] && leq[b][a] {
                    return Err(LatticeError::NotAntisymmetric(Elem::new(a), Elem::new(b)));
                }
            }
        }
        for a in 0..n {
            for b in 0..n {
                if !leq[a][b] {
                    continue;
                }
                for c in 0..n {
                    if leq[b][c] && !leq[a][c] {
                        return Err(LatticeError::NotTransitive(
                            Elem::new(a),
                            Elem::new(b),
                            Elem::new(c),
                        ));
                    }
                }
            }
        }
        // Join and meet tables via bound enumeration.
        let mut join = vec![vec![0u32; n]; n];
        let mut meet = vec![vec![0u32; n]; n];
        for a in 0..n {
            for b in 0..n {
                join[a][b] = Self::least_upper_bound(&leq, a, b)
                    .ok_or(LatticeError::NoJoin(Elem::new(a), Elem::new(b)))?
                    as u32;
                meet[a][b] = Self::greatest_lower_bound(&leq, a, b)
                    .ok_or(LatticeError::NoMeet(Elem::new(a), Elem::new(b)))?
                    as u32;
            }
        }
        // Bottom/top exist in any finite lattice: fold join/meet over all.
        let mut bot = 0usize;
        let mut top = 0usize;
        for e in 1..n {
            bot = meet[bot][e] as usize;
            top = join[top][e] as usize;
        }
        Ok(TableLattice {
            names,
            leq,
            join,
            meet,
            bottom: Elem::new(bot),
            top: Elem::new(top),
        })
    }

    fn least_upper_bound(leq: &[Vec<bool>], a: usize, b: usize) -> Option<usize> {
        let n = leq.len();
        let uppers: Vec<usize> = (0..n).filter(|&u| leq[a][u] && leq[b][u]).collect();
        uppers
            .iter()
            .copied()
            .find(|&u| uppers.iter().all(|&v| leq[u][v]))
    }

    fn greatest_lower_bound(leq: &[Vec<bool>], a: usize, b: usize) -> Option<usize> {
        let n = leq.len();
        let lowers: Vec<usize> = (0..n).filter(|&d| leq[d][a] && leq[d][b]).collect();
        lowers
            .iter()
            .copied()
            .find(|&d| lowers.iter().all(|&v| leq[v][d]))
    }

    /// Finds an element by name.
    pub fn elem_by_name(&self, name: &str) -> Option<Elem> {
        self.names.iter().position(|n| n == name).map(Elem::new)
    }
}

impl Lattice for TableLattice {
    fn len(&self) -> usize {
        self.names.len()
    }

    fn leq(&self, a: Elem, b: Elem) -> bool {
        self.leq[a.index()][b.index()]
    }

    fn join(&self, a: Elem, b: Elem) -> Elem {
        Elem::new(self.join[a.index()][b.index()] as usize)
    }

    fn meet(&self, a: Elem, b: Elem) -> Elem {
        Elem::new(self.meet[a.index()][b.index()] as usize)
    }

    fn bottom(&self) -> Elem {
        self.bottom
    }

    fn top(&self) -> Elem {
        self.top
    }

    fn name(&self, a: Elem) -> String {
        self.names[a.index()].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    fn diamond() -> TableLattice {
        let names = ["bot", "a", "b", "top"].map(String::from).to_vec();
        let mut leq = vec![vec![false; 4]; 4];
        for (i, row) in leq.iter_mut().enumerate() {
            row[i] = true;
            row[3] = true;
        }
        leq[0] = vec![true; 4];
        TableLattice::new(names, leq).expect("diamond is a lattice")
    }

    #[test]
    fn diamond_satisfies_laws() {
        laws::assert_lattice_laws(&diamond());
    }

    #[test]
    fn diamond_bottom_and_top() {
        let l = diamond();
        assert_eq!(l.name(l.bottom()), "bot");
        assert_eq!(l.name(l.top()), "top");
    }

    #[test]
    fn elem_by_name_finds_elements() {
        let l = diamond();
        assert_eq!(l.elem_by_name("a"), Some(Elem::new(1)));
        assert_eq!(l.elem_by_name("zzz"), None);
    }

    #[test]
    fn empty_is_rejected() {
        assert_eq!(
            TableLattice::new(vec![], vec![]).unwrap_err(),
            LatticeError::Empty
        );
    }

    #[test]
    fn malformed_matrix_is_rejected() {
        let err = TableLattice::new(vec!["x".into()], vec![]).unwrap_err();
        assert_eq!(err, LatticeError::MalformedOrder);
    }

    #[test]
    fn irreflexive_is_rejected() {
        let err = TableLattice::new(vec!["x".into()], vec![vec![false]]).unwrap_err();
        assert_eq!(err, LatticeError::NotReflexive(Elem::new(0)));
    }

    #[test]
    fn cyclic_order_is_rejected_as_antisymmetry_violation() {
        let names = ["x", "y"].map(String::from).to_vec();
        let leq = vec![vec![true, true], vec![true, true]];
        let err = TableLattice::new(names, leq).unwrap_err();
        assert_eq!(
            err,
            LatticeError::NotAntisymmetric(Elem::new(0), Elem::new(1))
        );
    }

    #[test]
    fn intransitive_order_is_rejected() {
        // a ≤ b, b ≤ c, but not a ≤ c.
        let names = ["a", "b", "c"].map(String::from).to_vec();
        let mut leq = vec![vec![false; 3]; 3];
        for (i, row) in leq.iter_mut().enumerate() {
            row[i] = true;
        }
        leq[0][1] = true;
        leq[1][2] = true;
        let err = TableLattice::new(names, leq).unwrap_err();
        assert_eq!(
            err,
            LatticeError::NotTransitive(Elem::new(0), Elem::new(1), Elem::new(2))
        );
    }

    #[test]
    fn poset_without_joins_is_rejected() {
        // Two incomparable elements and no top: {a, b} with only
        // reflexivity. No join for (a, b).
        let names = ["a", "b"].map(String::from).to_vec();
        let leq = vec![vec![true, false], vec![false, true]];
        let err = TableLattice::new(names, leq).unwrap_err();
        assert_eq!(err, LatticeError::NoJoin(Elem::new(0), Elem::new(1)));
    }

    #[test]
    fn errors_display_nonempty() {
        for err in [
            LatticeError::Empty,
            LatticeError::MalformedOrder,
            LatticeError::NotReflexive(Elem::new(0)),
            LatticeError::NotAntisymmetric(Elem::new(0), Elem::new(1)),
            LatticeError::NotTransitive(Elem::new(0), Elem::new(1), Elem::new(2)),
            LatticeError::NoJoin(Elem::new(0), Elem::new(1)),
            LatticeError::NoMeet(Elem::new(0), Elem::new(1)),
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn m3_pentagon_free_check() {
        // M3: bot, three incomparable atoms, top — still a lattice.
        let names = ["bot", "x", "y", "z", "top"].map(String::from).to_vec();
        let n = 5;
        let mut leq = vec![vec![false; n]; n];
        for (i, row) in leq.iter_mut().enumerate() {
            row[i] = true;
            row[4] = true;
        }
        leq[0] = vec![true; n];
        let l = TableLattice::new(names, leq).expect("M3 is a lattice");
        laws::assert_lattice_laws(&l);
        assert_eq!(l.join(Elem::new(1), Elem::new(2)), Elem::new(4));
    }
}
