//! Executable lattice axioms.
//!
//! These checks make the algebraic requirements of the paper's §3.1
//! explicit and testable: the order must be a partial order, join/meet
//! must be the least upper/greatest lower bound, and `⊥`/`⊤` must bound
//! every element. They run in `O(n³)` and are intended for test code and
//! for validating lattices loaded from preludes.

use crate::{Elem, Lattice};

/// A violated lattice law, with the witnesses that violate it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LawViolation {
    /// `a ≤ a` failed.
    Reflexivity(Elem),
    /// `a ≤ b ∧ b ≤ a` with `a ≠ b`.
    Antisymmetry(Elem, Elem),
    /// `a ≤ b ∧ b ≤ c` but not `a ≤ c`.
    Transitivity(Elem, Elem, Elem),
    /// `a ⊔ b` is not an upper bound or not the least one.
    JoinNotLub(Elem, Elem),
    /// `a ⊓ b` is not a lower bound or not the greatest one.
    MeetNotGlb(Elem, Elem),
    /// `⊥ ≤ a` failed.
    BottomNotLeast(Elem),
    /// `a ≤ ⊤` failed.
    TopNotGreatest(Elem),
    /// `a ⊔ b ≠ b ⊔ a` (or the meet analogue).
    NotCommutative(Elem, Elem),
    /// Absorption `a ⊔ (a ⊓ b) = a` failed.
    NotAbsorptive(Elem, Elem),
}

/// Checks every lattice law, returning the first violation found.
///
/// # Examples
///
/// ```
/// use taint_lattice::{laws, TwoPoint};
///
/// assert_eq!(laws::check_lattice_laws(&TwoPoint::new()), None);
/// ```
pub fn check_lattice_laws<L: Lattice>(l: &L) -> Option<LawViolation> {
    let elems = l.elems();
    for &a in &elems {
        if !l.leq(a, a) {
            return Some(LawViolation::Reflexivity(a));
        }
        if !l.leq(l.bottom(), a) {
            return Some(LawViolation::BottomNotLeast(a));
        }
        if !l.leq(a, l.top()) {
            return Some(LawViolation::TopNotGreatest(a));
        }
    }
    for &a in &elems {
        for &b in &elems {
            if a != b && l.leq(a, b) && l.leq(b, a) {
                return Some(LawViolation::Antisymmetry(a, b));
            }
            let j = l.join(a, b);
            let m = l.meet(a, b);
            if j != l.join(b, a) || m != l.meet(b, a) {
                return Some(LawViolation::NotCommutative(a, b));
            }
            // Join is an upper bound and is least among upper bounds.
            if !l.leq(a, j) || !l.leq(b, j) {
                return Some(LawViolation::JoinNotLub(a, b));
            }
            // Meet is a lower bound and is greatest among lower bounds.
            if !l.leq(m, a) || !l.leq(m, b) {
                return Some(LawViolation::MeetNotGlb(a, b));
            }
            for &c in &elems {
                if l.leq(a, c) && l.leq(b, c) && !l.leq(j, c) {
                    return Some(LawViolation::JoinNotLub(a, b));
                }
                if l.leq(c, a) && l.leq(c, b) && !l.leq(c, m) {
                    return Some(LawViolation::MeetNotGlb(a, b));
                }
                if l.leq(a, b) && l.leq(b, c) && !l.leq(a, c) {
                    return Some(LawViolation::Transitivity(a, b, c));
                }
            }
            if l.join(a, l.meet(a, b)) != a || l.meet(a, l.join(a, b)) != a {
                return Some(LawViolation::NotAbsorptive(a, b));
            }
        }
    }
    None
}

/// Asserts that every lattice law holds; panics with the violation
/// otherwise. Intended for tests.
///
/// # Panics
///
/// Panics if [`check_lattice_laws`] reports a violation.
pub fn assert_lattice_laws<L: Lattice>(l: &L) {
    if let Some(v) = check_lattice_laws(l) {
        panic!("lattice law violated: {v:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Chain, Powerset, Product, TwoPoint};

    #[test]
    fn all_shipped_lattices_pass() {
        assert_lattice_laws(&TwoPoint::new());
        assert_lattice_laws(&Chain::new(7));
        assert_lattice_laws(&Powerset::new(vec!["a".into(), "b".into(), "c".into()]));
        assert_lattice_laws(&Product::new(Chain::new(3), TwoPoint::new()));
    }

    /// A deliberately broken "lattice" to prove the checker detects
    /// violations rather than rubber-stamping.
    struct BrokenJoin;

    impl Lattice for BrokenJoin {
        fn len(&self) -> usize {
            2
        }
        fn leq(&self, a: Elem, b: Elem) -> bool {
            a.index() <= b.index()
        }
        fn join(&self, _a: Elem, _b: Elem) -> Elem {
            Elem::new(0) // wrong: join(0,1) should be 1
        }
        fn meet(&self, a: Elem, b: Elem) -> Elem {
            Elem::new(a.index().min(b.index()))
        }
        fn bottom(&self) -> Elem {
            Elem::new(0)
        }
        fn top(&self) -> Elem {
            Elem::new(1)
        }
    }

    #[test]
    fn broken_join_is_detected() {
        let v = check_lattice_laws(&BrokenJoin).expect("must detect violation");
        assert!(matches!(
            v,
            LawViolation::JoinNotLub(..) | LawViolation::NotAbsorptive(..)
        ));
    }

    struct BrokenBottom;

    impl Lattice for BrokenBottom {
        fn len(&self) -> usize {
            2
        }
        fn leq(&self, a: Elem, b: Elem) -> bool {
            a.index() <= b.index()
        }
        fn join(&self, a: Elem, b: Elem) -> Elem {
            Elem::new(a.index().max(b.index()))
        }
        fn meet(&self, a: Elem, b: Elem) -> Elem {
            Elem::new(a.index().min(b.index()))
        }
        fn bottom(&self) -> Elem {
            Elem::new(1) // wrong
        }
        fn top(&self) -> Elem {
            Elem::new(1)
        }
    }

    #[test]
    fn broken_bottom_is_detected() {
        let v = check_lattice_laws(&BrokenBottom).expect("must detect violation");
        assert_eq!(v, LawViolation::BottomNotLeast(Elem::new(0)));
    }
}
