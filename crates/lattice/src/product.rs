use crate::{Elem, Lattice};

/// The componentwise product of two lattices.
///
/// An element `(a, b)` is encoded as the index `a + b * left.len()`.
/// Order, join, and meet act componentwise, so the product of complete
/// lattices is again a complete lattice.
///
/// Products let a policy combine orthogonal concerns, e.g. a taint
/// dimension times a confidentiality chain.
///
/// # Examples
///
/// ```
/// use taint_lattice::{Chain, Lattice, Product, TwoPoint};
///
/// let l = Product::new(TwoPoint::new(), Chain::new(3));
/// assert_eq!(l.len(), 6);
/// let x = l.pair(TwoPoint::TAINTED, taint_lattice::Elem::new(0));
/// let y = l.pair(TwoPoint::UNTAINTED, taint_lattice::Elem::new(2));
/// assert_eq!(l.join(x, y), l.pair(TwoPoint::TAINTED, taint_lattice::Elem::new(2)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Product<L, R> {
    left: L,
    right: R,
}

impl<L: Lattice, R: Lattice> Product<L, R> {
    /// Creates the product lattice `left × right`.
    pub fn new(left: L, right: R) -> Self {
        Product { left, right }
    }

    /// The left factor.
    pub fn left(&self) -> &L {
        &self.left
    }

    /// The right factor.
    pub fn right(&self) -> &R {
        &self.right
    }

    /// Packs a pair of factor elements into a product element.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either component is out of range.
    pub fn pair(&self, a: Elem, b: Elem) -> Elem {
        debug_assert!(a.index() < self.left.len() && b.index() < self.right.len());
        Elem::new(a.index() + b.index() * self.left.len())
    }

    /// Unpacks a product element into its factor components.
    pub fn split(&self, e: Elem) -> (Elem, Elem) {
        let n = self.left.len();
        (Elem::new(e.index() % n), Elem::new(e.index() / n))
    }
}

impl<L: Lattice, R: Lattice> Lattice for Product<L, R> {
    fn len(&self) -> usize {
        self.left.len() * self.right.len()
    }

    fn leq(&self, a: Elem, b: Elem) -> bool {
        let (al, ar) = self.split(a);
        let (bl, br) = self.split(b);
        self.left.leq(al, bl) && self.right.leq(ar, br)
    }

    fn join(&self, a: Elem, b: Elem) -> Elem {
        let (al, ar) = self.split(a);
        let (bl, br) = self.split(b);
        self.pair(self.left.join(al, bl), self.right.join(ar, br))
    }

    fn meet(&self, a: Elem, b: Elem) -> Elem {
        let (al, ar) = self.split(a);
        let (bl, br) = self.split(b);
        self.pair(self.left.meet(al, bl), self.right.meet(ar, br))
    }

    fn bottom(&self) -> Elem {
        self.pair(self.left.bottom(), self.right.bottom())
    }

    fn top(&self) -> Elem {
        self.pair(self.left.top(), self.right.top())
    }

    fn name(&self, a: Elem) -> String {
        let (l, r) = self.split(a);
        format!("({},{})", self.left.name(l), self.right.name(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{laws, Chain, Powerset, TwoPoint};

    #[test]
    fn product_of_chains_satisfies_laws() {
        laws::assert_lattice_laws(&Product::new(Chain::new(3), Chain::new(2)));
    }

    #[test]
    fn product_of_two_point_and_powerset_satisfies_laws() {
        let p = Powerset::new(vec!["xss".into(), "sqli".into()]);
        laws::assert_lattice_laws(&Product::new(TwoPoint::new(), p));
    }

    #[test]
    fn pair_split_round_trip() {
        let l = Product::new(Chain::new(3), Chain::new(4));
        for a in 0..3 {
            for b in 0..4 {
                let e = l.pair(Elem::new(a), Elem::new(b));
                assert_eq!(l.split(e), (Elem::new(a), Elem::new(b)));
            }
        }
    }

    #[test]
    fn incomparable_pairs_exist() {
        let l = Product::new(Chain::new(2), Chain::new(2));
        let x = l.pair(Elem::new(1), Elem::new(0));
        let y = l.pair(Elem::new(0), Elem::new(1));
        assert!(!l.comparable(x, y));
    }

    #[test]
    fn name_shows_both_components() {
        let l = Product::new(TwoPoint::new(), Chain::new(2));
        let e = l.pair(TwoPoint::TAINTED, Elem::new(1));
        assert_eq!(l.name(e), "(tainted,level1)");
    }

    #[test]
    fn nested_products_compose() {
        let l = Product::new(Product::new(Chain::new(2), Chain::new(2)), Chain::new(2));
        laws::assert_lattice_laws(&l);
        assert_eq!(l.len(), 8);
    }
}
