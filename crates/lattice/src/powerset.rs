use crate::{Elem, Lattice};

/// The powerset lattice over a set of named taint *kinds*.
///
/// An element is a subset of kinds, ordered by inclusion: `∅` (bottom) is
/// fully trusted data, and the full set (top) carries every kind of
/// taint. Join is set union, meet is set intersection. Element indices
/// are the subsets' bitmasks, so the encoding used by the CNF layer is
/// exactly one bit per kind.
///
/// This models policies that distinguish *why* data is dangerous — e.g.
/// a kind each for `xss`, `sqli`, and `shell`, where
/// `htmlspecialchars()` removes only the `xss` kind while
/// `addslashes()` removes only `sqli`.
///
/// # Examples
///
/// ```
/// use taint_lattice::{Lattice, Powerset};
///
/// let l = Powerset::new(vec!["xss".into(), "sqli".into()]);
/// let xss = l.singleton(0);
/// let sqli = l.singleton(1);
/// let both = l.join(xss, sqli);
/// assert_eq!(both, l.top());
/// assert_eq!(l.name(both), "{xss,sqli}");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Powerset {
    kinds: Vec<String>,
}

impl Powerset {
    /// Creates the powerset lattice over the given taint kinds.
    ///
    /// # Panics
    ///
    /// Panics if there are no kinds or more than 16 of them (2^16
    /// elements is the largest lattice the encoders accept).
    pub fn new(kinds: Vec<String>) -> Self {
        assert!(
            !kinds.is_empty(),
            "powerset lattice needs at least one kind"
        );
        assert!(
            kinds.len() <= 16,
            "powerset lattice supports at most 16 kinds"
        );
        Powerset { kinds }
    }

    /// The taint kinds this lattice distinguishes, in bit order.
    pub fn kinds(&self) -> &[String] {
        &self.kinds
    }

    /// The element carrying exactly the `kind`-th taint kind.
    ///
    /// # Panics
    ///
    /// Panics if `kind >= self.kinds().len()`.
    pub fn singleton(&self, kind: usize) -> Elem {
        assert!(kind < self.kinds.len(), "kind index out of range");
        Elem::new(1 << kind)
    }

    /// Whether element `a` carries the `kind`-th taint kind.
    pub fn contains_kind(&self, a: Elem, kind: usize) -> bool {
        a.index() & (1 << kind) != 0
    }

    /// Removes one taint kind from an element (what a kind-specific
    /// sanitizer does).
    pub fn without_kind(&self, a: Elem, kind: usize) -> Elem {
        Elem::new(a.index() & !(1 << kind))
    }
}

impl Lattice for Powerset {
    fn len(&self) -> usize {
        1 << self.kinds.len()
    }

    fn leq(&self, a: Elem, b: Elem) -> bool {
        a.index() & !b.index() == 0
    }

    fn join(&self, a: Elem, b: Elem) -> Elem {
        Elem::new(a.index() | b.index())
    }

    fn meet(&self, a: Elem, b: Elem) -> Elem {
        Elem::new(a.index() & b.index())
    }

    fn bottom(&self) -> Elem {
        Elem::new(0)
    }

    fn top(&self) -> Elem {
        Elem::new((1 << self.kinds.len()) - 1)
    }

    fn name(&self, a: Elem) -> String {
        let mut parts = Vec::new();
        for (i, kind) in self.kinds.iter().enumerate() {
            if self.contains_kind(a, i) {
                parts.push(kind.as_str());
            }
        }
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    fn l3() -> Powerset {
        Powerset::new(vec!["xss".into(), "sqli".into(), "shell".into()])
    }

    #[test]
    fn satisfies_lattice_laws() {
        laws::assert_lattice_laws(&l3());
    }

    #[test]
    fn len_is_power_of_two() {
        assert_eq!(l3().len(), 8);
    }

    #[test]
    fn leq_is_subset() {
        let l = l3();
        let xss = l.singleton(0);
        let both = l.join(xss, l.singleton(1));
        assert!(l.leq(xss, both));
        assert!(!l.leq(both, xss));
        assert!(!l.comparable(l.singleton(0), l.singleton(1)));
    }

    #[test]
    fn without_kind_sanitizes_one_dimension() {
        let l = l3();
        let both = l.join(l.singleton(0), l.singleton(1));
        let after = l.without_kind(both, 0);
        assert_eq!(after, l.singleton(1));
        assert!(!l.contains_kind(after, 0));
        assert!(l.contains_kind(after, 1));
    }

    #[test]
    fn bottom_is_empty_set_top_is_full_set() {
        let l = l3();
        assert_eq!(l.name(l.bottom()), "{}");
        assert_eq!(l.name(l.top()), "{xss,sqli,shell}");
    }

    #[test]
    fn bits_is_number_of_kinds() {
        assert_eq!(l3().bits(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one kind")]
    fn empty_kind_list_panics() {
        let _ = Powerset::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "at most 16")]
    fn too_many_kinds_panics() {
        let kinds = (0..17).map(|i| format!("k{i}")).collect();
        let _ = Powerset::new(kinds);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn singleton_out_of_range_panics() {
        let _ = l3().singleton(3);
    }
}
