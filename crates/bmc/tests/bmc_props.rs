//! Property tests: the bounded model checker agrees with exhaustive
//! path enumeration on random abstract interpretations, and both
//! encodings agree with each other.

use std::collections::BTreeSet;

use proptest::prelude::*;
use taint_lattice::{Lattice, TwoPoint};
use webssari_ir::ai::reference;
use webssari_ir::{AiCmd, AiProgram, AssertId, AssertKind, BranchId, Site, VarId, VarTable};
use xbmc::{CheckOptions, EncoderKind, Xbmc};

const NUM_VARS: usize = 4;

/// Command shapes without ids; ids are assigned in a pre-order pass,
/// matching the translator in `webssari-ir`.
#[derive(Clone, Debug)]
enum Proto {
    Assign {
        var: usize,
        base: bool,
        deps: Vec<usize>,
    },
    Assert {
        vars: Vec<usize>,
    },
    If {
        then_cmds: Vec<Proto>,
        else_cmds: Vec<Proto>,
    },
    Stop,
}

fn proto_strategy() -> impl Strategy<Value = Vec<Proto>> {
    let leaf = prop_oneof![
        (
            0..NUM_VARS,
            any::<bool>(),
            prop::collection::vec(0..NUM_VARS, 0..3)
        )
            .prop_map(|(var, base, deps)| Proto::Assign { var, base, deps }),
        prop::collection::vec(0..NUM_VARS, 1..3).prop_map(|vars| Proto::Assert { vars }),
        Just(Proto::Stop),
    ];
    let cmd = leaf.prop_recursive(3, 16, 4, |inner| {
        (
            prop::collection::vec(inner.clone(), 0..3),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(then_cmds, else_cmds)| Proto::If {
                then_cmds,
                else_cmds,
            })
    });
    prop::collection::vec(cmd, 1..6)
}

fn materialize(protos: &[Proto]) -> AiProgram {
    let mut vars = VarTable::new();
    for i in 0..NUM_VARS {
        vars.intern(&format!("x{i}"));
    }
    let mut next_branch = 0u32;
    let mut next_assert = 0u32;
    let cmds = build(protos, &mut next_branch, &mut next_assert);
    let num_assertions = next_assert as usize;
    let p = AiProgram::from_parts(vars, cmds, next_branch as usize);
    assert_eq!(p.num_assertions(), num_assertions);
    p
}

fn build(protos: &[Proto], next_branch: &mut u32, next_assert: &mut u32) -> Vec<AiCmd> {
    let l = TwoPoint::new();
    protos
        .iter()
        .map(|p| match p {
            Proto::Assign { var, base, deps } => AiCmd::Assign {
                var: VarId::from_index(*var),
                mask: None,
                base: if *base { l.top() } else { l.bottom() },
                deps: {
                    let mut d: Vec<VarId> = deps.iter().map(|&i| VarId::from_index(i)).collect();
                    d.sort_unstable();
                    d.dedup();
                    d
                },
                site: Site::synthetic("prop.php", "assign"),
            },
            Proto::Assert { vars } => {
                let id = AssertId(*next_assert);
                *next_assert += 1;
                let mut vs: Vec<VarId> = vars.iter().map(|&i| VarId::from_index(i)).collect();
                vs.sort_unstable();
                vs.dedup();
                AiCmd::Assert {
                    id,
                    vars: vs,
                    bound: l.top(),
                    strict: true,
                    func: "echo".into(),
                    kind: AssertKind::Soc,
                    site: Site::synthetic("prop.php", "assert"),
                }
            }
            Proto::If {
                then_cmds,
                else_cmds,
            } => {
                let branch = BranchId(*next_branch);
                *next_branch += 1;
                let t = build(then_cmds, next_branch, next_assert);
                let e = build(else_cmds, next_branch, next_assert);
                AiCmd::If {
                    branch,
                    then_cmds: t,
                    else_cmds: e,
                    site: Site::synthetic("prop.php", "if"),
                }
            }
            Proto::Stop => AiCmd::Stop {
                site: Site::synthetic("prop.php", "stop"),
            },
        })
        .collect()
}

/// Branches seen (pre-order) before each assertion — the per-assertion
/// `BN` used for counterexample identity.
fn relevant_branches(p: &AiProgram) -> Vec<(AssertId, Vec<usize>)> {
    fn walk(cmds: &[AiCmd], seen: &mut Vec<usize>, out: &mut Vec<(AssertId, Vec<usize>)>) {
        for c in cmds {
            match c {
                AiCmd::Assert { id, .. } => out.push((*id, seen.clone())),
                AiCmd::If {
                    branch,
                    then_cmds,
                    else_cmds,
                    ..
                } => {
                    seen.push(branch.0 as usize);
                    walk(then_cmds, seen, out);
                    walk(else_cmds, seen, out);
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(&p.cmds, &mut Vec::new(), &mut out);
    out.sort_by_key(|(id, _)| *id);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The model checker's counterexample set equals exhaustive path
    /// enumeration, projected onto each assertion's relevant branches.
    #[test]
    fn bmc_matches_exhaustive_reference(protos in proto_strategy()) {
        let p = materialize(&protos);
        prop_assume!(p.num_branches <= 8);
        let l = TwoPoint::new();
        let result = Xbmc::new(&p).check_all();

        // Expected: violating full assignments, projected.
        let reference_paths = reference::all_violating_paths(&p, &l);
        let relevant = relevant_branches(&p);
        let mut expected: BTreeSet<(u32, Vec<bool>)> = BTreeSet::new();
        for (id, paths) in &reference_paths {
            let rel = &relevant.iter().find(|(i, _)| i == id).unwrap().1;
            for path in paths {
                let mut projected = vec![false; p.num_branches];
                for &b in rel {
                    projected[b] = path[b];
                }
                expected.insert((id.0, projected));
            }
        }
        let actual: BTreeSet<(u32, Vec<bool>)> = result
            .counterexamples
            .iter()
            .map(|c| (c.assert_id.0, c.branches.clone()))
            .collect();
        prop_assert_eq!(actual, expected);
    }

    /// Every reported counterexample reproduces under the reference
    /// interpreter with exactly the reported violating variables.
    #[test]
    fn counterexamples_replay_concretely(protos in proto_strategy()) {
        let p = materialize(&protos);
        prop_assume!(p.num_branches <= 8);
        let l = TwoPoint::new();
        for cx in Xbmc::new(&p).check_all().counterexamples {
            let violations = reference::run_path(&p, &l, &cx.branches, false);
            let found = violations.iter().find(|v| v.assert_id == cx.assert_id)
                .expect("counterexample must reproduce");
            let mut got = cx.violating_vars.clone();
            got.sort_unstable();
            let mut want = found.violating_vars.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    /// The aux-variable encoding (xBMC 0.1) and the renaming encoding
    /// (xBMC 1.0) agree on which assertions are violated.
    #[test]
    fn encodings_agree_on_violated_assertions(protos in proto_strategy()) {
        let p = materialize(&protos);
        prop_assume!(p.num_branches <= 5 && p.num_commands() <= 24);
        let ren = Xbmc::new(&p).check_all();
        let aux = Xbmc::with_options(
            &p,
            CheckOptions { encoder: EncoderKind::AuxVariable, ..CheckOptions::default() },
        )
        .check_all();
        let ren_ids: BTreeSet<u32> =
            ren.counterexamples.iter().map(|c| c.assert_id.0).collect();
        let aux_ids: BTreeSet<u32> =
            aux.counterexamples.iter().map(|c| c.assert_id.0).collect();
        prop_assert_eq!(ren_ids, aux_ids);
    }
}
