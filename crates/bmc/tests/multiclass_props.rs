//! Property tests over a *multi-bit* lattice: random AI programs on the
//! powerset lattice of two taint kinds, with masked (sanitizing)
//! assignments and non-strict bounds — exercising the table-driven
//! join/meet circuits and `≤`-mode assertions against the reference
//! interpreter.

use std::collections::BTreeSet;

use proptest::prelude::*;
use taint_lattice::{Elem, Powerset};
use webssari_ir::ai::reference;
use webssari_ir::{AiCmd, AiProgram, AssertId, AssertKind, BranchId, Site, VarId, VarTable};
use xbmc::{CheckOptions, EncoderKind, Xbmc};

const NUM_VARS: usize = 3;

fn lattice() -> Powerset {
    Powerset::new(vec!["xss".into(), "sqli".into()])
}

#[derive(Clone, Debug)]
enum Proto {
    Assign {
        var: usize,
        base: usize,
        deps: Vec<usize>,
        mask: Option<usize>,
    },
    Assert {
        vars: Vec<usize>,
        bound: usize,
        strict: bool,
    },
    If {
        then_cmds: Vec<Proto>,
        else_cmds: Vec<Proto>,
    },
}

fn proto_strategy() -> impl Strategy<Value = Vec<Proto>> {
    let elem = 0usize..4; // 2^2 lattice elements
    let leaf = prop_oneof![
        (
            0..NUM_VARS,
            elem.clone(),
            prop::collection::vec(0..NUM_VARS, 0..3),
            prop::option::of(elem.clone()),
        )
            .prop_map(|(var, base, deps, mask)| Proto::Assign {
                var,
                base,
                deps,
                mask
            }),
        (
            prop::collection::vec(0..NUM_VARS, 1..3),
            elem,
            any::<bool>()
        )
            .prop_map(|(vars, bound, strict)| Proto::Assert {
                vars,
                bound,
                strict
            }),
    ];
    let cmd = leaf.prop_recursive(2, 12, 3, |inner| {
        (
            prop::collection::vec(inner.clone(), 0..3),
            prop::collection::vec(inner, 0..2),
        )
            .prop_map(|(then_cmds, else_cmds)| Proto::If {
                then_cmds,
                else_cmds,
            })
    });
    prop::collection::vec(cmd, 1..6)
}

fn build(protos: &[Proto], next_branch: &mut u32, next_assert: &mut u32) -> Vec<AiCmd> {
    protos
        .iter()
        .map(|p| match p {
            Proto::Assign {
                var,
                base,
                deps,
                mask,
            } => AiCmd::Assign {
                var: VarId::from_index(*var),
                base: Elem::new(*base),
                deps: {
                    let mut d: Vec<VarId> = deps.iter().map(|&i| VarId::from_index(i)).collect();
                    d.sort_unstable();
                    d.dedup();
                    d
                },
                mask: mask.map(Elem::new),
                site: Site::synthetic("mc.php", "assign"),
            },
            Proto::Assert {
                vars,
                bound,
                strict,
            } => {
                let id = AssertId(*next_assert);
                *next_assert += 1;
                let mut vs: Vec<VarId> = vars.iter().map(|&i| VarId::from_index(i)).collect();
                vs.sort_unstable();
                vs.dedup();
                AiCmd::Assert {
                    id,
                    vars: vs,
                    bound: Elem::new(*bound),
                    strict: *strict,
                    func: "sink".into(),
                    kind: AssertKind::Soc,
                    site: Site::synthetic("mc.php", "assert"),
                }
            }
            Proto::If {
                then_cmds,
                else_cmds,
            } => {
                let branch = BranchId(*next_branch);
                *next_branch += 1;
                let t = build(then_cmds, next_branch, next_assert);
                let e = build(else_cmds, next_branch, next_assert);
                AiCmd::If {
                    branch,
                    then_cmds: t,
                    else_cmds: e,
                    site: Site::synthetic("mc.php", "if"),
                }
            }
        })
        .collect()
}

fn materialize(protos: &[Proto]) -> AiProgram {
    let mut vars = VarTable::new();
    for i in 0..NUM_VARS {
        vars.intern(&format!("x{i}"));
    }
    let mut next_branch = 0u32;
    let mut next_assert = 0u32;
    let cmds = build(protos, &mut next_branch, &mut next_assert);
    AiProgram::from_parts(vars, cmds, next_branch as usize)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Renaming-encoded BMC over the powerset lattice agrees with
    /// exhaustive path enumeration on which (assertion, path) pairs
    /// violate.
    #[test]
    fn multiclass_bmc_matches_reference(protos in proto_strategy()) {
        let p = materialize(&protos);
        prop_assume!(p.num_branches <= 6);
        let l = lattice();
        let result = Xbmc::new(&p).check_all_with(&l);
        let expected: BTreeSet<u32> = reference::all_violating_paths(&p, &l)
            .into_iter()
            .map(|(id, _)| id.0)
            .collect();
        let mut actual: BTreeSet<u32> = BTreeSet::new();
        for cx in &result.counterexamples {
            actual.insert(cx.assert_id.0);
            // Each counterexample must replay concretely.
            let violations = reference::run_path(&p, &l, &cx.branches, false);
            let found = violations
                .iter()
                .find(|v| v.assert_id == cx.assert_id)
                .expect("counterexample must reproduce");
            let mut got = cx.violating_vars.clone();
            got.sort_unstable();
            let mut want = found.violating_vars.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(actual, expected);
    }

    /// Both encoders agree on verdicts over the multi-bit lattice too.
    #[test]
    fn multiclass_encoders_agree(protos in proto_strategy()) {
        let p = materialize(&protos);
        prop_assume!(p.num_branches <= 4 && p.num_commands() <= 14);
        let l = lattice();
        let ren = Xbmc::new(&p).check_all_with(&l);
        let aux = Xbmc::with_options(
            &p,
            CheckOptions { encoder: EncoderKind::AuxVariable, ..CheckOptions::default() },
        )
        .check_all_with(&l);
        let ren_ids: BTreeSet<u32> =
            ren.counterexamples.iter().map(|c| c.assert_id.0).collect();
        let aux_ids: BTreeSet<u32> =
            aux.counterexamples.iter().map(|c| c.assert_id.0).collect();
        prop_assert_eq!(ren_ids, aux_ids);
    }

    /// Certification works over the multi-bit lattice: holding
    /// assertions get refutations that an independent checker accepts.
    #[test]
    fn multiclass_certificates_verify(protos in proto_strategy()) {
        let p = materialize(&protos);
        prop_assume!(p.num_branches <= 5);
        let l = lattice();
        let result = Xbmc::with_options(
            &p,
            CheckOptions { certify: true, ..CheckOptions::default() },
        )
        .check_all_with(&l);
        let holding = result.checked_assertions - result.violated_assertions;
        prop_assert_eq!(result.certificates.len(), holding);
        prop_assert_eq!(result.verify_certificates().unwrap(), holding);
    }
}
