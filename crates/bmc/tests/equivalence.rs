//! Differential testing of the checker against the frozen pre-refactor
//! solver ([`sat::reference::Solver`]).
//!
//! The solver's data plane was rebuilt (flat clause arena, in-place
//! watcher walk, `add_formula` preprocessing) and the checker now clones
//! one base solver per encoding. This harness re-runs the paper's
//! per-assertion counterexample enumeration (§3.3.2) over the *same*
//! renaming encoding with the old solver and demands identical
//! `CheckResult` counterexample sets — assert id + branch assignment,
//! in the checker's deterministic order — on randomized `AiProgram`s
//! and randomized PHP-derived programs, plus agreement in certify
//! (proof-logging) and budget-interrupt modes.

use std::collections::BTreeSet;

use php_front::parse_source;
use proptest::prelude::*;
use taint_lattice::TwoPoint;
use webssari_ir::{
    abstract_interpret, filter_program, AiCmd, AiProgram, AssertId, AssertKind, BranchId,
    FilterOptions, Prelude, Site, VarId, VarTable,
};
use xbmc::{CheckOptions, CheckResult, Xbmc};

/// The checker's counterexample list as comparable data, preserving the
/// checker's deterministic order (assertions in program order, branch
/// assignments sorted within each assertion).
fn key(r: &CheckResult) -> Vec<(u32, Vec<bool>)> {
    r.counterexamples
        .iter()
        .map(|c| (c.assert_id.0, c.branches.clone()))
        .collect()
}

/// Re-implements the renaming-encoding enumeration loop of
/// `Xbmc::check_all` on the frozen pre-refactor solver: one selector
/// variable per assertion scoping its blocking clauses, enumeration to
/// UNSAT per assertion. Returns counterexamples in the same
/// deterministic order the checker reports them.
fn enumerate_with_reference_solver(ai: &AiProgram) -> Vec<(u32, Vec<bool>)> {
    let lattice = TwoPoint::new();
    let enc = xbmc::renaming::encode(ai, &lattice);
    let mut solver = sat::reference::Solver::from_formula(&enc.formula);
    let selector_base = enc.formula.num_vars();
    let mut out = Vec::new();
    for (ai_idx, a) in enc.asserts.iter().enumerate() {
        let selector = cnf::Var::new(selector_base + ai_idx).positive();
        let mut found: BTreeSet<Vec<bool>> = BTreeSet::new();
        loop {
            match solver.solve_with_assumptions(&[selector, a.violated]) {
                sat::SatResult::Sat(model) => {
                    let mut branches = vec![false; ai.num_branches];
                    for b in &a.relevant_branches {
                        branches[b.0 as usize] = model.lit_value(enc.branch_lits[b.0 as usize]);
                    }
                    assert!(found.insert(branches), "duplicate counterexample");
                    let mut blocking: Vec<cnf::Lit> = a
                        .relevant_branches
                        .iter()
                        .map(|b| {
                            let lit = enc.branch_lits[b.0 as usize];
                            if model.lit_value(lit) {
                                !lit
                            } else {
                                lit
                            }
                        })
                        .collect();
                    blocking.push(!selector);
                    solver.add_clause(blocking);
                }
                sat::SatResult::Unsat => break,
                other => panic!("reference enumeration got {other:?} with no budget"),
            }
        }
        out.extend(found.into_iter().map(|b| (a.id.0, b)));
    }
    out
}

/// Order-independent FNV-1a over a counterexample set — the same
/// fingerprint `BENCH_sat.json` commits, used here as the equality
/// oracle for cube expansion.
fn fingerprint(counterexamples: &mut [(u32, Vec<bool>)]) -> u64 {
    counterexamples.sort();
    let mut h = 0xcbf29ce484222325u64;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    };
    for (id, branches) in counterexamples.iter() {
        for b in id.to_le_bytes() {
            eat(b);
        }
        for &bit in branches {
            eat(u8::from(bit));
        }
        eat(0xFF);
    }
    h
}

// ---------------------------------------------------------------------
// Randomized AiPrograms (direct IR generation, as in bmc_props.rs).
// ---------------------------------------------------------------------

const NUM_VARS: usize = 4;

#[derive(Clone, Debug)]
enum Proto {
    Assign {
        var: usize,
        base: bool,
        deps: Vec<usize>,
    },
    Assert {
        vars: Vec<usize>,
    },
    If {
        then_cmds: Vec<Proto>,
        else_cmds: Vec<Proto>,
    },
    Stop,
}

fn proto_strategy() -> impl Strategy<Value = Vec<Proto>> {
    let leaf = prop_oneof![
        (
            0..NUM_VARS,
            any::<bool>(),
            prop::collection::vec(0..NUM_VARS, 0..3)
        )
            .prop_map(|(var, base, deps)| Proto::Assign { var, base, deps }),
        prop::collection::vec(0..NUM_VARS, 1..3).prop_map(|vars| Proto::Assert { vars }),
        Just(Proto::Stop),
    ];
    let cmd = leaf.prop_recursive(3, 16, 4, |inner| {
        (
            prop::collection::vec(inner.clone(), 0..3),
            prop::collection::vec(inner, 0..3),
        )
            .prop_map(|(then_cmds, else_cmds)| Proto::If {
                then_cmds,
                else_cmds,
            })
    });
    prop::collection::vec(cmd, 1..6)
}

fn materialize(protos: &[Proto]) -> AiProgram {
    let mut vars = VarTable::new();
    for i in 0..NUM_VARS {
        vars.intern(&format!("x{i}"));
    }
    let mut next_branch = 0u32;
    let mut next_assert = 0u32;
    let cmds = build(protos, &mut next_branch, &mut next_assert);
    AiProgram::from_parts(vars, cmds, next_branch as usize)
}

fn build(protos: &[Proto], next_branch: &mut u32, next_assert: &mut u32) -> Vec<AiCmd> {
    use taint_lattice::Lattice;
    let l = TwoPoint::new();
    protos
        .iter()
        .map(|p| match p {
            Proto::Assign { var, base, deps } => AiCmd::Assign {
                var: VarId::from_index(*var),
                mask: None,
                base: if *base { l.top() } else { l.bottom() },
                deps: {
                    let mut d: Vec<VarId> = deps.iter().map(|&i| VarId::from_index(i)).collect();
                    d.sort_unstable();
                    d.dedup();
                    d
                },
                site: Site::synthetic("equiv.php", "assign"),
            },
            Proto::Assert { vars } => {
                let id = AssertId(*next_assert);
                *next_assert += 1;
                let mut vs: Vec<VarId> = vars.iter().map(|&i| VarId::from_index(i)).collect();
                vs.sort_unstable();
                vs.dedup();
                AiCmd::Assert {
                    id,
                    vars: vs,
                    bound: l.top(),
                    strict: true,
                    func: "echo".into(),
                    kind: AssertKind::Soc,
                    site: Site::synthetic("equiv.php", "assert"),
                }
            }
            Proto::If {
                then_cmds,
                else_cmds,
            } => {
                let branch = BranchId(*next_branch);
                *next_branch += 1;
                let t = build(then_cmds, next_branch, next_assert);
                let e = build(else_cmds, next_branch, next_assert);
                AiCmd::If {
                    branch,
                    then_cmds: t,
                    else_cmds: e,
                    site: Site::synthetic("equiv.php", "if"),
                }
            }
            Proto::Stop => AiCmd::Stop {
                site: Site::synthetic("equiv.php", "stop"),
            },
        })
        .collect()
}

// ---------------------------------------------------------------------
// Randomized PHP-derived AiPrograms: a seeded generator emits small PHP
// sources which go through the real front end (parse → filter →
// abstract interpretation), exercising encodings with the unit-heavy
// taint constraints real programs produce.
// ---------------------------------------------------------------------

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_php(seed: u64) -> String {
    let mut rng = XorShift(seed | 1);
    let mut src = String::from("<?php ");
    let mut depth = 0usize;
    let mut cond = 0usize;
    let stmts = 4 + rng.below(6);
    for _ in 0..stmts {
        let v = rng.below(3);
        match rng.below(8) {
            0 => src.push_str(&format!("$x{v} = $_GET['p{v}'];")),
            1 => src.push_str(&format!("$x{v} = 'lit{v}';")),
            2 => {
                let w = rng.below(3);
                src.push_str(&format!("$x{v} = htmlspecialchars($x{w});"));
            }
            3 => {
                let w = rng.below(3);
                let u = rng.below(3);
                src.push_str(&format!("$x{v} = $x{w} . $x{u};"));
            }
            4 => src.push_str(&format!("echo $x{v};")),
            5 => src.push_str(&format!("mysql_query($x{v});")),
            6 if depth < 2 => {
                src.push_str(&format!("if ($c{cond}) {{ "));
                cond += 1;
                depth += 1;
            }
            _ => {
                if depth > 0 {
                    src.push_str("} ");
                    depth -= 1;
                } else {
                    src.push_str(&format!("$x{v} = intval($x{v});"));
                }
            }
        }
        src.push(' ');
    }
    for _ in 0..depth {
        src.push_str("} ");
    }
    src
}

fn ai_of(src: &str) -> AiProgram {
    let ast = parse_source(src).expect("generated PHP parses");
    let f = filter_program(
        &ast,
        src,
        "equiv.php",
        &Prelude::standard(),
        &FilterOptions::default(),
    );
    abstract_interpret(&f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Both checker modes (incremental and fresh-solver-per-assert)
    /// report exactly the counterexample set the pre-refactor solver
    /// enumerates on the same encoding, in the same order.
    #[test]
    fn check_result_matches_reference_enumeration(protos in proto_strategy()) {
        let p = materialize(&protos);
        prop_assume!(p.num_branches <= 8);
        let expected = enumerate_with_reference_solver(&p);
        let incremental = Xbmc::new(&p).check_all();
        prop_assert_eq!(key(&incremental), expected.clone());
        let fresh = Xbmc::with_options(
            &p,
            CheckOptions { fresh_solver_per_assert: true, ..CheckOptions::default() },
        )
        .check_all();
        prop_assert_eq!(key(&fresh), expected);
        prop_assert!(!incremental.interrupted);
    }

    /// Certify (proof-logging) mode: every assertion the arena-based
    /// checker proves safe gets a certificate that checks, and the
    /// reference enumeration agrees those assertions have no
    /// counterexamples.
    #[test]
    fn certificates_agree_with_reference(protos in proto_strategy()) {
        let p = materialize(&protos);
        prop_assume!(p.num_branches <= 6);
        let r = Xbmc::with_options(
            &p,
            CheckOptions { certify: true, ..CheckOptions::default() },
        )
        .check_all();
        let violated: BTreeSet<u32> =
            r.counterexamples.iter().map(|c| c.assert_id.0).collect();
        prop_assert_eq!(
            r.certificates.len() + violated.len(),
            r.checked_assertions
        );
        prop_assert_eq!(r.verify_certificates().unwrap(), r.certificates.len());
        let reference_violated: BTreeSet<u32> = enumerate_with_reference_solver(&p)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        prop_assert_eq!(violated, reference_violated);
    }

    /// Budget-interrupt mode: a budgeted check either completes with
    /// the exact reference result or flags interruption, and whatever
    /// it gathered is a prefix-consistent subset of the full set.
    #[test]
    fn budgeted_check_is_sound(protos in proto_strategy(), max_conflicts in 0u64..5) {
        let p = materialize(&protos);
        prop_assume!(p.num_branches <= 6);
        let expected: BTreeSet<(u32, Vec<bool>)> =
            enumerate_with_reference_solver(&p).into_iter().collect();
        let r = Xbmc::with_options(
            &p,
            CheckOptions {
                budget: Some(sat::Budget::new().max_conflicts(max_conflicts)),
                ..CheckOptions::default()
            },
        )
        .check_all();
        let got: BTreeSet<(u32, Vec<bool>)> = key(&r).into_iter().collect();
        if r.interrupted {
            prop_assert!(got.is_subset(&expected));
        } else {
            prop_assert_eq!(got, expected);
        }
    }
}

// ---------------------------------------------------------------------
// Cube-generalized enumeration: the checker shrinks each model to a
// minimal implicant over the branch variables, blocks the cube, and
// expands it back to full assignments at report time. These tests pin
// the expansion to the per-model reference enumeration on the program
// family where generalization bites hardest (branchy taint chains) and
// on cap hits, where expanded assignments must count against `max_cx`
// exactly as individually-enumerated models did.
// ---------------------------------------------------------------------

/// A branchy taint chain through the real front end: `k` independent
/// branches, each either concatenating a tainted source (op 0), masking
/// with a sanitizer (op 1), or assigning a harmless literal (op 2), so
/// the violating set varies with the op pattern instead of always being
/// "any branch taken".
fn branchy_php(ops: &[u8]) -> String {
    let mut src = String::from("<?php $x = 'safe'; ");
    for (i, op) in ops.iter().enumerate() {
        let body = match op % 3 {
            0 => format!("$x = $x . $_GET['p{i}'];"),
            1 => "$x = htmlspecialchars($x);".to_string(),
            _ => format!("$x = 'lit{i}';"),
        };
        src.push_str(&format!("if ($c{i}) {{ {body} }} "));
    }
    src.push_str("echo $x;");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Cube expansion reproduces the reference solver's exact
    /// counterexample set — same FNV fingerprint `BENCH_sat.json`
    /// commits, and the same list element-for-element — across random
    /// branchy programs, and the generalization is not vacuous on pure
    /// taint chains.
    #[test]
    fn branchy_cube_expansion_matches_reference(ops in prop::collection::vec(0u8..3, 1..9)) {
        let p = ai_of(&branchy_php(&ops));
        let mut expected = enumerate_with_reference_solver(&p);
        let r = Xbmc::new(&p).check_all();
        let mut got = key(&r);
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(fingerprint(&mut got), fingerprint(&mut expected));
        // Every reported counterexample came from a cube expansion.
        prop_assert_eq!(r.stats.cube_assignments, got.len() as u64);
        prop_assert!(r.stats.cubes_learned <= r.stats.sat_calls as u64);
    }

    /// Cube enumeration on top of the tiered clause database with
    /// root-level inprocessing forced on every restart: shrinking each
    /// model to a minimal implicant, blocking the cube, and expanding
    /// it back must reproduce the reference solver's exact
    /// counterexample set even while subsumption and vivification are
    /// rewriting the learned-clause arena between restarts.
    #[test]
    fn cube_enumeration_survives_aggressive_inprocessing(
        ops in prop::collection::vec(0u8..3, 1..9),
    ) {
        let p = ai_of(&branchy_php(&ops));
        let mut expected = enumerate_with_reference_solver(&p);

        let lattice = TwoPoint::new();
        let enc = xbmc::renaming::encode(&p, &lattice);
        let mut solver = sat::Solver::from_formula(&enc.formula);
        solver.set_inprocess_interval(1);
        let selector_base = enc.formula.num_vars();
        let mut got: Vec<(u32, Vec<bool>)> = Vec::new();
        for (ai_idx, a) in enc.asserts.iter().enumerate() {
            let selector = cnf::Var::new(selector_base + ai_idx).positive();
            let mut seen: BTreeSet<Vec<bool>> = BTreeSet::new();
            loop {
                match solver.solve_with_assumptions(&[selector, a.violated]) {
                    sat::SatResult::Sat(model) => {
                        let model_cube: Vec<cnf::Lit> = a
                            .relevant_branches
                            .iter()
                            .map(|b| {
                                let lit = enc.branch_lits[b.0 as usize];
                                if model.lit_value(lit) { lit } else { !lit }
                            })
                            .collect();
                        let cube = solver.shrink_cube(&model_cube, a.violated);
                        let mut fixed: Vec<(usize, bool)> = Vec::new();
                        let mut free: Vec<usize> = Vec::new();
                        for b in &a.relevant_branches {
                            let idx = b.0 as usize;
                            let lit = enc.branch_lits[idx];
                            match cube.iter().find(|l| l.var() == lit.var()) {
                                Some(&l) => fixed.push((idx, l == lit)),
                                None => free.push(idx),
                            }
                        }
                        let width = free.len();
                        for m in 0..1u64 << width {
                            let mut branches = vec![false; p.num_branches];
                            for &(idx, v) in &fixed {
                                branches[idx] = v;
                            }
                            for (i, &idx) in free.iter().enumerate() {
                                branches[idx] = m >> (width - 1 - i) & 1 == 1;
                            }
                            seen.insert(branches);
                        }
                        let mut blocking: Vec<cnf::Lit> =
                            cube.iter().map(|&l| !l).collect();
                        blocking.push(!selector);
                        solver.add_clause(blocking);
                    }
                    sat::SatResult::Unsat => break,
                    other => panic!("cube enumeration got {other:?} with no budget"),
                }
            }
            got.extend(seen.into_iter().map(|b| (a.id.0, b)));
        }
        prop_assert_eq!(&got, &expected);
        prop_assert_eq!(fingerprint(&mut got), fingerprint(&mut expected));
    }

    /// `max_cx` cap hits over cubes: expanded assignments count against
    /// the cap exactly as individually-enumerated models did — the
    /// capped result is a subset of the uncapped set of exactly
    /// `min(cap, total)` per assertion, and the truncation counter
    /// fires for precisely the assertions whose set met the cap.
    #[test]
    fn capped_check_counts_expanded_assignments(
        protos in proto_strategy(),
        cap in 1usize..6,
    ) {
        let p = materialize(&protos);
        prop_assume!(p.num_branches <= 8);
        let expected = enumerate_with_reference_solver(&p);
        let r = Xbmc::with_options(
            &p,
            CheckOptions { max_counterexamples_per_assert: cap, ..CheckOptions::default() },
        )
        .check_all();
        let mut expected_by_assert: std::collections::BTreeMap<u32, BTreeSet<Vec<bool>>> =
            std::collections::BTreeMap::new();
        for (id, branches) in expected {
            expected_by_assert.entry(id).or_default().insert(branches);
        }
        let mut got_by_assert: std::collections::BTreeMap<u32, BTreeSet<Vec<bool>>> =
            std::collections::BTreeMap::new();
        for (id, branches) in key(&r) {
            prop_assert!(
                got_by_assert.entry(id).or_default().insert(branches),
                "capped checker reported a duplicate"
            );
        }
        let mut want_truncated = 0usize;
        for (id, want) in &expected_by_assert {
            let got = got_by_assert.get(id).map(BTreeSet::len).unwrap_or(0);
            prop_assert_eq!(got, want.len().min(cap));
            if want.len() >= cap {
                want_truncated += 1;
            }
            if let Some(g) = got_by_assert.get(id) {
                prop_assert!(g.is_subset(want));
            }
        }
        for id in got_by_assert.keys() {
            prop_assert!(expected_by_assert.contains_key(id), "spurious assert {}", id);
        }
        prop_assert_eq!(r.stats.truncated_assertions, want_truncated);
        prop_assert_eq!(r.stats.cube_assignments, r.counterexamples.len() as u64);
    }
}

// ---------------------------------------------------------------------
// Screening equivalence: the static screening tier (typestate discharge
// plus cone-of-influence slicing, `webssari-analysis`) must be
// observationally invisible — identical verdicts, counterexample sets,
// traces, and fix plans, with screening on or off, under full and
// budgeted checks alike.
// ---------------------------------------------------------------------

/// Replicates the tiered check the core verifier runs when screening is
/// on: typestate, static discharge, BMC over the slice, counter merge,
/// and trace re-replay against the full program.
fn screened_check(ai: &AiProgram, options: CheckOptions) -> CheckResult {
    let lattice = TwoPoint::new();
    let ts = typestate::analyze(ai, &lattice);
    let screened = webssari_analysis::screen(ai, &ts, &lattice);
    let discharged = screened.discharged.len();
    let mut result = if screened.all_discharged() {
        CheckResult::default()
    } else {
        Xbmc::with_options(&screened.sliced, options).check_all()
    };
    result.checked_assertions += discharged;
    for cx in &mut result.counterexamples {
        cx.trace = xbmc::replay_trace(ai, &cx.branches, cx.assert_id);
    }
    result
}

/// Replicates the two-stage tiered check the core verifier runs when
/// the flow tier is on: typestate, static discharge, sparse
/// flow-sensitive re-attribution, BMC over the *refined* (dead-defs
/// dropped, constants folded) slice, counter merge, and trace re-replay
/// against the full program.
fn screened_check_flow(ai: &AiProgram, options: CheckOptions) -> CheckResult {
    let lattice = TwoPoint::new();
    let ts = typestate::analyze(ai, &lattice);
    let flow = webssari_analysis::screen_two_stage(ai, &ts, &lattice);
    let discharged = flow.screen.discharged.len();
    let mut result = if flow.screen.all_discharged() {
        CheckResult::default()
    } else {
        Xbmc::with_options(&flow.refined, options).check_all()
    };
    result.checked_assertions += discharged;
    for cx in &mut result.counterexamples {
        cx.trace = xbmc::replay_trace(ai, &cx.branches, cx.assert_id);
    }
    result
}

/// Channel variables (superglobals and synthetic cross-request store
/// cells) under the standard prelude, as the core verifier computes
/// them before planning fixes.
fn channels(ai: &AiProgram) -> BTreeSet<VarId> {
    let prelude = Prelude::standard();
    ai.vars
        .iter()
        .filter(|v| {
            let name = ai.vars.name(*v);
            prelude.is_superglobal(name) || webssari_ir::is_store_cell(name)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Screening on randomized IR programs: identical counterexamples
    /// (ids, branch assignments, and re-replayed traces), identical
    /// checked/violated counts, and identical minimal fixing sets.
    #[test]
    fn screening_is_observationally_invisible(protos in proto_strategy()) {
        let p = materialize(&protos);
        prop_assume!(p.num_branches <= 8);
        let full = Xbmc::new(&p).check_all();
        let screened = screened_check(&p, CheckOptions::default());
        prop_assert_eq!(&screened.counterexamples, &full.counterexamples);
        prop_assert_eq!(screened.checked_assertions, full.checked_assertions);
        prop_assert_eq!(screened.violated_assertions, full.violated_assertions);
        prop_assert!(!screened.interrupted);
        let chans = channels(&p);
        prop_assert_eq!(
            fixes::minimal_fixing_set_with(&screened.counterexamples, &chans, false),
            fixes::minimal_fixing_set_with(&full.counterexamples, &chans, false)
        );
    }

    /// Budget-interrupt mode under screening: a budgeted screened check
    /// either completes with exactly the unscreened counterexample set
    /// or flags interruption and reports a subset of it. Discharged
    /// assertions never consume budget, so screening can only complete
    /// *more* often — never report something the full check would not.
    #[test]
    fn budgeted_screening_is_sound(protos in proto_strategy(), max_conflicts in 0u64..5) {
        let p = materialize(&protos);
        prop_assume!(p.num_branches <= 6);
        let expected: BTreeSet<(u32, Vec<bool>)> =
            key(&Xbmc::new(&p).check_all()).into_iter().collect();
        let r = screened_check(
            &p,
            CheckOptions {
                budget: Some(sat::Budget::new().max_conflicts(max_conflicts)),
                ..CheckOptions::default()
            },
        );
        let got: BTreeSet<(u32, Vec<bool>)> = key(&r).into_iter().collect();
        if r.interrupted {
            prop_assert!(got.is_subset(&expected));
        } else {
            prop_assert_eq!(got, expected);
        }
    }
}

// ---------------------------------------------------------------------
// Flow-tier equivalence: the sparse flow-sensitive tier (pruned SSA,
// dead-definition elimination, constant folding, flow-clean
// re-attribution) must be exactly as invisible as cone screening —
// identical counterexamples, traces, counts, and fix plans against both
// the unscreened check and the cone-only screened check, under full and
// budgeted checks alike. SSA well-formedness is validated on every
// generated program.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Flow tier on randomized IR programs: the refined program's
    /// verdicts, counterexample sets (with re-replayed traces), counts,
    /// and minimal fixing sets are bit-identical to the unscreened and
    /// cone-only pipelines.
    #[test]
    fn flow_tier_is_observationally_invisible(protos in proto_strategy()) {
        let p = materialize(&protos);
        prop_assume!(p.num_branches <= 8);
        let full = Xbmc::new(&p).check_all();
        let cone_only = screened_check(&p, CheckOptions::default());
        let flowed = screened_check_flow(&p, CheckOptions::default());
        prop_assert_eq!(&flowed.counterexamples, &full.counterexamples);
        prop_assert_eq!(&flowed.counterexamples, &cone_only.counterexamples);
        prop_assert_eq!(flowed.checked_assertions, full.checked_assertions);
        prop_assert_eq!(flowed.violated_assertions, full.violated_assertions);
        prop_assert!(!flowed.interrupted);
        let chans = channels(&p);
        prop_assert_eq!(
            fixes::minimal_fixing_set_with(&flowed.counterexamples, &chans, false),
            fixes::minimal_fixing_set_with(&full.counterexamples, &chans, false)
        );
    }

    /// Budget-interrupt mode under the flow tier: a budgeted flow-tier
    /// check either completes with exactly the unscreened set or flags
    /// interruption and reports a subset of it — dead-def elimination
    /// can only shrink the CNF, never invent counterexamples.
    #[test]
    fn budgeted_flow_tier_is_sound(protos in proto_strategy(), max_conflicts in 0u64..5) {
        let p = materialize(&protos);
        prop_assume!(p.num_branches <= 6);
        let expected: BTreeSet<(u32, Vec<bool>)> =
            key(&Xbmc::new(&p).check_all()).into_iter().collect();
        let r = screened_check_flow(
            &p,
            CheckOptions {
                budget: Some(sat::Budget::new().max_conflicts(max_conflicts)),
                ..CheckOptions::default()
            },
        );
        let got: BTreeSet<(u32, Vec<bool>)> = key(&r).into_iter().collect();
        if r.interrupted {
            prop_assert!(got.is_subset(&expected));
        } else {
            prop_assert_eq!(got, expected);
        }
    }

    /// Pruned SSA construction is well-formed on every randomized IR
    /// program: defs dominate uses, φ arity matches predecessors, one
    /// entry definition per variable.
    #[test]
    fn ssa_is_well_formed_on_random_programs(protos in proto_strategy()) {
        let p = materialize(&protos);
        let ssa = webssari_dataflow::SsaProgram::build(&p);
        prop_assert!(ssa.validate().is_ok(), "{:?}", ssa.validate());
    }

    /// Flow tier over the SQL-structured / store-chained family:
    /// reports and fix plans stay bit-identical, and plans never root
    /// at a synthetic store cell.
    #[test]
    fn flow_tier_is_invisible_on_sql_store_programs(ops in prop::collection::vec(0u8..6, 1..8)) {
        let p = ai_of(&sql_store_php(&ops));
        let full = Xbmc::new(&p).check_all();
        let flowed = screened_check_flow(&p, CheckOptions::default());
        prop_assert_eq!(&flowed.counterexamples, &full.counterexamples);
        prop_assert_eq!(flowed.checked_assertions, full.checked_assertions);
        prop_assert_eq!(flowed.violated_assertions, full.violated_assertions);
        let chans = channels(&p);
        let plan_full = fixes::minimal_fixing_set_with(&full.counterexamples, &chans, false);
        let plan_flow =
            fixes::minimal_fixing_set_with(&flowed.counterexamples, &chans, false);
        prop_assert_eq!(&plan_flow, &plan_full);
        for v in &plan_full.fix_vars {
            prop_assert!(
                !webssari_ir::is_store_cell(p.vars.name(*v)),
                "fix plan rooted at synthetic store cell {}",
                p.vars.name(*v)
            );
        }
    }
}

/// PHP-derived flow-tier equivalence with a vacuity guard: SSA must
/// validate on every seed, reports and fix plans must be bit-identical
/// with the flow tier on, and across the corpus the tier must place a
/// nonzero number of φs (otherwise the sparse analysis never exercised
/// a merge and this harness proves nothing).
#[test]
fn php_derived_flow_tier_preserves_reports() {
    let lattice = TwoPoint::new();
    let mut total_phis = 0usize;
    let mut total_refined = 0usize;
    let mut total_asserts = 0usize;
    for seed in 1..=40u64 {
        let src = random_php(seed.wrapping_mul(0xD1B54A32D192ED03));
        let p = ai_of(&src);
        if p.num_assertions() == 0 {
            continue;
        }
        total_asserts += p.num_assertions();
        let ssa = webssari_dataflow::SsaProgram::build(&p);
        assert!(ssa.validate().is_ok(), "seed {seed}: {:?}", ssa.validate());
        total_phis += ssa.num_phis;
        let ts = typestate::analyze(&p, &lattice);
        let flow = webssari_analysis::screen_two_stage(&p, &ts, &lattice);
        total_refined += (flow.dead_defs_dropped + flow.consts_folded) as usize;
        let full = Xbmc::new(&p).check_all();
        let flowed = screened_check_flow(&p, CheckOptions::default());
        assert_eq!(
            flowed.counterexamples, full.counterexamples,
            "seed {seed}: {src}"
        );
        assert_eq!(
            flowed.checked_assertions, full.checked_assertions,
            "seed {seed}: {src}"
        );
        let chans = channels(&p);
        assert_eq!(
            fixes::minimal_fixing_set_with(&flowed.counterexamples, &chans, false),
            fixes::minimal_fixing_set_with(&full.counterexamples, &chans, false),
            "seed {seed}: fix plans must agree: {src}"
        );
    }
    assert!(total_asserts > 0, "corpus generated no assertions");
    assert!(
        total_phis > 0,
        "corpus placed no φs across {total_asserts} assertions — flow tier untested"
    );
    // The refinement counters are informational; log-style guard only,
    // since dead defs depend on kill patterns the generator may miss.
    let _ = total_refined;
}

/// PHP-derived programs: screening must preserve counterexamples,
/// traces, and fix plans on every seed, and across the corpus the
/// screening tier must actually discharge a nonzero number of
/// assertions (otherwise the tier is vacuous and this harness proves
/// nothing).
#[test]
fn php_derived_screening_preserves_reports() {
    let lattice = TwoPoint::new();
    let mut total_discharged = 0usize;
    let mut total_asserts = 0usize;
    for seed in 1..=40u64 {
        let src = random_php(seed.wrapping_mul(0x2545F4914F6CDD1D));
        let p = ai_of(&src);
        if p.num_assertions() == 0 {
            continue;
        }
        total_asserts += p.num_assertions();
        let ts = typestate::analyze(&p, &lattice);
        total_discharged += webssari_analysis::screen(&p, &ts, &lattice)
            .discharged
            .len();
        let full = Xbmc::new(&p).check_all();
        let screened = screened_check(&p, CheckOptions::default());
        assert_eq!(
            screened.counterexamples, full.counterexamples,
            "seed {seed}: {src}"
        );
        assert_eq!(
            screened.checked_assertions, full.checked_assertions,
            "seed {seed}: {src}"
        );
        let chans = channels(&p);
        assert_eq!(
            fixes::minimal_fixing_set_with(&screened.counterexamples, &chans, false),
            fixes::minimal_fixing_set_with(&full.counterexamples, &chans, false),
            "seed {seed}: fix plans must agree: {src}"
        );
    }
    assert!(total_asserts > 0, "corpus generated no assertions");
    assert!(
        total_discharged > 0,
        "screening discharged nothing across {total_asserts} assertions"
    );
}

// ---------------------------------------------------------------------
// SQL-structured and store-chained programs (the second-order store
// model): screening must stay observationally invisible when assertions
// carry `SqlStructure` kinds and when counterexample traces pass
// through synthetic store cells, and fix plans must be stable and
// rooted at real program variables — never at a store cell.
// ---------------------------------------------------------------------

/// A program mixing structured-SQL shapes: tainted concat writes,
/// parameterized calls (clean by construction), fetch-read chains
/// through store cells, sanitized echoes, opaque concat sinks, and
/// branch-dependent writes.
fn sql_store_php(ops: &[u8]) -> String {
    let mut src = String::from("<?php ");
    for (i, op) in ops.iter().enumerate() {
        let t = i % 3;
        match op % 6 {
            0 => src.push_str(&format!(
                "$w{i} = $_POST['w{i}']; \
                 mysql_query(\"INSERT INTO t{t} (c) VALUES ('$w{i}')\"); "
            )),
            1 => src.push_str(&format!(
                "$b{i} = $_GET['b{i}']; \
                 execute_query(\"UPDATE t{t} SET c = ? WHERE id = {i}\", $b{i}); "
            )),
            2 => src.push_str(&format!(
                "$h{i} = mysql_query('SELECT c FROM t{t}'); \
                 $r{i} = mysql_fetch_array($h{i}); echo $r{i}; "
            )),
            3 => src.push_str(&format!(
                "$e{i} = htmlspecialchars($_GET['e{i}']); echo $e{i}; "
            )),
            4 => src.push_str(&format!(
                "$q{i} = 'DELETE FROM log WHERE tag=' . $_COOKIE['c{i}']; DoSQL($q{i}); "
            )),
            _ => src.push_str(&format!(
                "if ($g{i}) {{ $m{i} = $_GET['m{i}']; }} else {{ $m{i} = 'lit'; }} \
                 mysql_query(\"INSERT INTO t{t} (x) VALUES ('$m{i}')\"); "
            )),
        }
    }
    src
}

/// One writer/reader pair over the same table, lowered the way the core
/// verifier's two-pass flow does it: pass 1 summarizes the writer's
/// store writes (filtered with an *empty* summary), pass 2 lowers the
/// reader against that summary. Returns the reader's `AiProgram`.
fn reader_with_store_summary(writer: &str, reader: &str) -> AiProgram {
    use webssari_ir::{filter_program_with_stores, StoreSummary};
    let prelude = Prelude::standard();
    let options = FilterOptions::default();
    let lattice = TwoPoint::new();

    let mut summary = StoreSummary::new();
    let ast = parse_source(writer).expect("writer parses");
    let f = filter_program(&ast, writer, "writer.php", &prelude, &options);
    let ai = abstract_interpret(&f);
    let state = typestate::final_state(&ai, &lattice);
    for w in &f.store_writes {
        summary.record(&w.key, state[w.var.index()], &w.site.to_string(), &lattice);
    }

    let ast = parse_source(reader).expect("reader parses");
    let f = filter_program_with_stores(
        &ast,
        reader,
        "reader.php",
        &prelude,
        &options,
        &summary,
        &lattice,
    );
    abstract_interpret(&f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// SQL-structured programs through the real front end: identical
    /// counterexamples, counts, and fix plans with screening on or off,
    /// and the plan never roots at a synthetic store cell.
    #[test]
    fn sql_structured_screening_is_invisible(ops in prop::collection::vec(0u8..6, 1..8)) {
        let p = ai_of(&sql_store_php(&ops));
        let full = Xbmc::new(&p).check_all();
        let screened = screened_check(&p, CheckOptions::default());
        prop_assert_eq!(&screened.counterexamples, &full.counterexamples);
        prop_assert_eq!(screened.checked_assertions, full.checked_assertions);
        prop_assert_eq!(screened.violated_assertions, full.violated_assertions);
        let chans = channels(&p);
        let plan_full = fixes::minimal_fixing_set_with(&full.counterexamples, &chans, false);
        let plan_screened =
            fixes::minimal_fixing_set_with(&screened.counterexamples, &chans, false);
        prop_assert_eq!(&plan_screened, &plan_full);
        for v in &plan_full.fix_vars {
            prop_assert!(
                !webssari_ir::is_store_cell(p.vars.name(*v)),
                "fix plan rooted at synthetic store cell {}",
                p.vars.name(*v)
            );
        }
    }

    /// Store-chained two-file programs: the reader violates exactly when
    /// the writer concatenated taint into the shared table (a tainted
    /// parameterized write or a literal write keeps the reader clean),
    /// the report is bit-identical with and without screening, and the
    /// fix plan is stable across repeated runs.
    #[test]
    fn store_chained_reports_are_bit_identical(write_op in 0u8..3, sanitized in any::<bool>()) {
        let writer = match write_op {
            0 => "<?php $v = $_POST['v']; \
                  mysql_query(\"INSERT INTO msgs (c) VALUES ('$v')\");",
            1 => "<?php $v = 'clean'; \
                  mysql_query(\"INSERT INTO msgs (c) VALUES ('$v')\");",
            _ => "<?php $v = $_GET['v']; \
                  execute_query(\"INSERT INTO msgs (c) VALUES (?)\", $v);",
        };
        let reader = if sanitized {
            "<?php $h = mysql_query('SELECT c FROM msgs'); \
             $r = mysql_fetch_array($h); echo htmlspecialchars($r);"
        } else {
            "<?php $h = mysql_query('SELECT c FROM msgs'); \
             $r = mysql_fetch_array($h); echo $r;"
        };
        let p = reader_with_store_summary(writer, reader);
        let full = Xbmc::new(&p).check_all();
        let screened = screened_check(&p, CheckOptions::default());
        prop_assert_eq!(&screened.counterexamples, &full.counterexamples);
        prop_assert_eq!(screened.checked_assertions, full.checked_assertions);
        // Second-order semantics: only the tainted *concatenating*
        // write makes the unsanitized read vulnerable.
        let expect_violation = write_op == 0 && !sanitized;
        prop_assert_eq!(
            !full.counterexamples.is_empty(),
            expect_violation,
            "writer {:?} sanitized {:?}",
            write_op,
            sanitized
        );
        let chans = channels(&p);
        let plan_a = fixes::minimal_fixing_set_with(&full.counterexamples, &chans, false);
        let plan_b = fixes::minimal_fixing_set_with(&screened.counterexamples, &chans, false);
        prop_assert_eq!(&plan_a, &plan_b);
        for v in &plan_a.fix_vars {
            prop_assert!(!webssari_ir::is_store_cell(p.vars.name(*v)));
        }
    }
}

/// The SQL/store generator is not vacuous: across its op space it emits
/// SQL-structured assertions and synthetic store cells (otherwise the
/// two proptests above prove nothing about the new kinds).
#[test]
fn sql_store_generator_covers_the_new_shapes() {
    let mut sql_asserts = 0usize;
    let mut store_cells = 0usize;
    for ops in [[0u8, 1, 2, 3, 4, 5], [2, 2, 0, 5, 1, 3]] {
        let p = ai_of(&sql_store_php(&ops));
        sql_asserts += p
            .assertions()
            .iter()
            .filter(|(cmd, _)| matches!(cmd, AiCmd::Assert { kind, .. } if kind.is_sql_structure()))
            .count();
        store_cells += p
            .vars
            .iter()
            .filter(|v| webssari_ir::is_store_cell(p.vars.name(*v)))
            .count();
    }
    assert!(sql_asserts > 0, "no SqlStructure assertions generated");
    assert!(store_cells > 0, "no store cells generated");
}

/// PHP-derived programs through the real front end: the checker on the
/// arena solver and the reference-solver enumeration must agree on
/// every seed, in both checker modes and with certification on.
#[test]
fn php_derived_programs_match_reference() {
    for seed in 1..=40u64 {
        let src = random_php(seed.wrapping_mul(0x9E3779B97F4A7C15));
        let p = ai_of(&src);
        if p.num_assertions() == 0 {
            continue;
        }
        let expected = enumerate_with_reference_solver(&p);
        let incremental = Xbmc::new(&p).check_all();
        assert_eq!(key(&incremental), expected, "seed {seed}: {src}");
        let fresh = Xbmc::with_options(
            &p,
            CheckOptions {
                fresh_solver_per_assert: true,
                certify: true,
                ..CheckOptions::default()
            },
        )
        .check_all();
        assert_eq!(key(&fresh), expected, "seed {seed} (fresh): {src}");
        assert_eq!(
            fresh.verify_certificates().unwrap(),
            fresh.certificates.len(),
            "seed {seed}: certificates must check"
        );
    }
}
