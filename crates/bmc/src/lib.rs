//! xBMC: the SAT-based bounded model checker for WebSSARI abstract
//! interpretations (paper §3.3).
//!
//! Because the abstract interpretation is loop-free, its flow chart is a
//! DAG with a fixed program diameter, so bounded model checking is both
//! *sound* and *complete* here — the two properties the paper leans on.
//! Two encodings are provided:
//!
//! * [`renaming`] — **xBMC 1.0**: Clarke-style variable renaming (an SSA
//!   form without φ-conditions) where each assignment constrains only
//!   the new and previous incarnation of one variable (2 type vectors
//!   per assignment, §3.3.2, Figure 5). This is the production encoder.
//! * [`aux_encoding`] — **xBMC 0.1**: the naive control-flow-graph
//!   encoding with an auxiliary location variable, which copies the
//!   entire state (`2·|X|` type vectors) at every step (§3.3.1). Kept as
//!   an ablation; the paper reports it caused "frequent system
//!   breakdowns", and the benchmark suite reproduces the blowup.
//!
//! Assertions are checked **one at a time**: for each assertion a
//! formula `Bᵢ = C(c, g) ∧ ¬assertᵢ` is built and handed to the SAT
//! solver; every satisfying assignment is a counterexample, and the
//! formula is iteratively restricted by negating each counterexample's
//! nondeterministic-branch values (`BN`) until it becomes unsatisfiable
//! — yielding *all* counterexample traces (§3.3.2).
//!
//! # Examples
//!
//! ```
//! use php_front::parse_source;
//! use webssari_ir::{abstract_interpret, filter_program, FilterOptions, Prelude};
//! use xbmc::Xbmc;
//!
//! let src = "<?php $x = 'ok'; if ($c) { $x = $_GET['q']; } echo $x;";
//! let ast = parse_source(src).unwrap();
//! let f = filter_program(&ast, src, "a.php", &Prelude::standard(), &FilterOptions::default());
//! let ai = abstract_interpret(&f);
//! let result = Xbmc::new(&ai).check_all();
//! assert_eq!(result.counterexamples.len(), 1); // only the tainting path
//! assert_eq!(result.counterexamples[0].branches, vec![true]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aux_encoding;
mod checker;
pub mod renaming;
mod trace;
mod typevec;

pub use checker::{Certificate, CheckOptions, CheckResult, EncoderKind, Xbmc, XbmcStats};
pub use trace::{path_violating_vars, replay_trace, Counterexample, TraceStep};
pub use typevec::TypeVec;
