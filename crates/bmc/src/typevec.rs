//! Bit-vector encoding of lattice elements in CNF.
//!
//! A safety type `t ∈ T` is encoded as `⌈log₂|T|⌉` CNF literals, LSB
//! first. For the two-point taint lattice that is a single "tainted"
//! bit, and joins are plain ORs; for larger lattices the join circuit is
//! generated from the lattice's join table.

use cnf::{FormulaBuilder, Lit};
use taint_lattice::{Elem, Lattice};

/// A lattice element encoded as CNF literals (LSB first).
///
/// # Examples
///
/// ```
/// use cnf::FormulaBuilder;
/// use taint_lattice::{Lattice, TwoPoint};
/// use xbmc::TypeVec;
///
/// let l = TwoPoint::new();
/// let mut b = FormulaBuilder::new();
/// let tainted = TypeVec::constant(&mut b, &l, TwoPoint::TAINTED);
/// let clean = TypeVec::constant(&mut b, &l, TwoPoint::UNTAINTED);
/// let joined = tainted.join(&mut b, &l, &clean);
/// assert_eq!(joined.bits().len(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeVec {
    bits: Vec<Lit>,
}

impl TypeVec {
    /// A fresh unconstrained type vector.
    pub fn fresh(builder: &mut FormulaBuilder, lattice: &impl Lattice) -> Self {
        let bits = (0..lattice.bits()).map(|_| builder.fresh_lit()).collect();
        TypeVec { bits }
    }

    /// The constant vector for a lattice element.
    pub fn constant(builder: &mut FormulaBuilder, lattice: &impl Lattice, e: Elem) -> Self {
        let t = builder.lit_true();
        let f = !t;
        let bits = (0..lattice.bits())
            .map(|i| if e.index() >> i & 1 == 1 { t } else { f })
            .collect();
        TypeVec { bits }
    }

    /// The underlying literals, LSB first.
    pub fn bits(&self) -> &[Lit] {
        &self.bits
    }

    /// A literal true iff this vector equals element `e`.
    pub fn equals_elem(&self, builder: &mut FormulaBuilder, e: Elem) -> Lit {
        builder.equals_const(&self.bits, e.index())
    }

    /// A literal true iff `self < bound` in the lattice (the assertion
    /// predicate `t_x < τ_r`).
    pub fn lt_bound(
        &self,
        builder: &mut FormulaBuilder,
        lattice: &impl Lattice,
        bound: Elem,
    ) -> Lit {
        let sats: Vec<Lit> = lattice
            .elems()
            .into_iter()
            .filter(|&e| lattice.lt(e, bound))
            .map(|e| self.equals_elem(builder, e))
            .collect();
        builder.or_all(sats)
    }

    /// A literal true iff `self ≤ bound` in the lattice — the non-strict
    /// precondition used by multi-class policies ("carries no forbidden
    /// taint kind" = `t ≤ allowed-set`).
    pub fn le_bound(
        &self,
        builder: &mut FormulaBuilder,
        lattice: &impl Lattice,
        bound: Elem,
    ) -> Lit {
        let sats: Vec<Lit> = lattice
            .elems()
            .into_iter()
            .filter(|&e| lattice.leq(e, bound))
            .map(|e| self.equals_elem(builder, e))
            .collect();
        builder.or_all(sats)
    }

    /// A vector equivalent to `self ⊓ other` (used by kind-specific
    /// sanitizers, which *remove* taint kinds by meeting with the kept
    /// set).
    pub fn meet(
        &self,
        builder: &mut FormulaBuilder,
        lattice: &impl Lattice,
        other: &TypeVec,
    ) -> TypeVec {
        if lattice.bits() == 1 && lattice.len() == 2 {
            // Two-point fast path: meet is AND.
            let bit = builder.and(self.bits[0], other.bits[0]);
            return TypeVec { bits: vec![bit] };
        }
        let out = TypeVec::fresh(builder, lattice);
        for ea in lattice.elems() {
            for eb in lattice.elems() {
                let ja = self.equals_elem(builder, ea);
                let jb = other.equals_elem(builder, eb);
                let guard = builder.and(ja, jb);
                let result = lattice.meet(ea, eb);
                for (i, &bit) in out.bits.iter().enumerate() {
                    let want = result.index() >> i & 1 == 1;
                    let lit = if want { bit } else { !bit };
                    builder.add_clause([!guard, lit]);
                }
            }
        }
        out
    }

    /// A vector equivalent to `self ⊔ other`.
    pub fn join(
        &self,
        builder: &mut FormulaBuilder,
        lattice: &impl Lattice,
        other: &TypeVec,
    ) -> TypeVec {
        if lattice.bits() == 1 && lattice.len() == 2 {
            // Two-point fast path: join is OR.
            let bit = builder.or(self.bits[0], other.bits[0]);
            return TypeVec { bits: vec![bit] };
        }
        // General case: table-driven. out = join(a, b) via
        // (a = ea ∧ b = eb) → out = join(ea, eb).
        let out = TypeVec::fresh(builder, lattice);
        for ea in lattice.elems() {
            for eb in lattice.elems() {
                let ja = self.equals_elem(builder, ea);
                let jb = other.equals_elem(builder, eb);
                let guard = builder.and(ja, jb);
                let result = lattice.join(ea, eb);
                for (i, &bit) in out.bits.iter().enumerate() {
                    let want = result.index() >> i & 1 == 1;
                    let lit = if want { bit } else { !bit };
                    builder.add_clause([!guard, lit]);
                }
            }
        }
        out
    }

    /// A vector equivalent to the join of a constant base and the given
    /// vectors (the right-hand side `base ⊔ ⊔ t_d` of an AI assignment).
    pub fn join_all(
        builder: &mut FormulaBuilder,
        lattice: &impl Lattice,
        base: Elem,
        operands: &[TypeVec],
    ) -> TypeVec {
        let mut acc = TypeVec::constant(builder, lattice, base);
        for op in operands {
            acc = acc.join(builder, lattice, op);
        }
        acc
    }

    /// Constrains `self = cond ? a : b` (the guarded-assignment
    /// multiplexer of Figure 5).
    pub fn define_ite(
        builder: &mut FormulaBuilder,
        cond: Lit,
        a: &TypeVec,
        b: &TypeVec,
    ) -> TypeVec {
        assert_eq!(
            a.bits.len(),
            b.bits.len(),
            "type vectors must have equal width"
        );
        let bits = a
            .bits
            .iter()
            .zip(&b.bits)
            .map(|(&ta, &tb)| builder.ite(cond, ta, tb))
            .collect();
        TypeVec { bits }
    }

    /// Decodes the element this vector takes in a model.
    pub fn decode(&self, model: &sat::Model) -> Elem {
        let mut idx = 0usize;
        for (i, &bit) in self.bits.iter().enumerate() {
            if model.lit_value(bit) {
                idx |= 1 << i;
            }
        }
        Elem::new(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::{SatResult, Solver};
    use taint_lattice::{Chain, Powerset, TwoPoint};

    /// Exhaustively checks the join circuit against the lattice's join
    /// for every pair of elements.
    fn check_join_circuit(lattice: &impl Lattice) {
        for a in lattice.elems() {
            for b in lattice.elems() {
                let mut builder = FormulaBuilder::new();
                let va = TypeVec::constant(&mut builder, lattice, a);
                let vb = TypeVec::constant(&mut builder, lattice, b);
                let j = va.join(&mut builder, lattice, &vb);
                let expected = lattice.join(a, b);
                let is_expected = j.equals_elem(&mut builder, expected);
                builder.assert_lit(is_expected);
                let f = builder.into_formula();
                let mut s = Solver::from_formula(&f);
                assert!(
                    s.solve().is_sat(),
                    "join({a:?},{b:?}) should be {expected:?}"
                );
                // And the negation must be unsat: the circuit is a function.
                let mut builder = FormulaBuilder::new();
                let va = TypeVec::constant(&mut builder, lattice, a);
                let vb = TypeVec::constant(&mut builder, lattice, b);
                let j = va.join(&mut builder, lattice, &vb);
                let is_expected = j.equals_elem(&mut builder, expected);
                builder.assert_lit(!is_expected);
                let f = builder.into_formula();
                let mut s = Solver::from_formula(&f);
                assert!(
                    s.solve().is_unsat(),
                    "join({a:?},{b:?}) must be uniquely {expected:?}"
                );
            }
        }
    }

    #[test]
    fn two_point_join_circuit() {
        check_join_circuit(&TwoPoint::new());
    }

    #[test]
    fn chain_join_circuit() {
        check_join_circuit(&Chain::new(3));
        check_join_circuit(&Chain::new(4));
    }

    #[test]
    fn powerset_join_circuit() {
        check_join_circuit(&Powerset::new(vec!["xss".into(), "sqli".into()]));
    }

    #[test]
    fn lt_bound_predicate() {
        let l = Chain::new(3);
        for e in l.elems() {
            for bound in l.elems() {
                let mut builder = FormulaBuilder::new();
                let v = TypeVec::constant(&mut builder, &l, e);
                let p = v.lt_bound(&mut builder, &l, bound);
                builder.assert_lit(p);
                let f = builder.into_formula();
                let mut s = Solver::from_formula(&f);
                assert_eq!(
                    s.solve().is_sat(),
                    l.lt(e, bound),
                    "lt_bound({e:?},{bound:?})"
                );
            }
        }
    }

    #[test]
    fn ite_selects_by_condition() {
        let l = TwoPoint::new();
        let mut builder = FormulaBuilder::new();
        let cond = builder.fresh_lit();
        let a = TypeVec::constant(&mut builder, &l, TwoPoint::TAINTED);
        let b = TypeVec::constant(&mut builder, &l, TwoPoint::UNTAINTED);
        let out = TypeVec::define_ite(&mut builder, cond, &a, &b);
        builder.assert_lit(cond);
        let is_tainted = out.equals_elem(&mut builder, TwoPoint::TAINTED);
        builder.assert_lit(is_tainted);
        let f = builder.into_formula();
        assert!(Solver::from_formula(&f).solve().is_sat());
    }

    #[test]
    fn decode_reads_model() {
        let l = Chain::new(4);
        let mut builder = FormulaBuilder::new();
        let v = TypeVec::fresh(&mut builder, &l);
        let target = Elem::new(2);
        let eq = v.equals_elem(&mut builder, target);
        builder.assert_lit(eq);
        let f = builder.into_formula();
        match Solver::from_formula(&f).solve() {
            SatResult::Sat(m) => assert_eq!(v.decode(&m), target),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    fn check_meet_circuit(lattice: &impl Lattice) {
        for a in lattice.elems() {
            for b in lattice.elems() {
                let mut builder = FormulaBuilder::new();
                let va = TypeVec::constant(&mut builder, lattice, a);
                let vb = TypeVec::constant(&mut builder, lattice, b);
                let m = va.meet(&mut builder, lattice, &vb);
                let expected = lattice.meet(a, b);
                let is_expected = m.equals_elem(&mut builder, expected);
                builder.assert_lit(!is_expected);
                let f = builder.into_formula();
                assert!(
                    Solver::from_formula(&f).solve().is_unsat(),
                    "meet({a:?},{b:?}) must be uniquely {expected:?}"
                );
            }
        }
    }

    #[test]
    fn meet_circuits_match_lattice_meet() {
        check_meet_circuit(&TwoPoint::new());
        check_meet_circuit(&Chain::new(4));
        check_meet_circuit(&Powerset::new(vec!["xss".into(), "sqli".into()]));
    }

    #[test]
    fn le_bound_predicate() {
        let l = Powerset::new(vec!["xss".into(), "sqli".into()]);
        for e in l.elems() {
            for bound in l.elems() {
                let mut builder = FormulaBuilder::new();
                let v = TypeVec::constant(&mut builder, &l, e);
                let p = v.le_bound(&mut builder, &l, bound);
                builder.assert_lit(p);
                let f = builder.into_formula();
                assert_eq!(
                    Solver::from_formula(&f).solve().is_sat(),
                    l.leq(e, bound),
                    "le_bound({e:?},{bound:?})"
                );
            }
        }
    }

    #[test]
    fn join_all_folds() {
        let l = TwoPoint::new();
        let mut builder = FormulaBuilder::new();
        let clean = TypeVec::constant(&mut builder, &l, TwoPoint::UNTAINTED);
        let dirty = TypeVec::constant(&mut builder, &l, TwoPoint::TAINTED);
        let j = TypeVec::join_all(&mut builder, &l, TwoPoint::UNTAINTED, &[clean, dirty]);
        let is_tainted = j.equals_elem(&mut builder, TwoPoint::TAINTED);
        builder.assert_lit(is_tainted);
        let f = builder.into_formula();
        assert!(Solver::from_formula(&f).solve().is_sat());
    }
}
