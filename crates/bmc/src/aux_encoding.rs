//! xBMC 0.1: the auxiliary-location-variable encoding (§3.3.1).
//!
//! "A naïve but conceptually straightforward solution was to add an
//! auxiliary variable l to record program lines. […] initial experiments
//! revealed frequent system breakdowns, primarily due to inefficiently
//! encoding each assignment using 2·|X| variables."
//!
//! The abstract interpretation is flattened into a control-flow graph
//! whose nodes are single commands; the state is the location register
//! plus *every* variable's type vector, and the transition relation is
//! unrolled for `k` steps (the program diameter). Every step allocates a
//! fresh copy of the whole state and frames the unassigned variables —
//! exactly the `2·|X|`-per-assignment cost the paper abandoned. Kept as
//! a faithful ablation for the encoding-blowup experiment (E7).

use cnf::{CnfFormula, FormulaBuilder, Lit};
use taint_lattice::Lattice;
use webssari_ir::{AiCmd, AiProgram, AssertId, BranchId, Site, VarId};

use crate::typevec::TypeVec;

struct AssertMeta {
    id: AssertId,
    func: String,
    site: Site,
    vars: Vec<VarId>,
    bound: taint_lattice::Elem,
    strict: bool,
}

#[derive(Clone, Debug)]
enum Node {
    Assign {
        var: VarId,
        base: taint_lattice::Elem,
        deps: Vec<VarId>,
        mask: Option<taint_lattice::Elem>,
        succ: usize,
    },
    Assert {
        index: usize,
        succ: usize,
    },
    Branch {
        branch: BranchId,
        then_succ: usize,
        else_succ: usize,
    },
    Halt,
}

/// An encoded assertion in the auxiliary-variable encoding.
#[derive(Clone, Debug)]
pub struct AuxAssert {
    /// Assertion id.
    pub id: AssertId,
    /// SOC function name.
    pub func: String,
    /// SOC call site.
    pub site: Site,
    /// True iff the assertion is violated at some step.
    pub violated: Lit,
    /// Per checked variable: true iff it violates the bound at the step
    /// where the assertion executes.
    pub var_violations: Vec<(VarId, Lit)>,
}

/// The unrolled CFG encoding.
#[derive(Debug)]
pub struct AuxEncoding {
    /// The transition-relation constraints, unrolled `num_steps` times.
    pub formula: CnfFormula,
    /// Encoded assertions in program order.
    pub asserts: Vec<AuxAssert>,
    /// Number of unrolled steps `k` (the program diameter).
    pub num_steps: usize,
    /// Number of CFG nodes.
    pub num_nodes: usize,
    /// Bits in the location register.
    pub loc_bits: usize,
    nodes: Vec<Node>,
    /// `locs[i]` is the location register at step `i` (length
    /// `num_steps + 1`).
    locs: Vec<Vec<Lit>>,
    num_branches: usize,
    entry: usize,
}

impl AuxEncoding {
    /// Decodes the branch decisions taken on a model's path.
    ///
    /// Branch nodes not visited on the path decode to `false`.
    pub fn decode_branches(&self, model: &sat::Model) -> Vec<bool> {
        let mut branches = vec![false; self.num_branches];
        let mut loc = self.entry;
        for step in 0..self.num_steps {
            let next = self.decode_loc(model, step + 1);
            if let Node::Branch {
                branch, then_succ, ..
            } = &self.nodes[loc]
            {
                branches[branch.0 as usize] = next == *then_succ;
            }
            loc = next;
        }
        branches
    }

    fn decode_loc(&self, model: &sat::Model, step: usize) -> usize {
        let mut v = 0usize;
        for (i, &bit) in self.locs[step].iter().enumerate() {
            if model.lit_value(bit) {
                v |= 1 << i;
            }
        }
        v
    }
}

/// Flattens and encodes an AI program with the auxiliary-variable
/// scheme.
pub fn encode(ai: &AiProgram, lattice: &impl Lattice) -> AuxEncoding {
    // ---- flatten to a CFG --------------------------------------------
    let mut nodes = vec![Node::Halt];
    let mut assert_meta: Vec<AssertMeta> = Vec::new();
    let entry = build(&ai.cmds, 0, &mut nodes, &mut assert_meta);
    let num_nodes = nodes.len();
    let loc_bits = (usize::BITS - (num_nodes.max(2) - 1).leading_zeros()) as usize;
    let num_steps = ai.diameter();

    // ---- unroll -------------------------------------------------------
    let mut b = FormulaBuilder::new();
    let bottom = lattice.bottom();
    let num_vars = ai.vars.len();

    let fresh_loc =
        |b: &mut FormulaBuilder| -> Vec<Lit> { (0..loc_bits).map(|_| b.fresh_lit()).collect() };
    let mut locs: Vec<Vec<Lit>> = Vec::with_capacity(num_steps + 1);
    let loc0 = fresh_loc(&mut b);
    b.assert_const(&loc0, entry);
    locs.push(loc0);

    let mut types: Vec<TypeVec> = (0..num_vars)
        .map(|_| TypeVec::constant(&mut b, lattice, bottom))
        .collect();

    // Per assertion: violation literals accumulated over steps.
    let mut assert_viols: Vec<Vec<Lit>> = vec![Vec::new(); assert_meta.len()];
    let mut assert_var_viols: Vec<Vec<(VarId, Vec<Lit>)>> = assert_meta
        .iter()
        .map(|m| m.vars.iter().map(|v| (*v, Vec::new())).collect())
        .collect();

    for _step in 0..num_steps {
        let next_loc = fresh_loc(&mut b);
        // Fresh copy of the whole state: the 2·|X| cost.
        let next_types: Vec<TypeVec> = (0..num_vars)
            .map(|_| TypeVec::fresh(&mut b, lattice))
            .collect();
        let mut validity = Vec::with_capacity(num_nodes);
        for (n, node) in nodes.iter().enumerate() {
            let cur_loc = locs.last().expect("at least step 0").clone();
            let at_n = b.equals_const(&cur_loc, n);
            validity.push(at_n);
            match node {
                Node::Assign {
                    var,
                    base,
                    deps,
                    mask,
                    succ,
                } => {
                    let operands: Vec<TypeVec> =
                        deps.iter().map(|d| types[d.index()].clone()).collect();
                    let mut rhs = TypeVec::join_all(&mut b, lattice, *base, &operands);
                    if let Some(m) = mask {
                        let keep = TypeVec::constant(&mut b, lattice, *m);
                        rhs = rhs.meet(&mut b, lattice, &keep);
                    }
                    guarded_loc(&mut b, at_n, &next_loc, *succ);
                    b.guarded_equal(at_n, next_types[var.index()].bits(), rhs.bits());
                    for v in 0..num_vars {
                        if v != var.index() {
                            b.guarded_equal(at_n, next_types[v].bits(), types[v].bits());
                        }
                    }
                }
                Node::Assert { index, succ } => {
                    let meta = &assert_meta[*index];
                    guarded_loc(&mut b, at_n, &next_loc, *succ);
                    for v in 0..num_vars {
                        b.guarded_equal(at_n, next_types[v].bits(), types[v].bits());
                    }
                    let mut any = Vec::new();
                    for (slot, v) in meta.vars.iter().enumerate() {
                        let ok = if meta.strict {
                            types[v.index()].lt_bound(&mut b, lattice, meta.bound)
                        } else {
                            types[v.index()].le_bound(&mut b, lattice, meta.bound)
                        };
                        let viol = b.and(at_n, !ok);
                        any.push(viol);
                        assert_var_viols[*index][slot].1.push(viol);
                    }
                    let viol_here = b.or_all(any);
                    assert_viols[*index].push(viol_here);
                }
                Node::Branch {
                    then_succ,
                    else_succ,
                    ..
                } => {
                    let then_eq = b.equals_const(&next_loc, *then_succ);
                    let else_eq = b.equals_const(&next_loc, *else_succ);
                    let either = b.or(then_eq, else_eq);
                    b.add_clause([!at_n, either]);
                    for v in 0..num_vars {
                        b.guarded_equal(at_n, next_types[v].bits(), types[v].bits());
                    }
                }
                Node::Halt => {
                    guarded_loc(&mut b, at_n, &next_loc, n);
                    for v in 0..num_vars {
                        b.guarded_equal(at_n, next_types[v].bits(), types[v].bits());
                    }
                }
            }
        }
        // The location register always holds a real node.
        b.add_clause(validity);
        locs.push(next_loc);
        types = next_types;
    }

    let mut asserts: Vec<AuxAssert> = assert_meta
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let violated = b.or_all(assert_viols[i].clone());
            let var_violations = assert_var_viols[i]
                .iter()
                .map(|(v, lits)| (*v, b.or_all(lits.clone())))
                .collect();
            AuxAssert {
                id: m.id,
                func: m.func.clone(),
                site: m.site.clone(),
                violated,
                var_violations,
            }
        })
        .collect();
    // `build` walks commands in reverse, so restore program order.
    asserts.sort_by_key(|a| a.id);

    AuxEncoding {
        formula: b.into_formula(),
        asserts,
        num_steps,
        num_nodes,
        loc_bits,
        nodes,
        locs,
        num_branches: ai.num_branches,
        entry,
    }
}

fn guarded_loc(b: &mut FormulaBuilder, guard: Lit, loc: &[Lit], value: usize) {
    for (i, &bit) in loc.iter().enumerate() {
        let lit = if value >> i & 1 == 1 { bit } else { !bit };
        b.add_clause([!guard, lit]);
    }
}

fn build(
    cmds: &[AiCmd],
    cont: usize,
    nodes: &mut Vec<Node>,
    assert_meta: &mut Vec<AssertMeta>,
) -> usize {
    let mut next = cont;
    for c in cmds.iter().rev() {
        match c {
            AiCmd::Assign {
                var,
                base,
                deps,
                mask,
                ..
            } => {
                nodes.push(Node::Assign {
                    var: *var,
                    base: *base,
                    deps: deps.clone(),
                    mask: *mask,
                    succ: next,
                });
                next = nodes.len() - 1;
            }
            AiCmd::Assert {
                id,
                vars,
                bound,
                strict,
                func,
                site,
                ..
            } => {
                assert_meta.push(AssertMeta {
                    id: *id,
                    func: func.clone(),
                    site: site.clone(),
                    vars: vars.clone(),
                    bound: *bound,
                    strict: *strict,
                });
                nodes.push(Node::Assert {
                    index: assert_meta.len() - 1,
                    succ: next,
                });
                next = nodes.len() - 1;
            }
            AiCmd::If {
                branch,
                then_cmds,
                else_cmds,
                ..
            } => {
                let t = build(then_cmds, next, nodes, assert_meta);
                let e = build(else_cmds, next, nodes, assert_meta);
                nodes.push(Node::Branch {
                    branch: *branch,
                    then_succ: t,
                    else_succ: e,
                });
                next = nodes.len() - 1;
            }
            // Figure 5: stop contributes `true`.
            AiCmd::Stop { .. } => {}
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_front::parse_source;
    use sat::{SatResult, Solver};
    use taint_lattice::TwoPoint;
    use webssari_ir::{abstract_interpret, filter_program, FilterOptions, Prelude};

    fn ai_of(src: &str) -> AiProgram {
        let ast = parse_source(src).expect("parse");
        let f = filter_program(
            &ast,
            src,
            "t.php",
            &Prelude::standard(),
            &FilterOptions::default(),
        );
        abstract_interpret(&f)
    }

    #[test]
    fn straight_line_violation_found() {
        let ai = ai_of("<?php $x = $_GET['a']; echo $x;");
        let enc = encode(&ai, &TwoPoint::new());
        assert_eq!(enc.asserts.len(), 1);
        let mut s = Solver::from_formula(&enc.formula);
        assert!(s
            .solve_with_assumptions(&[enc.asserts[0].violated])
            .is_sat());
    }

    #[test]
    fn sanitized_program_is_safe() {
        let ai = ai_of("<?php $x = htmlspecialchars($_GET['a']); echo $x;");
        let enc = encode(&ai, &TwoPoint::new());
        let mut s = Solver::from_formula(&enc.formula);
        assert!(s
            .solve_with_assumptions(&[enc.asserts[0].violated])
            .is_unsat());
    }

    #[test]
    fn branch_decisions_decode_from_path() {
        let ai = ai_of("<?php $x = 'ok'; if ($c) { $x = $_GET['a']; } echo $x;");
        let enc = encode(&ai, &TwoPoint::new());
        let mut s = Solver::from_formula(&enc.formula);
        match s.solve_with_assumptions(&[enc.asserts[0].violated]) {
            SatResult::Sat(m) => {
                let branches = enc.decode_branches(&m);
                assert_eq!(branches, vec![true]);
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn agrees_with_renaming_on_violated_set() {
        let srcs = [
            "<?php $x = $_GET['a']; echo $x;",
            "<?php $x = 'ok'; echo $x;",
            "<?php if ($c) { $x = $_GET['a']; } else { $x = 'ok'; } echo $x; mysql_query($x);",
            "<?php $a = $_GET['q']; $b = htmlspecialchars($a); echo $b; echo $a;",
            "<?php while ($c) { $x = $_GET['p']; } echo $x;",
        ];
        let l = TwoPoint::new();
        for src in srcs {
            let ai = ai_of(src);
            let aux = encode(&ai, &l);
            let ren = crate::renaming::encode(&ai, &l);
            assert_eq!(aux.asserts.len(), ren.asserts.len(), "{src}");
            for (a, r) in aux.asserts.iter().zip(&ren.asserts) {
                let mut sa = Solver::from_formula(&aux.formula);
                let mut sr = Solver::from_formula(&ren.formula);
                let va = sa.solve_with_assumptions(&[a.violated]).is_sat();
                let vr = sr.solve_with_assumptions(&[r.violated]).is_sat();
                assert_eq!(va, vr, "encodings disagree on {src}");
            }
        }
    }

    #[test]
    fn formula_is_larger_than_renaming() {
        // The whole point of §3.3.2: the aux encoding blows up.
        let src = "<?php $a = $_GET['q']; $b = $a; $c = $b; $d = $c; $e = $d; echo $e;";
        let ai = ai_of(src);
        let l = TwoPoint::new();
        let aux = encode(&ai, &l);
        let ren = crate::renaming::encode(&ai, &l);
        assert!(
            aux.formula.num_clauses() > 2 * ren.formula.num_clauses(),
            "aux {} vs renaming {}",
            aux.formula.num_clauses(),
            ren.formula.num_clauses()
        );
    }

    #[test]
    fn steps_equal_diameter() {
        let ai = ai_of("<?php $a = 1; $b = 2; echo $q;");
        let enc = encode(&ai, &TwoPoint::new());
        assert_eq!(enc.num_steps, ai.diameter());
        assert!(enc.num_nodes >= 3);
        assert!(enc.loc_bits >= 2);
    }
}
