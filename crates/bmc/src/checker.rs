use std::collections::HashSet;
use std::sync::Arc;

use sat::{ProofStep, SatResult, Solver};
use taint_lattice::{Lattice, TwoPoint};
use webssari_ir::AiProgram;

use crate::aux_encoding;
use crate::renaming;
use crate::trace::{path_violating_vars, replay_trace, Counterexample};

/// Which encoding the checker uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EncoderKind {
    /// xBMC 1.0 — variable renaming (§3.3.2). The default.
    #[default]
    Renaming,
    /// xBMC 0.1 — auxiliary location variable (§3.3.1). Ablation only:
    /// it reports one counterexample per violated assertion instead of
    /// enumerating all of them.
    AuxVariable,
}

/// Options for [`Xbmc`].
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Encoding to use.
    pub encoder: EncoderKind,
    /// Build a fresh solver per assertion (the paper's formulation of
    /// `Bᵢ`) instead of reusing one incremental solver. Semantically
    /// identical; the incremental mode is faster and is the default.
    pub fresh_solver_per_assert: bool,
    /// Upper bound on enumerated counterexamples per assertion; the
    /// result notes when an assertion was truncated.
    pub max_counterexamples_per_assert: usize,
    /// When set, every assertion that *holds* is certified: the solver
    /// emits a DRAT refutation of `Bᵢ = C(c, g) ∧ ¬assertᵢ`, checkable
    /// with [`sat::Proof::verify_refutation`] against
    /// [`CheckResult::certified_formula`]. "Soundness guarantees the
    /// absence of bugs" — with a machine-checkable witness.
    pub certify: bool,
    /// Cooperative work bound installed on every solver this check
    /// creates. When a solve is interrupted mid-search the check stops
    /// early with [`CheckResult::interrupted`] set; results gathered so
    /// far are kept but are incomplete.
    pub budget: Option<sat::Budget>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            encoder: EncoderKind::Renaming,
            fresh_solver_per_assert: false,
            max_counterexamples_per_assert: 1024,
            certify: false,
            budget: None,
        }
    }
}

/// Work counters for one verification run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct XbmcStats {
    /// CNF variables in the encoded program.
    pub cnf_vars: usize,
    /// CNF clauses in the encoded program.
    pub cnf_clauses: usize,
    /// SAT solver invocations.
    pub sat_calls: usize,
    /// Assertions whose enumeration hit the per-assert cap.
    pub truncated_assertions: usize,
    /// Total solver conflicts across every solver this check used.
    pub conflicts: u64,
    /// Total solver decisions.
    pub decisions: u64,
    /// Total solver unit propagations.
    pub propagations: u64,
    /// Propagations served by the binary implication lists (a subset
    /// of `propagations` that never touched the clause arena).
    pub binary_propagations: u64,
    /// Total solver restarts.
    pub restarts: u64,
    /// Restarts triggered by the glue EMA rather than the Luby budget.
    pub glue_restarts: u64,
    /// Learned clauses with LBD ≤ 2 (core tier).
    pub glue_core: u64,
    /// Learned clauses with LBD 3–6 (mid tier).
    pub glue_mid: u64,
    /// Learned clauses with LBD > 6 (local tier).
    pub glue_local: u64,
    /// Live core-tier clauses after the last database reduction,
    /// summed over solvers (gauge-like; see `absorb_since`).
    pub tier_core_size: u64,
    /// Live mid-tier clauses after the last database reduction.
    pub tier_mid_size: u64,
    /// Live local-tier clauses after the last database reduction.
    pub tier_local_size: u64,
    /// Clauses deleted by backward subsumption during root-level
    /// inprocessing.
    pub subsumed_clauses: u64,
    /// Clauses strengthened by self-subsuming resolution.
    pub strengthened_clauses: u64,
    /// Clauses shortened by vivification.
    pub vivified_clauses: u64,
    /// Root-level inprocessing rounds run between restarts.
    pub inprocessing_rounds: u64,
    /// Long-lived certificate provers created (at most one per
    /// program: the certify path shares a single proof-logging solver
    /// across every held assertion instead of cloning per assertion).
    pub certify_provers: u64,
    /// Root-level units fixed by formula preprocessing.
    pub pre_units_fixed: u64,
    /// Clauses removed by formula preprocessing (tautologies and
    /// root-satisfied clauses).
    pub pre_clauses_removed: u64,
    /// Assertions discharged statically before encoding (filled by the
    /// screening tier in `webssari-core`; always 0 for a bare check).
    pub assertions_discharged: u64,
    /// CNF variables the cone-of-influence slice removed relative to
    /// encoding the full program (filled by the screening tier).
    pub cnf_vars_saved: u64,
    /// Generalized blocking cubes learned by ALLSAT enumeration (one
    /// per satisfiable solver answer on the renaming path).
    pub cubes_learned: u64,
    /// Counterexamples materialized by expanding those cubes back to
    /// full branch assignments. `cube_assignments / cubes_learned` is
    /// the mean cover per cube; > 1 means generalization pruned solver
    /// calls.
    pub cube_assignments: u64,
    /// Assertions carrying SQL-structured sink preconditions
    /// (`AssertKind::SqlStructure`; filled by `webssari-core`).
    pub sql_assertions_checked: u64,
    /// Violated assertions whose error trace flows through a store
    /// cell — second-order (stored) taint (filled by `webssari-core`).
    pub second_order_flows_found: u64,
    /// Assertions discharged by the flow-sensitive SSA tier with a
    /// `flow-clean` proof (filled by the two-stage screening tier in
    /// `webssari-core`; always 0 for a bare check).
    pub flow_discharged: u64,
    /// φ-functions placed while building the pruned SSA form of the
    /// checked program (filled by `webssari-core`).
    pub ssa_phis: u64,
    /// Interprocedural function summaries computed bottom-up over the
    /// call graph (filled by `webssari-core`).
    pub summaries_computed: u64,
    /// Call-site clones materialized for taint-polymorphic callees
    /// (filled by `webssari-core`).
    pub contexts_cloned: u64,
}

impl XbmcStats {
    /// Total clauses removed by root-level inprocessing (subsumption
    /// plus the originals replaced by strengthening and vivification).
    pub fn inprocessing_removed(&self) -> u64 {
        self.subsumed_clauses + self.strengthened_clauses + self.vivified_clauses
    }

    /// Folds one solver's work counters into this check's totals.
    fn absorb(&mut self, s: &sat::SolverStats) {
        self.conflicts += s.conflicts;
        self.decisions += s.decisions;
        self.propagations += s.propagations;
        self.binary_propagations += s.binary_propagations;
        self.restarts += s.restarts;
        self.glue_restarts += s.glue_restarts;
        self.glue_core += s.glue_core;
        self.glue_mid += s.glue_mid;
        self.glue_local += s.glue_local;
        self.tier_core_size += s.tier_core_size;
        self.tier_mid_size += s.tier_mid_size;
        self.tier_local_size += s.tier_local_size;
        self.subsumed_clauses += s.subsumed_clauses;
        self.strengthened_clauses += s.strengthened_clauses;
        self.vivified_clauses += s.vivified_clauses;
        self.inprocessing_rounds += s.inprocessing_rounds;
        self.pre_units_fixed += s.pre_units_fixed;
        self.pre_clauses_removed += s.pre_clauses_removed;
        self.cubes_learned += s.cube_shrink_calls;
    }

    /// Folds in only the work a cloned solver did *since* it was cloned
    /// from a base solver whose own counters were already absorbed —
    /// the formula is ingested (and preprocessed) once, so the base's
    /// share must not be counted once per clone.
    fn absorb_since(&mut self, s: &sat::SolverStats, base: &sat::SolverStats) {
        self.conflicts += s.conflicts - base.conflicts;
        self.decisions += s.decisions - base.decisions;
        self.propagations += s.propagations - base.propagations;
        self.binary_propagations += s.binary_propagations - base.binary_propagations;
        self.restarts += s.restarts - base.restarts;
        self.glue_restarts += s.glue_restarts - base.glue_restarts;
        self.glue_core += s.glue_core - base.glue_core;
        self.glue_mid += s.glue_mid - base.glue_mid;
        self.glue_local += s.glue_local - base.glue_local;
        // Tier sizes are gauges (live clauses after the last
        // reduction), not monotone counters: a clone's reduction can
        // leave fewer live clauses than the base snapshot had.
        self.tier_core_size += s.tier_core_size.saturating_sub(base.tier_core_size);
        self.tier_mid_size += s.tier_mid_size.saturating_sub(base.tier_mid_size);
        self.tier_local_size += s.tier_local_size.saturating_sub(base.tier_local_size);
        self.subsumed_clauses += s.subsumed_clauses - base.subsumed_clauses;
        self.strengthened_clauses += s.strengthened_clauses - base.strengthened_clauses;
        self.vivified_clauses += s.vivified_clauses - base.vivified_clauses;
        self.inprocessing_rounds += s.inprocessing_rounds - base.inprocessing_rounds;
        self.pre_units_fixed += s.pre_units_fixed - base.pre_units_fixed;
        self.pre_clauses_removed += s.pre_clauses_removed - base.pre_clauses_removed;
        self.cubes_learned += s.cube_shrink_calls - base.cube_shrink_calls;
    }
}

/// The outcome of checking every assertion of an AI program.
#[derive(Clone, Debug, Default)]
pub struct CheckResult {
    /// All counterexamples, grouped by assertion in program order and
    /// sorted by branch assignment within each assertion.
    pub counterexamples: Vec<Counterexample>,
    /// Number of assertions checked.
    pub checked_assertions: usize,
    /// Number of assertions with at least one counterexample.
    pub violated_assertions: usize,
    /// Work counters.
    pub stats: XbmcStats,
    /// DRAT refutations of `Bᵢ` for every assertion that holds, when
    /// [`CheckOptions::certify`] was set.
    pub certificates: Vec<Certificate>,
    /// The program constraints the certificates refer to (present only
    /// when certifying). Shared, not deep-cloned: the encoding can run
    /// to hundreds of thousands of clauses at SourceForge scale.
    pub certified_formula: Option<Arc<cnf::CnfFormula>>,
    /// A [`CheckOptions::budget`] bound was hit: the check stopped
    /// early and the results above are incomplete. Callers must not
    /// treat such a run as a verification verdict.
    pub interrupted: bool,
}

/// A machine-checkable witness that one assertion holds: a DRAT
/// refutation of `Bᵢ = C(c, g) ∧ ¬assertᵢ`.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// The certified assertion.
    pub assert_id: webssari_ir::AssertId,
    /// The violation literal whose unit clause, conjoined with
    /// [`CheckResult::certified_formula`], the proof refutes.
    pub violated: cnf::Lit,
    /// The refutation.
    pub proof: sat::Proof,
}

impl Certificate {
    /// Independently re-checks this certificate against the program
    /// constraints.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`sat::ProofError`] if the proof does not
    /// check.
    pub fn verify(&self, program_formula: &cnf::CnfFormula) -> Result<(), sat::ProofError> {
        let mut f = program_formula.clone();
        f.add_lits([self.violated]);
        self.proof.verify_refutation(&f)
    }
}

impl CheckResult {
    /// Whether the program satisfies every assertion — the *soundness
    /// guarantee* case: "soundness guarantees the absence of bugs".
    pub fn is_safe(&self) -> bool {
        self.counterexamples.is_empty()
    }

    /// The certificate for one assertion, if it was certified.
    pub fn certificate(&self, id: webssari_ir::AssertId) -> Option<&Certificate> {
        self.certificates.iter().find(|c| c.assert_id == id)
    }

    /// Re-checks every certificate against the certified formula,
    /// returning how many were verified.
    ///
    /// # Errors
    ///
    /// Returns the first failing certificate's assert id and error.
    pub fn verify_certificates(&self) -> Result<usize, (webssari_ir::AssertId, sat::ProofError)> {
        let Some(formula) = &self.certified_formula else {
            return Ok(0);
        };
        for c in &self.certificates {
            c.verify(formula).map_err(|e| (c.assert_id, e))?;
        }
        Ok(self.certificates.len())
    }
}

/// The bounded model checker.
///
/// See the crate docs for the algorithm; [`Xbmc::check_all`] runs the
/// per-assertion counterexample enumeration over the two-point taint
/// lattice.
#[derive(Debug)]
pub struct Xbmc<'a> {
    ai: &'a AiProgram,
    options: CheckOptions,
}

impl<'a> Xbmc<'a> {
    /// Creates a checker with default options.
    pub fn new(ai: &'a AiProgram) -> Self {
        Xbmc {
            ai,
            options: CheckOptions::default(),
        }
    }

    /// Creates a checker with explicit options.
    pub fn with_options(ai: &'a AiProgram, options: CheckOptions) -> Self {
        Xbmc { ai, options }
    }

    /// Checks every assertion over the standard two-point taint lattice.
    pub fn check_all(&self) -> CheckResult {
        self.check_all_with(&TwoPoint::new())
    }

    /// Checks every assertion over an explicit lattice.
    pub fn check_all_with(&self, lattice: &impl Lattice) -> CheckResult {
        match self.options.encoder {
            EncoderKind::Renaming => self.check_renaming(lattice),
            EncoderKind::AuxVariable => self.check_aux(lattice),
        }
    }

    fn check_renaming(&self, lattice: &impl Lattice) -> CheckResult {
        let enc = renaming::encode(self.ai, lattice);
        let mut result = CheckResult {
            checked_assertions: enc.asserts.len(),
            ..CheckResult::default()
        };
        result.stats.cnf_vars = enc.formula.num_vars();
        result.stats.cnf_clauses = enc.formula.num_clauses();
        let budget = self.options.budget.unwrap_or_default();
        // Ingest (and preprocess) the encoded formula exactly once; every
        // prover this check needs — the shared incremental solver, the
        // per-assert fresh solvers, the certify provers — is a clone of
        // this base, which is much cheaper than re-parsing the CNF.
        let base_solver = {
            let mut s = Solver::from_formula(&enc.formula);
            s.set_budget(budget);
            s
        };
        let base_stats = *base_solver.stats();
        // The base's own work (preprocessing, root propagation) counts
        // once; clones later report only their delta over this.
        result.stats.absorb(&base_stats);
        let mut shared_solver = if self.options.fresh_solver_per_assert {
            None
        } else {
            Some(base_solver.clone())
        };
        // One long-lived proof-logging prover certifies every held
        // assertion (created lazily: most programs with violations
        // never need it). Clauses it learns while solving under the
        // assumption `violatedᵢ` are implied by the program formula
        // alone — assumptions act as decisions and never enter
        // conflict-clause resolution — so the accumulated proof prefix
        // stays RUP against `certified_formula` and each certificate
        // is the prefix snapshot plus `¬violatedᵢ` (root-falsified
        // when the single-assumption solve answers unsat) and the
        // empty clause. This replaces a per-assertion clone of
        // `base_solver`, and learned clauses carry over between
        // assertions of the same program.
        let mut cert_prover: Option<Solver> = None;
        // One free selector variable per assertion scopes its blocking
        // clauses: they only bite while that assertion is being
        // enumerated (the selector is assumed true), and are inert
        // afterwards (the solver may set the selector false).
        let selector_base = enc.formula.num_vars();
        for (ai_idx, a) in enc.asserts.iter().enumerate() {
            let selector = cnf::Var::new(selector_base + ai_idx).positive();
            let mut solver_storage;
            let solver: &mut Solver = match shared_solver.as_mut() {
                Some(s) => s,
                None => {
                    solver_storage = base_solver.clone();
                    &mut solver_storage
                }
            };
            let mut found: Vec<Counterexample> = Vec::new();
            // Distinct branch assignments emitted so far for this
            // assertion: generalized cubes may overlap (a later cube is
            // shrunk without regard to earlier blocking clauses), so
            // expansion dedups to reproduce the per-model set exactly.
            let mut seen: HashSet<Vec<bool>> = HashSet::new();
            loop {
                if found.len() >= self.options.max_counterexamples_per_assert {
                    result.stats.truncated_assertions += 1;
                    break;
                }
                result.stats.sat_calls += 1;
                match solver.solve_with_assumptions(&[selector, a.violated]) {
                    SatResult::Sat(model) => {
                        // The model restricted to Bᵢ's BN, then shrunk
                        // to a minimal implicant of the violation
                        // literal: every extension of the cube over the
                        // remaining branch variables still violates.
                        let model_cube: Vec<cnf::Lit> = a
                            .relevant_branches
                            .iter()
                            .map(|b| {
                                let lit = enc.branch_lits[b.0 as usize];
                                if model.lit_value(lit) {
                                    lit
                                } else {
                                    !lit
                                }
                            })
                            .collect();
                        let cube = solver.shrink_cube(&model_cube, a.violated);
                        self.expand_cube(
                            &enc,
                            a,
                            &cube,
                            lattice,
                            &mut found,
                            &mut seen,
                            &mut result,
                        );
                        // Negate the generalized cube, not just this
                        // model: Bᵢʲ⁺¹ = Bᵢʲ ∧ ¬cubeʲ (scoped by the
                        // selector in the incremental solver). A width-w
                        // cube over k branches prunes 2^(k−w)
                        // assignments per clause.
                        let mut blocking: Vec<cnf::Lit> = cube.iter().map(|&l| !l).collect();
                        blocking.push(!selector);
                        solver.add_clause(blocking);
                    }
                    SatResult::Unsat => break,
                    SatResult::Unknown => break,
                    SatResult::Interrupted => {
                        result.interrupted = true;
                        break;
                    }
                }
            }
            if self.options.fresh_solver_per_assert {
                result.stats.absorb_since(solver.stats(), &base_stats);
            }
            if result.interrupted {
                // Stop checking further assertions: the engine will
                // degrade this whole file to a timeout outcome, so
                // spending the remaining assertions' budgets here only
                // delays the worker.
                break;
            }
            if !found.is_empty() {
                result.violated_assertions += 1;
            } else if self.options.certify {
                // The assertion holds: certify Bᵢ's unsatisfiability
                // with a DRAT refutation from the shared prover, with
                // the violation literal as an assumption instead of a
                // unit clause so the database is never committed to
                // one assertion.
                let prover = cert_prover.get_or_insert_with(|| {
                    result.stats.certify_provers += 1;
                    let mut s = base_solver.clone();
                    s.start_proof();
                    s
                });
                result.stats.sat_calls += 1;
                let res = prover.solve_with_assumptions(&[a.violated]);
                if res == SatResult::Interrupted {
                    result.interrupted = true;
                    break;
                }
                debug_assert!(res.is_unsat(), "enumeration said Bᵢ is unsat");
                if res.is_unsat() {
                    if let Some(prefix) = prover.proof() {
                        // `¬violated` is RUP here: the only
                        // unsat-under-assumption exit with a single
                        // assumption is the literal being false at
                        // root level, i.e. derived by propagation
                        // from the clauses the prefix accounts for.
                        // With `violated` restored as the verifier's
                        // unit clause, the empty clause follows.
                        let mut proof = prefix.clone();
                        proof.push(ProofStep::Add(vec![!a.violated]));
                        proof.push(ProofStep::Add(Vec::new()));
                        result.certificates.push(Certificate {
                            assert_id: a.id,
                            violated: a.violated,
                            proof,
                        });
                    }
                }
            }
            found.sort_by(|a, b| a.branches.cmp(&b.branches));
            result.counterexamples.extend(found);
        }
        if let Some(s) = &shared_solver {
            result.stats.absorb_since(s.stats(), &base_stats);
        }
        if let Some(p) = &cert_prover {
            result.stats.absorb_since(p.stats(), &base_stats);
        }
        if self.options.certify {
            result.certified_formula = Some(Arc::new(enc.formula));
        }
        result
    }

    /// Expands one generalized cube back to full branch assignments,
    /// emitting a [`Counterexample`] per assignment not already seen.
    ///
    /// Branches pinned by the cube keep their cube polarity; the
    /// remaining relevant branches are free and enumerated both ways
    /// (false before true, earlier branches most significant), with
    /// branches outside `Bᵢ`'s BN normalized to false as before. Every
    /// extension of the cube violates the assertion, so each expansion
    /// is a genuine counterexample; `violating_vars` and the trace are
    /// recomputed per path since no satisfying model exists per
    /// expansion. Expansion stops at the per-assert cap so `max_cx`
    /// counts expanded assignments, exactly like the per-model loop.
    #[allow(clippy::too_many_arguments)]
    fn expand_cube(
        &self,
        enc: &renaming::RenamedEncoding,
        a: &renaming::EncodedAssert,
        cube: &[cnf::Lit],
        lattice: &impl Lattice,
        found: &mut Vec<Counterexample>,
        seen: &mut HashSet<Vec<bool>>,
        result: &mut CheckResult,
    ) {
        let mut fixed: Vec<(usize, bool)> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        for b in &a.relevant_branches {
            let idx = b.0 as usize;
            let lit = enc.branch_lits[idx];
            match cube.iter().find(|l| l.var() == lit.var()) {
                Some(&l) => fixed.push((idx, l == lit)),
                None => free.push(idx),
            }
        }
        let width = free.len();
        let total: u64 = if width >= 63 { u64::MAX } else { 1u64 << width };
        for m in 0..total {
            if found.len() >= self.options.max_counterexamples_per_assert {
                break;
            }
            let mut branches = vec![false; self.ai.num_branches];
            for &(idx, v) in &fixed {
                branches[idx] = v;
            }
            for (i, &idx) in free.iter().enumerate() {
                branches[idx] = m >> (width - 1 - i) & 1 == 1;
            }
            if !seen.insert(branches.clone()) {
                continue;
            }
            let violating_vars =
                path_violating_vars(self.ai, &branches, a.id, lattice).unwrap_or_default();
            result.stats.cube_assignments += 1;
            found.push(Counterexample {
                assert_id: a.id,
                func: a.func.clone(),
                site: a.site.clone(),
                violating_vars,
                trace: replay_trace(self.ai, &branches, a.id),
                branches,
            });
        }
    }

    fn check_aux(&self, lattice: &impl Lattice) -> CheckResult {
        let enc = aux_encoding::encode(self.ai, lattice);
        let mut result = CheckResult {
            checked_assertions: enc.asserts.len(),
            ..CheckResult::default()
        };
        result.stats.cnf_vars = enc.formula.num_vars();
        result.stats.cnf_clauses = enc.formula.num_clauses();
        let mut solver = Solver::from_formula(&enc.formula);
        solver.set_budget(self.options.budget.unwrap_or_default());
        for a in &enc.asserts {
            result.stats.sat_calls += 1;
            match solver.solve_with_assumptions(&[a.violated]) {
                SatResult::Sat(model) => {
                    result.violated_assertions += 1;
                    let branches = enc.decode_branches(&model);
                    let violating_vars = a
                        .var_violations
                        .iter()
                        .filter(|(_, l)| model.lit_value(*l))
                        .map(|(v, _)| *v)
                        .collect();
                    result.counterexamples.push(Counterexample {
                        assert_id: a.id,
                        func: a.func.clone(),
                        site: a.site.clone(),
                        violating_vars,
                        trace: replay_trace(self.ai, &branches, a.id),
                        branches,
                    });
                }
                SatResult::Interrupted => {
                    result.interrupted = true;
                    break;
                }
                SatResult::Unsat | SatResult::Unknown => {}
            }
        }
        result.stats.absorb(solver.stats());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_front::parse_source;
    use webssari_ir::{abstract_interpret, filter_program, FilterOptions, Prelude};

    fn ai_of(src: &str) -> AiProgram {
        let ast = parse_source(src).expect("parse");
        let f = filter_program(
            &ast,
            src,
            "t.php",
            &Prelude::standard(),
            &FilterOptions::default(),
        );
        abstract_interpret(&f)
    }

    #[test]
    fn safe_program_has_no_counterexamples() {
        let ai = ai_of("<?php $x = htmlspecialchars($_GET['a']); echo $x;");
        let r = Xbmc::new(&ai).check_all();
        assert!(r.is_safe());
        assert_eq!(r.checked_assertions, 1);
        assert_eq!(r.violated_assertions, 0);
    }

    #[test]
    fn unconditional_violation_yields_one_counterexample() {
        let ai = ai_of("<?php $x = $_GET['a']; echo $x;");
        let r = Xbmc::new(&ai).check_all();
        assert_eq!(r.counterexamples.len(), 1);
        assert_eq!(r.violated_assertions, 1);
        assert_eq!(r.counterexamples[0].func, "echo");
    }

    #[test]
    fn enumeration_finds_every_violating_path() {
        // Two independent tainting branches feeding one sink: paths
        // (T,T), (T,F), (F,T) violate; (F,F) does not.
        let ai = ai_of(
            "<?php $x = 'ok'; if ($a) { $x = $_GET['p']; } if ($b) { $x = $x . $_GET['q']; } echo $x;",
        );
        let r = Xbmc::new(&ai).check_all();
        let paths: Vec<Vec<bool>> = r
            .counterexamples
            .iter()
            .map(|c| c.branches.clone())
            .collect();
        assert_eq!(
            paths,
            vec![vec![false, true], vec![true, false], vec![true, true],]
        );
    }

    #[test]
    fn fresh_solver_mode_matches_incremental() {
        let src =
            "<?php $x = 'ok'; if ($a) { $x = $_GET['p']; } echo $x; if ($b) { mysql_query($x); }";
        let ai = ai_of(src);
        let inc = Xbmc::new(&ai).check_all();
        let fresh = Xbmc::with_options(
            &ai,
            CheckOptions {
                fresh_solver_per_assert: true,
                ..CheckOptions::default()
            },
        )
        .check_all();
        let key = |r: &CheckResult| {
            r.counterexamples
                .iter()
                .map(|c| (c.assert_id, c.branches.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&inc), key(&fresh));
    }

    #[test]
    fn counterexample_cap_truncates() {
        // 3 irrelevant branches around the sink → 8 violating paths.
        let ai = ai_of(
            "<?php $x = $_GET['p']; if ($a) { $u = 1; } if ($b) { $v = 2; } if ($c) { $w = 3; } echo $x;",
        );
        let capped = Xbmc::with_options(
            &ai,
            CheckOptions {
                max_counterexamples_per_assert: 2,
                ..CheckOptions::default()
            },
        )
        .check_all();
        assert_eq!(capped.counterexamples.len(), 2);
        assert_eq!(capped.stats.truncated_assertions, 1);
    }

    #[test]
    fn cube_generalization_prunes_solver_calls() {
        // 5 independent tainting branches: 31 violating paths. The
        // per-model loop would need 32 solver calls; generalized cubes
        // cover whole families per call.
        let mut src = String::from("<?php $x = 'ok';");
        for i in 0..5 {
            src.push_str(&format!(" if ($c{i}) {{ $x = $x . $_GET['p{i}']; }}"));
        }
        src.push_str(" echo $x;");
        let ai = ai_of(&src);
        let r = Xbmc::new(&ai).check_all();
        assert_eq!(r.counterexamples.len(), 31);
        assert!(r.stats.cubes_learned > 0);
        assert_eq!(r.stats.cube_assignments, 31);
        assert!(
            r.stats.sat_calls < 16,
            "expected generalization to prune solver calls, got {}",
            r.stats.sat_calls
        );
        // Mean cover per cube must beat one assignment per solve.
        assert!(r.stats.cube_assignments > r.stats.cubes_learned);
    }

    #[test]
    fn aux_encoder_agrees_on_violated_assertions() {
        let src = "<?php $x = 'ok'; if ($c) { $x = $_GET['a']; } echo $x; $y = 'safe'; echo $y;";
        let ai = ai_of(src);
        let ren = Xbmc::new(&ai).check_all();
        let aux = Xbmc::with_options(
            &ai,
            CheckOptions {
                encoder: EncoderKind::AuxVariable,
                ..CheckOptions::default()
            },
        )
        .check_all();
        assert_eq!(ren.violated_assertions, aux.violated_assertions);
        assert_eq!(ren.checked_assertions, aux.checked_assertions);
        // The aux path's single counterexample must be a genuine one.
        assert_eq!(aux.counterexamples.len(), 1);
        assert_eq!(aux.counterexamples[0].branches, vec![true]);
    }

    #[test]
    fn stats_are_populated() {
        let ai = ai_of("<?php $x = $_GET['a']; echo $x;");
        let r = Xbmc::new(&ai).check_all();
        assert!(r.stats.cnf_vars > 0);
        assert!(r.stats.cnf_clauses > 0);
        assert!(r.stats.sat_calls >= 2); // one sat + one unsat
    }

    #[test]
    fn traces_accompany_counterexamples() {
        let ai = ai_of("<?php $a = $_GET['x']; $b = $a; mysql_query($b);");
        let r = Xbmc::new(&ai).check_all();
        assert_eq!(r.counterexamples.len(), 1);
        let cx = &r.counterexamples[0];
        assert_eq!(cx.trace.len(), 3); // _GET init, $a, $b
        assert_eq!(cx.violating_vars.len(), 1);
        assert_eq!(ai.vars.name(cx.violating_vars[0]), "b");
    }
}

#[cfg(test)]
mod certify_tests {
    use super::*;
    use php_front::parse_source;
    use webssari_ir::{abstract_interpret, filter_program, FilterOptions, Prelude};

    fn ai_of(src: &str) -> webssari_ir::AiProgram {
        let ast = parse_source(src).expect("parse");
        let f = filter_program(
            &ast,
            src,
            "t.php",
            &Prelude::standard(),
            &FilterOptions::default(),
        );
        abstract_interpret(&f)
    }

    fn certifying() -> CheckOptions {
        CheckOptions {
            certify: true,
            ..CheckOptions::default()
        }
    }

    #[test]
    fn holding_assertions_get_verified_certificates() {
        let ai = ai_of(
            "<?php $a = htmlspecialchars($_GET['x']); echo $a; $b = intval($_GET['y']); mysql_query(\"LIMIT $b\");",
        );
        let r = Xbmc::with_options(&ai, certifying()).check_all();
        assert!(r.is_safe());
        assert_eq!(r.certificates.len(), 2);
        assert_eq!(r.verify_certificates().unwrap(), 2);
    }

    #[test]
    fn violated_assertions_are_not_certified() {
        let ai = ai_of("<?php $x = $_GET['a']; echo $x; echo 'safe' . $ok;");
        let r = Xbmc::with_options(&ai, certifying()).check_all();
        assert_eq!(r.violated_assertions, 1);
        // Only the second (holding) assertion is certified.
        assert_eq!(r.certificates.len(), 1);
        assert!(r.certificate(webssari_ir::AssertId(0)).is_none());
        assert!(r.certificate(webssari_ir::AssertId(1)).is_some());
        assert_eq!(r.verify_certificates().unwrap(), 1);
    }

    #[test]
    fn branchy_safe_program_certifies() {
        let ai = ai_of(
            "<?php $x = 'ok'; if ($c) { $x = intval($_GET['n']); } else { $x = 'other'; } echo $x; mysql_query($x);",
        );
        let r = Xbmc::with_options(&ai, certifying()).check_all();
        assert!(r.is_safe());
        assert_eq!(r.verify_certificates().unwrap(), 2);
    }

    #[test]
    fn tampered_certificate_fails_verification() {
        let ai = ai_of("<?php $a = 'clean'; echo $a;");
        let mut r = Xbmc::with_options(&ai, certifying()).check_all();
        assert_eq!(r.certificates.len(), 1);
        // Point the certificate at the wrong literal: it must no longer
        // refute.
        let cert = &mut r.certificates[0];
        cert.violated = !cert.violated;
        let formula = r.certified_formula.clone().unwrap();
        // Either the proof fails outright or it no longer ends with a
        // derivable empty clause.
        assert!(r.certificates[0].verify(&formula).is_err());
    }

    #[test]
    fn certify_path_shares_one_prover_per_program() {
        // Two holding assertions: the certify path must build exactly
        // one proof-logging prover (no per-assertion clone) and the
        // formula must be preprocessed exactly once for the whole
        // check — the run's preprocessing counters equal a single
        // solver ingestion of the certified formula.
        let ai = ai_of(
            "<?php $a = htmlspecialchars($_GET['x']); echo $a; $b = intval($_GET['y']); mysql_query(\"LIMIT $b\");",
        );
        let r = Xbmc::with_options(&ai, certifying()).check_all();
        assert_eq!(r.certificates.len(), 2);
        assert_eq!(r.stats.certify_provers, 1);
        let formula = r.certified_formula.as_ref().expect("certifying run");
        let single_pass = *Solver::from_formula(formula).stats();
        assert_eq!(r.stats.pre_units_fixed, single_pass.pre_units_fixed);
        assert_eq!(r.stats.pre_clauses_removed, single_pass.pre_clauses_removed);
        assert_eq!(r.verify_certificates().unwrap(), 2);
    }

    #[test]
    fn certify_prover_reuse_keeps_fresh_solver_path_working() {
        let ai = ai_of(
            "<?php $a = htmlspecialchars($_GET['x']); echo $a; $b = intval($_GET['y']); mysql_query(\"LIMIT $b\");",
        );
        let opts = CheckOptions {
            certify: true,
            fresh_solver_per_assert: true,
            ..CheckOptions::default()
        };
        let r = Xbmc::with_options(&ai, opts).check_all();
        assert!(r.is_safe());
        assert_eq!(r.stats.certify_provers, 1);
        assert_eq!(r.verify_certificates().unwrap(), 2);
    }

    #[test]
    fn certification_off_by_default() {
        let ai = ai_of("<?php $a = 'clean'; echo $a;");
        let r = Xbmc::new(&ai).check_all();
        assert!(r.certificates.is_empty());
        assert!(r.certified_formula.is_none());
        assert_eq!(r.verify_certificates().unwrap(), 0);
    }
}
