//! xBMC 1.0: constraint generation with variable renaming (§3.3.2).
//!
//! Following Clarke et al.'s CBMC algorithm, AI variables are renamed so
//! that each renamed variable is assigned only once (an SSA form without
//! φ-conditions). A guarded assignment under guard `g` constrains only
//! the new and the previous incarnation of the assigned variable:
//!
//! ```text
//! C(x = e, g) :=  tᵢx = g ? ρ(t_e) : tᵢ⁻¹x          (Figure 5)
//! ```
//!
//! so each assignment costs 2 type vectors — versus `2·|X|` in the
//! auxiliary-variable encoding of xBMC 0.1.
//!
//! Branch conditions are nondeterministic boolean variables (the set
//! `BN`); assertions become guarded violation literals that the checker
//! assumes one at a time.

use cnf::{CnfFormula, FormulaBuilder, Lit};
use taint_lattice::Lattice;
use webssari_ir::{AiCmd, AiProgram, AssertId, BranchId, Site, VarId};

use crate::typevec::TypeVec;

/// One encoded assertion.
#[derive(Clone, Debug)]
pub struct EncodedAssert {
    /// The assertion's id.
    pub id: AssertId,
    /// The SOC function name.
    pub func: String,
    /// The SOC call site.
    pub site: Site,
    /// True in a model iff the assertion is violated on the model's
    /// path (`guard ∧ ∃x: ¬(t_x < bound)`).
    pub violated: Lit,
    /// Per checked variable: a literal that is true iff that variable's
    /// type violates the bound *and* the assertion's guard holds.
    pub var_violations: Vec<(VarId, Lit)>,
    /// The nondeterministic branches that precede this assertion in
    /// program order — the `BN` of the per-assertion formula `Bᵢ`;
    /// counterexample blocking quantifies over exactly these.
    pub relevant_branches: Vec<BranchId>,
}

/// The result of encoding an [`AiProgram`] with variable renaming.
#[derive(Debug)]
pub struct RenamedEncoding {
    /// The program constraints `C(c, true)`.
    pub formula: CnfFormula,
    /// One boolean per nondeterministic branch, indexed by [`BranchId`].
    pub branch_lits: Vec<Lit>,
    /// Encoded assertions in program order.
    pub asserts: Vec<EncodedAssert>,
    /// Number of renamed incarnations created (≥ 1 per AI variable).
    pub num_incarnations: usize,
}

/// Encodes an AI program using the renaming procedure ρ.
pub fn encode(ai: &AiProgram, lattice: &impl Lattice) -> RenamedEncoding {
    encode_with(FormulaBuilder::new(), ai, lattice)
}

/// Number of CNF variables [`encode`] would allocate for `ai`, computed
/// by driving the same encoder walk through a counting builder that
/// discards clauses. Exact by construction (gate shortcuts depend only
/// on literal identity, never on emitted clauses) at a fraction of the
/// cost — the screening tier uses this to report `cnf_vars_saved`
/// without re-encoding the full program.
pub fn count_vars(ai: &AiProgram, lattice: &impl Lattice) -> usize {
    encode_with(FormulaBuilder::new_counting(), ai, lattice)
        .formula
        .num_vars()
}

fn encode_with(
    mut builder: FormulaBuilder,
    ai: &AiProgram,
    lattice: &impl Lattice,
) -> RenamedEncoding {
    let branch_lits: Vec<Lit> = (0..ai.num_branches).map(|_| builder.fresh_lit()).collect();
    // Incarnation 0 of every variable is the constant ⊥ (uninitialized
    // PHP variables hold trusted empty values).
    let bottom = lattice.bottom();
    let mut current: Vec<TypeVec> = (0..ai.vars.len())
        .map(|_| TypeVec::constant(&mut builder, lattice, bottom))
        .collect();
    let mut cx = Encoder {
        lattice,
        builder: &mut builder,
        branch_lits: &branch_lits,
        asserts: Vec::new(),
        num_incarnations: ai.vars.len(),
        branches_seen: Vec::new(),
    };
    let true_lit = cx.builder.lit_true();
    cx.walk(&ai.cmds, true_lit, &mut current);
    let asserts = cx.asserts;
    let num_incarnations = cx.num_incarnations;
    RenamedEncoding {
        formula: builder.into_formula(),
        branch_lits,
        asserts,
        num_incarnations,
    }
}

struct Encoder<'a, L: Lattice> {
    lattice: &'a L,
    builder: &'a mut FormulaBuilder,
    branch_lits: &'a [Lit],
    asserts: Vec<EncodedAssert>,
    num_incarnations: usize,
    branches_seen: Vec<BranchId>,
}

impl<L: Lattice> Encoder<'_, L> {
    fn walk(&mut self, cmds: &[AiCmd], guard: Lit, current: &mut Vec<TypeVec>) {
        for c in cmds {
            match c {
                AiCmd::Assign {
                    var,
                    base,
                    deps,
                    mask,
                    ..
                } => {
                    let operands: Vec<TypeVec> =
                        deps.iter().map(|d| current[d.index()].clone()).collect();
                    let mut rhs = TypeVec::join_all(self.builder, self.lattice, *base, &operands);
                    if let Some(m) = mask {
                        let keep = TypeVec::constant(self.builder, self.lattice, *m);
                        rhs = rhs.meet(self.builder, self.lattice, &keep);
                    }
                    let prev = current[var.index()].clone();
                    // tᵢx = g ? ρ(t_e) : tᵢ⁻¹x
                    let next = TypeVec::define_ite(self.builder, guard, &rhs, &prev);
                    current[var.index()] = next;
                    self.num_incarnations += 1;
                }
                AiCmd::Assert {
                    id,
                    vars,
                    bound,
                    strict,
                    func,
                    site,
                    ..
                } => {
                    let mut var_violations = Vec::with_capacity(vars.len());
                    let mut any = Vec::with_capacity(vars.len());
                    for v in vars {
                        let ok = if *strict {
                            current[v.index()].lt_bound(self.builder, self.lattice, *bound)
                        } else {
                            current[v.index()].le_bound(self.builder, self.lattice, *bound)
                        };
                        let viol = self.builder.and(guard, !ok);
                        var_violations.push((*v, viol));
                        any.push(viol);
                    }
                    let violated = self.builder.or_all(any);
                    self.asserts.push(EncodedAssert {
                        id: *id,
                        func: func.clone(),
                        site: site.clone(),
                        violated,
                        var_violations,
                        relevant_branches: self.branches_seen.clone(),
                    });
                }
                AiCmd::If {
                    branch,
                    then_cmds,
                    else_cmds,
                    ..
                } => {
                    self.branches_seen.push(*branch);
                    let b = self.branch_lits[branch.0 as usize];
                    let then_guard = self.builder.and(guard, b);
                    self.walk(then_cmds, then_guard, current);
                    let else_guard = self.builder.and(guard, !b);
                    self.walk(else_cmds, else_guard, current);
                }
                // Figure 5: C(stop, g) := true.
                AiCmd::Stop { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_front::parse_source;
    use sat::{SatResult, Solver};
    use taint_lattice::TwoPoint;
    use webssari_ir::{abstract_interpret, filter_program, FilterOptions, Prelude};

    fn ai_of(src: &str) -> AiProgram {
        let ast = parse_source(src).expect("parse");
        let f = filter_program(
            &ast,
            src,
            "t.php",
            &Prelude::standard(),
            &FilterOptions::default(),
        );
        abstract_interpret(&f)
    }

    #[test]
    fn unconditional_violation_is_sat() {
        let ai = ai_of("<?php $x = $_GET['a']; echo $x;");
        let enc = encode(&ai, &TwoPoint::new());
        assert_eq!(enc.asserts.len(), 1);
        let mut s = Solver::from_formula(&enc.formula);
        let res = s.solve_with_assumptions(&[enc.asserts[0].violated]);
        assert!(res.is_sat());
    }

    #[test]
    fn sanitized_program_is_unsat() {
        let ai = ai_of("<?php $x = htmlspecialchars($_GET['a']); echo $x;");
        let enc = encode(&ai, &TwoPoint::new());
        let mut s = Solver::from_formula(&enc.formula);
        assert!(s
            .solve_with_assumptions(&[enc.asserts[0].violated])
            .is_unsat());
    }

    #[test]
    fn violation_only_under_tainting_branch() {
        let ai = ai_of("<?php $x = 'ok'; if ($c) { $x = $_GET['a']; } echo $x;");
        let enc = encode(&ai, &TwoPoint::new());
        let mut s = Solver::from_formula(&enc.formula);
        match s.solve_with_assumptions(&[enc.asserts[0].violated]) {
            SatResult::Sat(m) => {
                assert!(m.lit_value(enc.branch_lits[0]), "must take the then branch");
            }
            other => panic!("expected sat, got {other:?}"),
        }
        // Forcing the branch false must make the violation impossible.
        let res = s.solve_with_assumptions(&[enc.asserts[0].violated, !enc.branch_lits[0]]);
        assert!(res.is_unsat());
    }

    #[test]
    fn violating_var_literals_identify_arguments() {
        let ai = ai_of("<?php $a = $_GET['x']; $b = 'ok'; echo $a, $b;");
        let enc = encode(&ai, &TwoPoint::new());
        let mut s = Solver::from_formula(&enc.formula);
        match s.solve_with_assumptions(&[enc.asserts[0].violated]) {
            SatResult::Sat(m) => {
                let a = ai.vars.lookup("a").unwrap();
                let b = ai.vars.lookup("b").unwrap();
                let viol_of = |v| {
                    enc.asserts[0]
                        .var_violations
                        .iter()
                        .find(|(w, _)| *w == v)
                        .map(|(_, l)| m.lit_value(*l))
                        .unwrap()
                };
                assert!(viol_of(a));
                assert!(!viol_of(b));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn count_vars_matches_full_encoding() {
        let srcs = [
            "<?php $x = 'ok'; echo $x;",
            "<?php $x = $_GET['a']; echo $x;",
            "<?php $x = 'ok'; if ($a) { $x = $_GET['p']; } if ($b) { $x = $x . $_GET['q']; } echo $x;",
            "<?php $x = htmlspecialchars($_GET['a']); if ($c) { $x = $_GET['b']; } echo $x; mysql_query($x);",
        ];
        for src in srcs {
            let ai = ai_of(src);
            let l = TwoPoint::new();
            assert_eq!(
                count_vars(&ai, &l),
                encode(&ai, &l).formula.num_vars(),
                "{src}"
            );
        }
    }

    #[test]
    fn relevant_branches_are_the_prefix() {
        let ai = ai_of("<?php if ($a) { $x = 1; } echo $q; if ($b) { $y = 2; } echo $q;");
        let enc = encode(&ai, &TwoPoint::new());
        assert_eq!(enc.asserts[0].relevant_branches, vec![BranchId(0)]);
        assert_eq!(
            enc.asserts[1].relevant_branches,
            vec![BranchId(0), BranchId(1)]
        );
    }

    #[test]
    fn sequentialized_branches_restore_previous_value() {
        // After `if (c) { $x = taint; } else { $x = taint; }` the
        // violation holds on both paths; after an if with only one
        // tainting side, the else path stays clean.
        let ai = ai_of(
            "<?php $x = 'ok'; if ($c) { $x = $_GET['a']; } else { $x = $_GET['b']; } echo $x;",
        );
        let enc = encode(&ai, &TwoPoint::new());
        let mut s = Solver::from_formula(&enc.formula);
        for polarity in [true, false] {
            let b = if polarity {
                enc.branch_lits[0]
            } else {
                !enc.branch_lits[0]
            };
            assert!(
                s.solve_with_assumptions(&[enc.asserts[0].violated, b])
                    .is_sat(),
                "both paths taint"
            );
        }
    }

    #[test]
    fn incarnation_count_grows_with_assignments() {
        let ai = ai_of("<?php $a = 1; $a = 2; $a = 3;");
        let enc = encode(&ai, &TwoPoint::new());
        // 1 initial + 3 assignments.
        assert_eq!(enc.num_incarnations, ai.vars.len() + 3);
    }

    #[test]
    fn empty_program_encodes_trivially() {
        let ai = ai_of("<?php $x = 1;");
        let enc = encode(&ai, &TwoPoint::new());
        assert!(enc.asserts.is_empty());
        let mut s = Solver::from_formula(&enc.formula);
        assert!(s.solve().is_sat());
    }
}
