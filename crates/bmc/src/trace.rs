//! Counterexample traces.
//!
//! "According to BN's values in αᵢ, we can trace the AI and generate a
//! sequence of single assignments, which represents one counterexample
//! trace" (paper §3.3.2). [`replay_trace`] is that tracing step: given
//! the branch decisions extracted from a satisfying assignment, it
//! replays the AI and records every executed assignment up to the
//! violated assertion.

use taint_lattice::{Elem, Lattice};
use webssari_ir::{AiCmd, AiProgram, AssertId, Site, VarId};

/// One executed assignment on a counterexample trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStep {
    /// The assigned variable (at this point on the path).
    pub var: VarId,
    /// The constant part of the right-hand side.
    pub base: Elem,
    /// The joined variables of the right-hand side.
    pub deps: Vec<VarId>,
    /// Kinds kept by a sanitizing assignment, if any.
    pub mask: Option<Elem>,
    /// Source location of the assignment.
    pub site: Site,
    /// `Some(w)` iff the assignment is exactly `var := w` — a single
    /// assignment with a unique r-value, the form Lemma 1's replacement
    /// sets are built from.
    pub copy_of: Option<VarId>,
}

/// One counterexample: a path (branch decisions) on which an assertion
/// is violated, with the violating variables and the executed trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Counterexample {
    /// The violated assertion.
    pub assert_id: AssertId,
    /// The SOC function whose precondition failed.
    pub func: String,
    /// Where the assertion (the SOC call) is in the source.
    pub site: Site,
    /// The values of every nondeterministic branch variable `BN`.
    pub branches: Vec<bool>,
    /// The checked variables whose types violate the bound on this path.
    pub violating_vars: Vec<VarId>,
    /// Executed assignments from program start to the assertion.
    pub trace: Vec<TraceStep>,
}

impl Counterexample {
    /// Renders the trace as a human-readable report fragment.
    pub fn render(&self, program: &AiProgram) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "violation of {}() at {} — tainted argument(s): {}",
            self.func,
            self.site,
            self.violating_vars
                .iter()
                .map(|v| format!("${}", program.vars.name(*v)))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            out,
            "  path: [{}]",
            self.branches
                .iter()
                .enumerate()
                .map(|(i, b)| format!("b{i}={}", if *b { "T" } else { "F" }))
                .collect::<Vec<_>>()
                .join(", ")
        );
        for step in &self.trace {
            let rhs = if step.deps.is_empty() {
                format!("{}", step.base)
            } else {
                step.deps
                    .iter()
                    .map(|d| format!("${}", program.vars.name(*d)))
                    .collect::<Vec<_>>()
                    .join(" ⊔ ")
            };
            let _ = writeln!(
                out,
                "  {} ${} := {}",
                step.site,
                program.vars.name(step.var),
                rhs
            );
        }
        out
    }
}

/// Replays the AI along `branches`, returning every assignment executed
/// before reaching assertion `target` (inclusive of none after it).
///
/// `stop` commands are ignored, matching the paper's Figure 5 encoding
/// where `stop` contributes the constraint `true`.
pub fn replay_trace(program: &AiProgram, branches: &[bool], target: AssertId) -> Vec<TraceStep> {
    let mut steps = Vec::new();
    let mut done = false;
    collect(&program.cmds, branches, target, &mut steps, &mut done);
    steps
}

fn collect(
    cmds: &[AiCmd],
    branches: &[bool],
    target: AssertId,
    steps: &mut Vec<TraceStep>,
    done: &mut bool,
) {
    for c in cmds {
        if *done {
            return;
        }
        match c {
            AiCmd::Assign {
                var,
                base,
                deps,
                mask,
                site,
            } => {
                // A sanitizing (masked) assignment is not a pure copy:
                // its value differs from its source.
                let copy_of = if deps.len() == 1 && base.index() == 0 && mask.is_none() {
                    Some(deps[0])
                } else {
                    None
                };
                steps.push(TraceStep {
                    var: *var,
                    base: *base,
                    deps: deps.clone(),
                    mask: *mask,
                    site: site.clone(),
                    copy_of,
                });
            }
            AiCmd::Assert { id, .. } => {
                if *id == target {
                    *done = true;
                    return;
                }
            }
            AiCmd::If {
                branch,
                then_cmds,
                else_cmds,
                ..
            } => {
                let taken = branches.get(branch.0 as usize).copied().unwrap_or(false);
                let side = if taken { then_cmds } else { else_cmds };
                collect(side, branches, target, steps, done);
            }
            AiCmd::Stop { .. } => {}
        }
    }
}

/// Concretely evaluates the AI along `branches` and returns the checked
/// variables of assertion `target` whose types violate its bound on
/// that path, in the assertion's argument order.
///
/// This mirrors the renaming encoding's per-path semantics exactly:
/// every variable starts at ⊥ and each executed assignment applies
/// `t_var = (base ⊔ ⊔deps) ⊓ mask`, so the result equals what a SAT
/// model of that path assigns to the per-variable violation literals.
/// The ALLSAT enumerator uses it to rebuild `violating_vars` for the
/// assignments covered by a generalized blocking cube, where no
/// satisfying model exists per expansion.
///
/// Returns `None` when the path never reaches the assertion (which
/// cannot happen for extensions of a cube that implies its violation
/// literal, since that literal is conjoined with the path guard).
pub fn path_violating_vars(
    program: &AiProgram,
    branches: &[bool],
    target: AssertId,
    lattice: &impl Lattice,
) -> Option<Vec<VarId>> {
    let mut vals: Vec<Elem> = vec![lattice.bottom(); program.vars.len()];
    eval(&program.cmds, branches, target, lattice, &mut vals)
}

fn eval(
    cmds: &[AiCmd],
    branches: &[bool],
    target: AssertId,
    lattice: &impl Lattice,
    vals: &mut Vec<Elem>,
) -> Option<Vec<VarId>> {
    for c in cmds {
        match c {
            AiCmd::Assign {
                var,
                base,
                deps,
                mask,
                ..
            } => {
                let mut v = *base;
                for d in deps {
                    v = lattice.join(v, vals[d.index()]);
                }
                if let Some(m) = mask {
                    v = lattice.meet(v, *m);
                }
                vals[var.index()] = v;
            }
            AiCmd::Assert {
                id,
                vars,
                bound,
                strict,
                ..
            } => {
                if *id == target {
                    return Some(
                        vars.iter()
                            .copied()
                            .filter(|v| {
                                let t = vals[v.index()];
                                !if *strict {
                                    lattice.lt(t, *bound)
                                } else {
                                    lattice.leq(t, *bound)
                                }
                            })
                            .collect(),
                    );
                }
            }
            AiCmd::If {
                branch,
                then_cmds,
                else_cmds,
                ..
            } => {
                let taken = branches.get(branch.0 as usize).copied().unwrap_or(false);
                let side = if taken { then_cmds } else { else_cmds };
                if let Some(r) = eval(side, branches, target, lattice, vals) {
                    return Some(r);
                }
            }
            AiCmd::Stop { .. } => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_front::parse_source;
    use taint_lattice::TwoPoint;
    use webssari_ir::{abstract_interpret, filter_program, FilterOptions, Prelude};

    fn ai_of(src: &str) -> AiProgram {
        let ast = parse_source(src).expect("parse");
        let f = filter_program(
            &ast,
            src,
            "t.php",
            &Prelude::standard(),
            &FilterOptions::default(),
        );
        abstract_interpret(&f)
    }

    #[test]
    fn replay_straight_line() {
        let ai = ai_of("<?php $a = $_GET['x']; $b = $a; echo $b;");
        let steps = replay_trace(&ai, &[], AssertId(0));
        // UIC init of $_GET, then the two program assignments.
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0].copy_of, None); // _GET := const ⊤, not a copy
        let get = ai.vars.lookup("_GET[x]").unwrap();
        let a = ai.vars.lookup("a").unwrap();
        assert_eq!(steps[1].copy_of, Some(get)); // $a := $_GET
        assert_eq!(steps[2].copy_of, Some(a)); // $b := $a
    }

    #[test]
    fn replay_follows_branches() {
        let ai = ai_of("<?php if ($c) { $x = $_GET['a']; } else { $x = 'ok'; } echo $x;");
        let then_steps = replay_trace(&ai, &[true], AssertId(0));
        let else_steps = replay_trace(&ai, &[false], AssertId(0));
        // Step 0 is the shared $_GET init; step 1 is the branch-local
        // assignment to $x.
        assert_eq!(then_steps.len(), 2);
        assert_eq!(else_steps.len(), 2);
        assert_ne!(then_steps[1].deps, else_steps[1].deps);
    }

    #[test]
    fn replay_stops_at_target_assertion() {
        let ai = ai_of("<?php $a = $_GET['x']; echo $a; $b = $a; echo $b;");
        let steps = replay_trace(&ai, &[], AssertId(0));
        assert_eq!(steps.len(), 2, "assignments after assert 0 are excluded");
        let steps = replay_trace(&ai, &[], AssertId(1));
        assert_eq!(steps.len(), 3);
    }

    #[test]
    fn path_violating_vars_follows_branches() {
        let ai = ai_of("<?php if ($c) { $x = $_GET['a']; } else { $x = 'ok'; } echo $x;");
        let l = TwoPoint::new();
        let tainted = path_violating_vars(&ai, &[true], AssertId(0), &l).unwrap();
        assert_eq!(tainted.len(), 1);
        assert_eq!(ai.vars.name(tainted[0]), "x");
        let clean = path_violating_vars(&ai, &[false], AssertId(0), &l).unwrap();
        assert!(clean.is_empty());
    }

    #[test]
    fn path_violating_vars_respects_sanitizer_masks() {
        let ai = ai_of("<?php $x = htmlspecialchars($_GET['a']); echo $x;");
        let l = TwoPoint::new();
        let v = path_violating_vars(&ai, &[], AssertId(0), &l).unwrap();
        assert!(v.is_empty());
    }

    #[test]
    fn path_violating_vars_is_none_for_unreached_assert() {
        let ai = ai_of("<?php if ($c) { echo $_GET['a']; } $y = 'ok'; echo $y;");
        let l = TwoPoint::new();
        // Branch not taken: the first assert (inside the arm) is never
        // reached on this path.
        assert!(path_violating_vars(&ai, &[false], AssertId(0), &l).is_none());
        assert!(path_violating_vars(&ai, &[true], AssertId(0), &l).is_some());
    }

    #[test]
    fn render_mentions_function_and_vars() {
        let ai = ai_of("<?php $q = $_GET['id']; mysql_query($q);");
        let cx = Counterexample {
            assert_id: AssertId(0),
            func: "mysql_query".into(),
            site: Site::synthetic("t.php", "mysql_query($q)"),
            branches: vec![],
            violating_vars: vec![ai.vars.lookup("q").unwrap()],
            trace: replay_trace(&ai, &[], AssertId(0)),
        };
        let text = cx.render(&ai);
        assert!(text.contains("mysql_query"));
        assert!(text.contains("$q"));
    }
}
