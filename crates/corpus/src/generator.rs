//! The project generator.
//!
//! Calibration contract: running `webssari_core::Verifier::verify_project`
//! over a generated project yields exactly `profile.ts_errors`
//! TS-reported vulnerable statements and `profile.bmc_groups` BMC error
//! groups. The generator achieves this by construction:
//!
//! * every BMC group is an independent *root cause* — a variable that
//!   reads an untrusted channel (superglobal, `$HTTP_REFERER`, or a
//!   database fetch) under a group-unique name;
//! * every TS symptom is one sensitive-output statement whose tainted
//!   argument chains back (through single-assignment copies) to exactly
//!   its group's root, so the minimal fixing set has one element per
//!   group;
//! * filler code (sanitized flows, constant output, helper functions,
//!   loops over trusted data) adds bulk and passing assertions but no
//!   violations, and branchy filler is placed after the sinks so it
//!   cannot inflate counterexample enumeration.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use php_front::{parse_source, SourceSet};

use crate::profiles::ProjectProfile;

/// A generated project with its calibration expectations.
#[derive(Clone, Debug)]
pub struct GeneratedProject {
    /// Project name.
    pub name: String,
    /// The profile this was generated from.
    pub profile: ProjectProfile,
    /// The PHP sources.
    pub sources: SourceSet,
    /// Expected TS error count when verified.
    pub expected_ts: usize,
    /// Expected BMC group count when verified.
    pub expected_bmc: usize,
    /// Expected number of vulnerable files.
    pub expected_vulnerable_files: usize,
    /// Total statements across files (each file parsed standalone).
    pub num_statements: usize,
}

/// Generates a project from its profile. Deterministic in the seed.
pub fn generate_project(profile: &ProjectProfile) -> GeneratedProject {
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let num_pages = profile.vuln_pages.max(1);

    // Distribute groups over pages round-robin, then distribute the
    // extra symptoms (ts - bmc) over groups.
    let mut groups_per_page = vec![Vec::<usize>::new(); num_pages];
    let mut symptoms = vec![1usize; profile.bmc_groups];
    let extra = profile.ts_errors.saturating_sub(profile.bmc_groups);
    for _ in 0..extra {
        let g = rng.random_range(0..symptoms.len().max(1));
        if let Some(s) = symptoms.get_mut(g) {
            *s += 1;
        }
    }
    for (g, _) in symptoms.iter().enumerate() {
        groups_per_page[g % num_pages].push(g);
    }

    let mut sources = SourceSet::new();
    sources.add_file("lib.php", lib_source());

    let mut expected_vulnerable_files = 0usize;
    for (page, group_ids) in groups_per_page.iter().enumerate() {
        let mut body = String::from("<?php\ninclude 'lib.php';\n");
        // Leading safe filler (straight-line only).
        body.push_str(&safe_filler_straight(&mut rng, page));
        body.push_str(&flow_filler_straight(page));
        for (idx, &g) in group_ids.iter().enumerate() {
            body.push_str(&render_group(g, symptoms[g], &mut rng, idx == 0));
        }
        // Trailing filler may use branches and loops — after the sinks,
        // so it cannot enlarge any assertion's path set.
        body.push_str(&safe_filler_branchy(&mut rng, page));
        body.push_str(&flow_filler_merged(page));
        if !group_ids.is_empty() {
            expected_vulnerable_files += 1;
        }
        sources.add_file(format!("page{page:02}.php"), body);
    }

    // Create data files up to the total file target and spread the
    // statement deficit across them (a data file may be empty — a bare
    // `<?php` — when there is nothing left to pad).
    let structural = num_pages + 1; // pages + lib
    let data_files = profile.num_files.saturating_sub(structural);
    let mut num_statements = count_statements(&sources);
    let deficit = profile.statements_target.saturating_sub(num_statements);
    if let (false, Some(per)) = (data_files == 0, deficit.checked_div(data_files)) {
        let extra = deficit % data_files;
        for idx in 0..data_files {
            let n = per + usize::from(idx < extra);
            let mut body = String::with_capacity(16 + n * 16);
            body.push_str("<?php\n");
            for i in 0..n {
                body.push_str(&format!("$pad_{idx}_{i} = {i};\n"));
            }
            sources.add_file(format!("data{idx:04}.php"), body);
        }
        num_statements = count_statements(&sources);
    } else if deficit > 0 {
        // No data files budgeted: pad the last page (after its sinks).
        let name = format!("page{:02}.php", num_pages - 1);
        let mut body = sources.file(&name).expect("page exists").to_owned();
        for i in 0..deficit {
            body.push_str(&format!("$pagepad_{i} = {i};\n"));
        }
        sources.add_file(name, body);
        num_statements = count_statements(&sources);
    }

    GeneratedProject {
        name: profile.name.clone(),
        profile: profile.clone(),
        sources,
        expected_ts: profile.ts_errors,
        expected_bmc: profile.bmc_groups,
        expected_vulnerable_files,
        num_statements,
    }
}

/// A SQL-heavy project exercising the structured-SQL sink analyzer and
/// the cross-request store model. Each pair `i` couples a writer page
/// (a tainted value concatenated into `INSERT INTO t{i}`, plus a
/// parameterized `UPDATE` that is clean by construction and a sanitized
/// echo the screening tier discharges) with a reader page (`SELECT`
/// from `t{i}`, fetch, and echo — a second-order flow when verified as
/// a project). Deterministic: no RNG, no filler.
///
/// Calibration per pair: 2 TS errors (the concat write and the raw
/// echo of the fetched row), 2 BMC groups, 2 vulnerable files.
pub fn sql_heavy_project(pairs: usize) -> GeneratedProject {
    let mut sources = SourceSet::new();
    for i in 0..pairs {
        sources.add_file(
            format!("write{i:02}.php"),
            format!(
                "<?php\n\
                 $v{i} = $_POST['v{i}'];\n\
                 mysql_query(\"INSERT INTO t{i} (c) VALUES ('$v{i}')\");\n\
                 $p{i} = $_GET['p{i}'];\n\
                 execute_query(\"UPDATE t{i} SET c = ? WHERE id = {i}\", $p{i});\n\
                 $s{i} = htmlspecialchars($_GET['s{i}']);\n\
                 echo $s{i};\n"
            ),
        );
        sources.add_file(
            format!("read{i:02}.php"),
            format!(
                "<?php\n\
                 $h{i} = mysql_query('SELECT c FROM t{i}');\n\
                 $r{i} = mysql_fetch_array($h{i});\n\
                 echo $r{i};\n\
                 $ok{i} = htmlspecialchars($r{i});\n\
                 echo $ok{i};\n"
            ),
        );
    }
    let num_statements = count_statements(&sources);
    GeneratedProject {
        name: "sql-heavy".to_owned(),
        profile: ProjectProfile {
            name: "sql-heavy".to_owned(),
            activity: 50,
            ts_errors: 2 * pairs,
            bmc_groups: 2 * pairs,
            seed: 0,
            num_files: 2 * pairs,
            vuln_pages: 2 * pairs,
            statements_target: 0,
        },
        sources,
        expected_ts: 2 * pairs,
        expected_bmc: 2 * pairs,
        expected_vulnerable_files: 2 * pairs,
        num_statements,
    }
}

/// Counts statements per file (each file parsed standalone), matching
/// the paper's corpus-size metric.
pub fn count_statements(sources: &SourceSet) -> usize {
    sources
        .iter()
        .map(|(_, src)| parse_source(src).map(|p| p.num_statements()).unwrap_or(0))
        .sum()
}

fn lib_source() -> String {
    r#"<?php
function esc($s) {
    return htmlspecialchars($s);
}
function table_prefix($name) {
    return 'app_' . $name;
}
function render_row($label, $value) {
    echo esc($label);
    echo ': ';
    echo esc($value);
}
function quote_int($v) {
    return intval($v);
}
"#
    .to_owned()
}

/// One vulnerability group: a root-cause read plus `symptoms` sinks
/// whose arguments chain back to it.
fn render_group(g: usize, symptoms: usize, rng: &mut StdRng, dead_prologue: bool) -> String {
    let mut out = String::new();
    // Dead prologue (first group of a page only): a branch-dependent
    // placeholder binding of the group root that the real read below
    // immediately kills on both paths. Flow-insensitive cone slicing
    // must keep it (it assigns a cone variable of the surviving sink,
    // so the branch's merge clauses survive too); the flow tier's
    // dead-definition elimination drops both arms, so the refined
    // encoding is strictly smaller than the cone-only slice. Verdicts
    // are unchanged, and because counterexample enumeration quantifies
    // over the program-order *prefix* of branch decisions, one leading
    // branch per page only doubles that page's enumeration — a
    // per-group prologue would compound exponentially.
    if dead_prologue {
        out.push_str(&format!(
            "if ($stale{g}) {{ $src{g} = $_GET['stale{g}']; }} else {{ $src{g} = 'pending{g}'; }}\n"
        ));
    }
    // Root-cause variants. All bind the group root `$src{g}`.
    match rng.random_range(0..5u32) {
        0 => out.push_str(&format!("$src{g} = $_GET['k{g}'];\n")),
        1 => out.push_str(&format!("$src{g} = $_POST['field{g}'];\n")),
        2 => out.push_str(&format!("$src{g} = $_COOKIE['pref{g}'];\n")),
        3 => out.push_str(&format!("$src{g} = $HTTP_REFERER;\n")),
        _ => {
            out.push_str(&format!(
                "$h{g} = mysql_query('SELECT c FROM t{g}');\n$src{g} = mysql_fetch_array($h{g});\n"
            ));
        }
    }
    for i in 0..symptoms {
        match rng.random_range(0..4u32) {
            // Stored-XSS shape: copy then echo.
            0 => out.push_str(&format!("$out{g}_{i} = $src{g};\necho $out{g}_{i};\n")),
            // SQL injection via interpolation.
            1 => out.push_str(&format!(
                "$q{g}_{i} = \"SELECT * FROM items WHERE ref='$src{g}' LIMIT {i}\";\nmysql_query($q{g}_{i});\n"
            )),
            // SQL injection via concatenation.
            2 => out.push_str(&format!(
                "$w{g}_{i} = 'DELETE FROM log WHERE tag=' . $src{g};\nDoSQL($w{g}_{i});\n"
            )),
            // Direct echo of the root.
            _ => out.push_str(&format!("echo 'row: ', $src{g};\n")),
        }
    }
    out
}

/// Straight-line flow-clean code: each block reads a tainted channel
/// and then *kills* it with a constant before the sink, so the sink is
/// clean flow-sensitively (and, since the typestate is path-composed
/// the same way, statically discharged). Deterministic — no RNG — so it
/// adds a fixed number of passing assertions per page that exercise the
/// sparse tier's kill-by-redefinition path.
fn flow_filler_straight(page: usize) -> String {
    let mut out = String::new();
    for i in 0..7 {
        out.push_str(&format!(
            "$tk_{page}_{i} = $_GET['tk{i}'];\n\
             $tk_{page}_{i} = 'fallback{i}';\n\
             echo $tk_{page}_{i};\n"
        ));
    }
    out
}

/// Branch-merging flow-clean code, placed after all sinks: both arms
/// bind the variable (one sanitized read, one constant), so the join
/// φ is clean and the echo discharges. Exercises φ placement and the
/// sparse analysis at merges. Uses the builtin sanitizer (not the
/// library's `esc`) so the blocks stay clean even when a page is
/// analyzed standalone, without `lib.php` resolved — the mode the
/// screening bench measures.
fn flow_filler_merged(page: usize) -> String {
    let mut out = String::new();
    for i in 0..5 {
        out.push_str(&format!(
            "if ($fsel_{page}_{i}) {{ $fm_{page}_{i} = htmlspecialchars($_GET['fm{i}']); }} \
             else {{ $fm_{page}_{i} = 'default{i}'; }}\n\
             echo $fm_{page}_{i};\n"
        ));
    }
    out
}

/// Straight-line safe code: constants, sanitized flows, trusted output.
fn safe_filler_straight(rng: &mut StdRng, page: usize) -> String {
    let mut out = String::new();
    let n = rng.random_range(3..8u32);
    for i in 0..n {
        match rng.random_range(0..5u32) {
            0 => out.push_str(&format!("$cfg_{page}_{i} = 'value{i}';\n")),
            1 => out.push_str(&format!(
                "$safe_{page}_{i} = esc($_GET['q{i}']);\necho $safe_{page}_{i};\n"
            )),
            2 => out.push_str(&format!(
                "$id_{page}_{i} = intval($_GET['id{i}']);\n$sq_{page}_{i} = \"SELECT * FROM t WHERE id=$id_{page}_{i}\";\nmysql_query($sq_{page}_{i});\n"
            )),
            3 => out.push_str(&format!("echo 'static banner {page}/{i}';\n")),
            _ => out.push_str(&format!(
                "$sum_{page}_{i} = {i} + {page} * 3;\necho $sum_{page}_{i};\n"
            )),
        }
    }
    out
}

/// Branch/loop-bearing safe code, placed after all sinks.
fn safe_filler_branchy(rng: &mut StdRng, page: usize) -> String {
    let mut out = String::new();
    let n = rng.random_range(1..4u32);
    for i in 0..n {
        match rng.random_range(0..3u32) {
            0 => out.push_str(&format!(
                "if ($mode_{page}_{i}) {{ echo 'mode on'; }} else {{ echo 'mode off'; }}\n"
            )),
            1 => out.push_str(&format!(
                "for ($i{page}_{i} = 0; $i{page}_{i} < 3; $i{page}_{i}++) {{ echo $i{page}_{i}; }}\n"
            )),
            _ => out.push_str(&format!(
                "$t_{page}_{i} = table_prefix('audit');\n$lq_{page}_{i} = \"SELECT * FROM $t_{page}_{i}\";\nmysql_query($lq_{page}_{i});\n"
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{figure10_profiles, ProjectProfile};
    use webssari_core::Verifier;

    fn profile(name: &str, ts: usize, bmc: usize, seed: u64) -> ProjectProfile {
        ProjectProfile {
            name: name.into(),
            activity: 50,
            ts_errors: ts,
            bmc_groups: bmc,
            seed,
            num_files: 3,
            vuln_pages: 2.min(bmc).max(usize::from(bmc > 0)),
            statements_target: 0,
        }
    }

    fn check_calibration(p: &ProjectProfile) {
        let project = generate_project(p);
        let report = Verifier::new().verify_project(&project.sources);
        assert!(
            report.failed_files.is_empty(),
            "{}: generated PHP must parse: {:?}",
            p.name,
            report.failed_files
        );
        assert_eq!(
            report.ts_errors(),
            p.ts_errors,
            "{}: TS calibration",
            p.name
        );
        assert_eq!(
            report.bmc_groups(),
            p.bmc_groups,
            "{}: BMC calibration",
            p.name
        );
    }

    #[test]
    fn small_profiles_calibrate_exactly() {
        for (ts, bmc, seed) in [(1, 1, 7), (4, 2, 8), (3, 3, 9), (10, 4, 10), (16, 1, 11)] {
            check_calibration(&profile("test", ts, bmc, seed));
        }
    }

    #[test]
    fn clean_profile_generates_clean_project() {
        let project = generate_project(&profile("clean", 0, 0, 12));
        let report = Verifier::new().verify_project(&project.sources);
        assert!(!report.is_vulnerable());
        assert_eq!(report.ts_errors(), 0);
    }

    #[test]
    fn figure10_sample_rows_calibrate() {
        // A cross-section of the table, including the extremes:
        // PHPCodeCabinet (25 = 25), Crafty Syntax (16 → 1).
        let all = figure10_profiles();
        for name in [
            "GBook MX",
            "PHPCodeCabinet",
            "Crafty Syntax Live Help",
            "PHP Helpdesk",
        ] {
            let p = all.iter().find(|p| p.name == name).unwrap();
            check_calibration(p);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = profile("det", 5, 2, 42);
        let a = generate_project(&p);
        let b = generate_project(&p);
        let srcs_a: Vec<_> = a.sources.iter().collect();
        let srcs_b: Vec<_> = b.sources.iter().collect();
        assert_eq!(srcs_a, srcs_b);
    }

    #[test]
    fn statement_padding_hits_target() {
        let mut p = profile("padded", 2, 1, 13);
        p.statements_target = 1200;
        let project = generate_project(&p);
        assert!(
            project.num_statements >= 1200,
            "got {}",
            project.num_statements
        );
        // Padding must not change the analysis results.
        let report = Verifier::new().verify_project(&project.sources);
        assert_eq!(report.ts_errors(), 2);
        assert_eq!(report.bmc_groups(), 1);
    }

    #[test]
    fn sql_heavy_calibrates_exactly() {
        let project = sql_heavy_project(3);
        let report = Verifier::new().verify_project(&project.sources);
        assert!(report.failed_files.is_empty(), "{:?}", report.failed_files);
        assert_eq!(report.ts_errors(), project.expected_ts);
        assert_eq!(report.bmc_groups(), project.expected_bmc);
        assert_eq!(report.vulnerable_files(), project.expected_vulnerable_files);
        // Every reader page's violation is second-order: its trace
        // starts at the store cell the paired writer filled.
        let text: String = report
            .files
            .iter()
            .map(|f| f.render_text())
            .collect::<Vec<_>>()
            .join("\n");
        for i in 0..3 {
            assert!(
                text.contains(&format!("store::t{i}")),
                "reader {i} must trace through its store cell:\n{text}"
            );
        }
    }

    #[test]
    fn vulnerable_file_expectation_matches() {
        let p = profile("vf", 6, 3, 21);
        let project = generate_project(&p);
        let report = Verifier::new().verify_project(&project.sources);
        assert_eq!(report.vulnerable_files(), project.expected_vulnerable_files);
    }
}
