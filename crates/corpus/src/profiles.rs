//! Project profiles: Figure 10 verbatim, plus the rest of the 230.

use serde::{Deserialize, Serialize};

/// How much filler the generator adds around the calibrated
/// vulnerability structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CorpusScale {
    /// Minimal padding; fast enough for unit tests.
    #[default]
    Small,
    /// Paper scale: 11,848 files and 1,140,091 statements across the
    /// 230 projects.
    Full,
}

/// A project's calibration parameters.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProjectProfile {
    /// Project name (Figure 10 names for the 38 acknowledged ones).
    pub name: String,
    /// SourceForge activity percentile (the table's "A" column).
    pub activity: u8,
    /// TS-reported errors (vulnerable statements) to reproduce.
    pub ts_errors: usize,
    /// BMC-reported error groups (root causes) to reproduce.
    pub bmc_groups: usize,
    /// Deterministic generation seed.
    pub seed: u64,
    /// Number of PHP files to generate (pages + lib + data files).
    pub num_files: usize,
    /// Number of page files that carry vulnerability groups (0 for
    /// clean projects, which still get one clean page).
    pub vuln_pages: usize,
    /// Statement count target for the whole project (0 = no padding).
    pub statements_target: usize,
}

/// Figure 10 rows: `(name, activity, TS-reported, BMC-reported)` for
/// the 38 projects whose developers acknowledged the findings.
///
/// Transcription note: the BMC column of the scanned table sums to the
/// paper's stated total (578) exactly, but the TS column sums to 969
/// against the stated 980. The 11 missing symptoms are attributed here
/// to the largest row, PHP Surveyor (169 → 180), so the per-project
/// table remains consistent with the paper's headline totals
/// (980 vs 578, a 41.0% reduction).
pub const FIGURE10_ROWS: [(&str, u8, usize, usize); 38] = [
    ("GBook MX", 60, 4, 2),
    ("AthenaRMS", 0, 3, 2),
    ("PHPCodeCabinet", 71, 25, 25),
    ("BolinOS", 94, 3, 3),
    ("PHP Surveyor", 99, 180, 90),
    ("Booby", 90, 5, 4),
    ("ByteHoard", 98, 2, 2),
    ("PHPRecipeBook", 99, 11, 8),
    ("phpLDAPadmin", 97, 25, 13),
    ("Segue CMS", 77, 11, 9),
    ("Moregroupware", 99, 7, 7),
    ("iNuke", 0, 3, 3),
    ("InfoCentral", 82, 206, 57),
    ("WebMovieDB", 24, 7, 5),
    ("TestLink", 88, 69, 48),
    ("Crafty Syntax Live Help", 96, 16, 1),
    ("ILIAS open source", 20, 2, 2),
    ("PHP Multiple Newsletters", 68, 30, 30),
    ("International Suspect Vigilance Nexus", 0, 20, 12),
    ("SquirrelMail", 99, 7, 7),
    ("PHPMyList", 69, 10, 4),
    ("EGroupWare", 99, 4, 4),
    ("PHPFriendlyAdmin", 87, 16, 16),
    ("PHP Helpdesk", 87, 1, 1),
    ("Media Mate", 0, 53, 16),
    ("Obelus Helpdesk", 22, 8, 6),
    ("eDreamers", 80, 7, 1),
    ("Mad.Thought", 66, 4, 4),
    ("PHPLetter", 79, 23, 23),
    ("WebArchive", 2, 7, 2),
    ("Nalanda", 58, 27, 8),
    ("Site@School", 94, 46, 40),
    ("PHPList", 0, 16, 1),
    ("PHPPgAdmin", 98, 3, 3),
    ("Anonymous Mailer", 73, 7, 7),
    ("PHP Support Tickets", 0, 40, 40),
    ("Norfolk Household Financial Manager", 0, 60, 60),
    ("Tiki CMS Groupware", 99, 12, 12),
];

/// Paper §5 corpus statistics reproduced by the full-scale corpus.
pub mod paper_stats {
    /// Projects sampled from SourceForge.
    pub const PROJECTS: usize = 230;
    /// PHP files across the corpus.
    pub const FILES: usize = 11_848;
    /// Statements across the corpus.
    pub const STATEMENTS: usize = 1_140_091;
    /// Projects identified as having defective code.
    pub const VULNERABLE_PROJECTS: usize = 69;
    /// Developers who acknowledged the findings.
    pub const ACKNOWLEDGED: usize = 38;
    /// Files identified as vulnerable by TS.
    pub const VULNERABLE_FILES: usize = 515;
    /// TS-reported errors over the acknowledged projects.
    pub const TS_ERRORS: usize = 980;
    /// BMC-reported error groups over the acknowledged projects.
    pub const BMC_GROUPS: usize = 578;
}

/// The 38 acknowledged-project profiles of Figure 10.
pub fn figure10_profiles() -> Vec<ProjectProfile> {
    FIGURE10_ROWS
        .iter()
        .enumerate()
        .map(|(i, &(name, activity, ts, bmc))| {
            let num_files = (bmc / 6 + 2).min(12);
            ProjectProfile {
                name: name.to_owned(),
                activity,
                ts_errors: ts,
                bmc_groups: bmc,
                seed: 0xF16_0010 + i as u64,
                num_files,
                vuln_pages: (num_files - 1).min(bmc).max(1),
                statements_target: 0,
            }
        })
        .collect()
}

/// All 230 project profiles (38 acknowledged + 31 unacknowledged
/// vulnerable + 161 clean), with file and statement targets set by the
/// scale.
pub(crate) fn sourceforge_230_profiles(scale: CorpusScale) -> Vec<ProjectProfile> {
    let mut out = figure10_profiles();
    // 31 vulnerable projects whose developers did not respond: modest
    // error counts (deterministic spread).
    for i in 0..31usize {
        let ts = 2 + (i * 7) % 11;
        let bmc = 1 + ((ts - 1) * ((i % 3) + 1)) / 3;
        out.push(ProjectProfile {
            name: format!("unacknowledged-{:02}", i + 1),
            activity: ((i * 13) % 100) as u8,
            ts_errors: ts,
            bmc_groups: bmc.min(ts),
            seed: 0xACE_0000 + i as u64,
            num_files: 3,
            vuln_pages: 2.min(bmc.min(ts)),
            statements_target: 0,
        });
    }
    // 161 clean projects.
    for i in 0..161 {
        out.push(ProjectProfile {
            name: format!("clean-{:03}", i + 1),
            activity: ((i * 31) % 100) as u8,
            ts_errors: 0,
            bmc_groups: 0,
            seed: 0xC1EA_0000 + i as u64,
            num_files: 2,
            vuln_pages: 0,
            statements_target: 0,
        });
    }
    debug_assert_eq!(out.len(), paper_stats::PROJECTS);
    // Allocate the paper's 515 vulnerable files across the 69
    // vulnerable projects, proportional to their group counts and
    // capped so every page carries at least one group.
    let total_groups: usize = out.iter().map(|p| p.bmc_groups).sum();
    let mut allocated = 0usize;
    for p in out.iter_mut() {
        if p.bmc_groups == 0 {
            p.vuln_pages = 0;
            continue;
        }
        let share =
            (p.bmc_groups * paper_stats::VULNERABLE_FILES / total_groups).clamp(1, p.bmc_groups);
        p.vuln_pages = share;
        allocated += share;
    }
    // Distribute the rounding remainder to projects with slack.
    let mut remainder = paper_stats::VULNERABLE_FILES.saturating_sub(allocated);
    while remainder > 0 {
        let mut progressed = false;
        for p in out.iter_mut() {
            if remainder == 0 {
                break;
            }
            if p.bmc_groups > p.vuln_pages {
                p.vuln_pages += 1;
                remainder -= 1;
                progressed = true;
            }
        }
        assert!(progressed, "cannot place all vulnerable files");
    }
    for p in out.iter_mut() {
        p.num_files = p.num_files.max(p.vuln_pages + 1);
    }
    if scale == CorpusScale::Full {
        // Distribute the paper's file and statement totals across
        // projects exactly, weighted so bigger projects get more of
        // both. Each project already needs its structural files
        // (pages + lib); the surplus becomes data files.
        let base: usize = out.iter().map(|p| p.num_files).sum();
        let surplus_files = paper_stats::FILES.saturating_sub(base);
        let weights: Vec<usize> = (0..out.len()).map(|i| 1 + (i * 37) % 17).collect();
        let total_weight: usize = weights.iter().sum();
        let n = out.len();
        let mut files_given = 0usize;
        let mut stmts_given = 0usize;
        for (i, p) in out.iter_mut().enumerate() {
            let (extra_files, stmts) = if i + 1 == n {
                (
                    surplus_files - files_given,
                    paper_stats::STATEMENTS - stmts_given,
                )
            } else {
                (
                    surplus_files * weights[i] / total_weight,
                    paper_stats::STATEMENTS * weights[i] / total_weight,
                )
            };
            p.num_files += extra_files;
            p.statements_target = stmts;
            files_given += extra_files;
            stmts_given += stmts;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_row_totals() {
        let ts: usize = FIGURE10_ROWS.iter().map(|r| r.2).sum();
        let bmc: usize = FIGURE10_ROWS.iter().map(|r| r.3).sum();
        assert_eq!(ts, paper_stats::TS_ERRORS);
        assert_eq!(bmc, paper_stats::BMC_GROUPS);
    }

    #[test]
    fn every_row_has_ts_at_least_bmc() {
        for &(name, _, ts, bmc) in &FIGURE10_ROWS {
            assert!(ts >= bmc, "{name}: groups cannot exceed symptoms");
            assert!(bmc >= 1, "{name}: acknowledged projects are vulnerable");
        }
    }

    #[test]
    fn profiles_are_deterministic() {
        assert_eq!(figure10_profiles(), figure10_profiles());
        let a = sourceforge_230_profiles(CorpusScale::Small);
        let b = sourceforge_230_profiles(CorpusScale::Small);
        assert_eq!(a, b);
    }

    #[test]
    fn full_scale_distributes_files_and_statements_exactly() {
        let profiles = sourceforge_230_profiles(CorpusScale::Full);
        let files: usize = profiles.iter().map(|p| p.num_files).sum();
        let stmts: usize = profiles.iter().map(|p| p.statements_target).sum();
        assert_eq!(files, paper_stats::FILES);
        assert_eq!(stmts, paper_stats::STATEMENTS);
    }

    #[test]
    fn vulnerable_file_allocation_matches_paper() {
        let profiles = sourceforge_230_profiles(CorpusScale::Small);
        let vuln_files: usize = profiles.iter().map(|p| p.vuln_pages).sum();
        assert_eq!(vuln_files, paper_stats::VULNERABLE_FILES);
        for p in &profiles {
            assert!(
                p.vuln_pages <= p.bmc_groups || p.bmc_groups == 0,
                "{}: every vulnerable page needs a group",
                p.name
            );
            assert!(p.num_files > p.vuln_pages);
        }
    }

    #[test]
    fn corpus_has_69_vulnerable_projects() {
        let profiles = sourceforge_230_profiles(CorpusScale::Small);
        let vulnerable = profiles.iter().filter(|p| p.bmc_groups > 0).count();
        assert_eq!(vulnerable, paper_stats::VULNERABLE_PROJECTS);
    }
}
