//! Synthetic SourceForge-like PHP corpus, calibrated to the paper's
//! evaluation (§5, Figure 10).
//!
//! The original experiment downloaded 230 PHP projects from
//! SourceForge.net (11,848 files, 1,140,091 statements); 69 were found
//! vulnerable and 38 developers acknowledged the reports. Those
//! tarballs from 2003 are unobtainable, so this crate *generates* a
//! corpus whose vulnerability structure reproduces the paper's
//! measurements:
//!
//! * [`figure10_profiles`] carries the 38 acknowledged projects
//!   verbatim from Figure 10 — project name, SourceForge activity, and
//!   the TS/BMC error counts — and [`generate_project`] materializes
//!   PHP source whose *analysis results* hit those counts exactly: each
//!   BMC error group becomes a distinct root cause (an unsanitized
//!   input read) whose taint propagates to as many sensitive-output
//!   statements as the group has TS symptoms.
//! * [`Corpus::sourceforge_230`] builds the whole 230-project corpus
//!   (the 38 acknowledged + 31 more vulnerable + 161 clean projects)
//!   with file and statement counts matching §5 at full scale.
//!
//! The generated PHP is real input to the pipeline — lexed, parsed,
//! filtered, encoded to CNF, and solved — not a mock: the calibration
//! only controls *how many* root causes and symptoms exist, and the
//! test suite re-derives the Figure 10 numbers by running the verifier.
//!
//! # Examples
//!
//! ```
//! use corpus::{figure10_profiles, generate_project};
//! use webssari_core::Verifier;
//!
//! let profile = figure10_profiles()
//!     .into_iter()
//!     .find(|p| p.name == "PHP Helpdesk")
//!     .unwrap();
//! let project = generate_project(&profile);
//! let report = Verifier::new().verify_project(&project.sources);
//! assert_eq!(report.ts_errors(), 1);
//! assert_eq!(report.bmc_groups(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod profiles;

pub use generator::{generate_project, sql_heavy_project, GeneratedProject};
pub use profiles::{figure10_profiles, paper_stats, CorpusScale, ProjectProfile};

use php_front::SourceSet;

/// A full multi-project corpus.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    /// The generated projects.
    pub projects: Vec<GeneratedProject>,
}

impl Corpus {
    /// Generates the 38 acknowledged projects of Figure 10.
    pub fn figure10() -> Self {
        Corpus {
            projects: figure10_profiles().iter().map(generate_project).collect(),
        }
    }

    /// Generates the whole 230-project corpus of §5 at the given scale.
    ///
    /// At [`CorpusScale::Full`], the corpus has 230 projects, 11,848
    /// files, and is padded to 1,140,091 statements; 69 projects are
    /// vulnerable. Smaller scales keep the project structure but shrink
    /// the padding, for tests.
    pub fn sourceforge_230(scale: CorpusScale) -> Self {
        Corpus {
            projects: profiles::sourceforge_230_profiles(scale)
                .iter()
                .map(generate_project)
                .collect(),
        }
    }

    /// Total files across projects.
    pub fn num_files(&self) -> usize {
        self.projects.iter().map(|p| p.sources.len()).sum()
    }

    /// Sum of the projects' expected TS error counts.
    pub fn expected_ts_errors(&self) -> usize {
        self.projects.iter().map(|p| p.expected_ts).sum()
    }

    /// Sum of the projects' expected BMC group counts.
    pub fn expected_bmc_groups(&self) -> usize {
        self.projects.iter().map(|p| p.expected_bmc).sum()
    }

    /// Number of projects expected to be vulnerable.
    pub fn expected_vulnerable_projects(&self) -> usize {
        self.projects.iter().filter(|p| p.expected_bmc > 0).count()
    }

    /// Concatenated view of every project's sources (for whole-corpus
    /// statement counting).
    pub fn all_sources(&self) -> impl Iterator<Item = (&str, &SourceSet)> {
        self.projects.iter().map(|p| (p.name.as_str(), &p.sources))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_totals_match_the_paper() {
        let c = Corpus::figure10();
        assert_eq!(c.projects.len(), 38);
        assert_eq!(c.expected_ts_errors(), 980);
        assert_eq!(c.expected_bmc_groups(), 578);
        // The headline: 41.0% reduction.
        let reduction: f64 = 1.0 - 578.0 / 980.0;
        assert!((reduction - 0.410).abs() < 0.0005);
    }

    #[test]
    fn corpus_230_shape() {
        let c = Corpus::sourceforge_230(CorpusScale::Small);
        assert_eq!(c.projects.len(), 230);
        assert_eq!(c.expected_vulnerable_projects(), 69);
        assert!(c.expected_ts_errors() >= 980);
    }
}
