//! Structured SQL sink modeling and the cross-request store summary.
//!
//! The paper's lattice treats every sink as an opaque SOC precondition:
//! `mysql_query($q)` asserts `t_q < τ` no matter *where* in the query
//! tainted data lands. That misses the two largest real-world web
//! vulnerability classes:
//!
//! * **SQL injection depends on structure.** Tainted data bound to a
//!   parameterized position (`?` placeholders) is safe; tainted data
//!   concatenated into the query *text* is the actual SQLI
//!   precondition. [`SqlTemplate`] reconstructs the query template from
//!   the literal/hole structure of the argument expression and
//!   classifies every hole as concatenated-into-text.
//! * **Stored (second-order) taint flows through the database.** An
//!   `INSERT` of tainted data in request A makes the matching `SELECT`
//!   in request B an untrusted input. [`StoreSummary`] is the
//!   cross-file map from store identity (table name, `$_SESSION`, file
//!   path) to the join of every written level, composed over a whole
//!   source set and consumed by the filter when lowering read sites.
//!
//! The crate is deliberately small and front-end-agnostic: templates
//! are generic over the hole type `V` (the IR instantiates `V = VarId`)
//! and the summary speaks plain strings, so it serializes trivially and
//! never depends on the IR.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use taint_lattice::{Elem, Lattice};

// ---------------------------------------------------------------------
// SQL templates
// ---------------------------------------------------------------------

/// The statement class of a reconstructed query template.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SqlStmtKind {
    /// `SELECT …` — a store read.
    Select,
    /// `INSERT …` — a store write.
    Insert,
    /// `UPDATE …` — a store write.
    Update,
    /// `DELETE …` — a store write.
    Delete,
    /// `REPLACE …` — a store write.
    Replace,
    /// Anything else (or a template whose leading keyword is dynamic).
    Other,
}

impl SqlStmtKind {
    /// Whether this statement class writes the store.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            SqlStmtKind::Insert | SqlStmtKind::Update | SqlStmtKind::Delete | SqlStmtKind::Replace
        )
    }

    /// The keyword, for diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            SqlStmtKind::Select => "SELECT",
            SqlStmtKind::Insert => "INSERT",
            SqlStmtKind::Update => "UPDATE",
            SqlStmtKind::Delete => "DELETE",
            SqlStmtKind::Replace => "REPLACE",
            SqlStmtKind::Other => "SQL",
        }
    }
}

/// One piece of a query-building expression: a string literal or a
/// *hole* where a non-literal value is concatenated/interpolated in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TplPart<V> {
    /// Literal query text.
    Lit(String),
    /// A concatenated-in value (a variable, for the IR instantiation).
    Hole(V),
}

/// A reconstructed SQL query template: the literal skeleton of the
/// query with every concatenated-in value as a hole.
///
/// ```
/// use webssari_sinks::{SqlStmtKind, SqlTemplate, TplPart};
///
/// let t = SqlTemplate::parse(vec![
///     TplPart::Lit("INSERT INTO guestbook VALUES ('".into()),
///     TplPart::Hole("msg"),
///     TplPart::Lit("')".into()),
/// ]);
/// assert_eq!(t.stmt, SqlStmtKind::Insert);
/// assert_eq!(t.table.as_deref(), Some("guestbook"));
/// assert_eq!(t.holes(), ["msg"]);
/// assert_eq!(t.placeholders, 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqlTemplate<V> {
    /// Statement class, from the leading keyword.
    pub stmt: SqlStmtKind,
    /// The table the statement targets (`INTO`/`FROM`/`UPDATE`
    /// operand), `None` when it is itself dynamic.
    pub table: Option<String>,
    /// Number of `?` parameter placeholders in the literal text.
    pub placeholders: usize,
    /// The template in source order.
    pub parts: Vec<TplPart<V>>,
}

impl<V> SqlTemplate<V> {
    /// Analyzes a literal/hole sequence into a template.
    pub fn parse(parts: Vec<TplPart<V>>) -> Self {
        // Tokenize: identifier-ish words from literal parts, one opaque
        // token per hole. `?` placeholders are counted, not tokenized.
        #[derive(PartialEq)]
        enum Tok {
            Word(String),
            Hole,
        }
        let mut toks: Vec<Tok> = Vec::new();
        let mut placeholders = 0usize;
        for p in &parts {
            match p {
                TplPart::Hole(_) => toks.push(Tok::Hole),
                TplPart::Lit(s) => {
                    let mut word = String::new();
                    for c in s.chars() {
                        if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                            word.push(c);
                        } else {
                            if c == '?' {
                                placeholders += 1;
                            }
                            if !word.is_empty() {
                                toks.push(Tok::Word(std::mem::take(&mut word)));
                            }
                        }
                    }
                    if !word.is_empty() {
                        toks.push(Tok::Word(word));
                    }
                }
            }
        }
        let keyword = |t: &Tok, k: &str| matches!(t, Tok::Word(w) if w.eq_ignore_ascii_case(k));
        let stmt = match toks.first() {
            Some(t) if keyword(t, "select") => SqlStmtKind::Select,
            Some(t) if keyword(t, "insert") => SqlStmtKind::Insert,
            Some(t) if keyword(t, "update") => SqlStmtKind::Update,
            Some(t) if keyword(t, "delete") => SqlStmtKind::Delete,
            Some(t) if keyword(t, "replace") => SqlStmtKind::Replace,
            _ => SqlStmtKind::Other,
        };
        // The table operand: the token right after INTO (insert/replace),
        // FROM (select/delete), or the UPDATE keyword itself. A hole in
        // that position means the table identity is dynamic.
        let after = |k: &str| {
            toks.iter()
                .position(|t| keyword(t, k))
                .and_then(|i| toks.get(i + 1))
                .and_then(|t| match t {
                    Tok::Word(w) => Some(w.to_ascii_lowercase()),
                    Tok::Hole => None,
                })
        };
        let table = match stmt {
            SqlStmtKind::Insert | SqlStmtKind::Replace => after("into"),
            SqlStmtKind::Select | SqlStmtKind::Delete => after("from"),
            SqlStmtKind::Update => after("update"),
            SqlStmtKind::Other => None,
        };
        SqlTemplate {
            stmt,
            table,
            placeholders,
            parts,
        }
    }

    /// The holes, in source order: every value concatenated into the
    /// query *text* (the SQLI-relevant positions).
    pub fn holes(&self) -> Vec<V>
    where
        V: Clone,
    {
        self.parts
            .iter()
            .filter_map(|p| match p {
                TplPart::Hole(v) => Some(v.clone()),
                TplPart::Lit(_) => None,
            })
            .collect()
    }

    /// Whether the template resolved to a recognized statement class.
    pub fn is_resolved(&self) -> bool {
        self.stmt != SqlStmtKind::Other
    }

    /// Whether the statement writes a store with a known identity.
    pub fn store_write_key(&self) -> Option<&str> {
        if self.stmt.is_write() {
            self.table.as_deref()
        } else {
            None
        }
    }
}

/// Per-assertion metadata for SQL-structured sink preconditions:
/// everything a report or lint needs to explain *why* the argument is
/// checked structurally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SqlSinkMeta {
    /// Statement class of the query template.
    pub stmt: SqlStmtKind,
    /// Target table, when its identity is static.
    pub table: Option<String>,
    /// `?` placeholders in the literal text (parameterized positions).
    pub placeholders: usize,
}

// ---------------------------------------------------------------------
// Store summary
// ---------------------------------------------------------------------

/// Prefix of the synthetic IR variables that model store cells
/// (`store::<key>`) and per-site write levels (`store::<key>#w<k>`).
pub const STORE_VAR_PREFIX: &str = "store::";

/// The summary key recording writes whose store identity could not be
/// resolved (a dynamic table name): they may have hit *any* store.
pub const WILDCARD_KEY: &str = "*";

/// The synthetic IR variable holding a store cell's read level.
pub fn store_cell_name(key: &str) -> String {
    format!("{STORE_VAR_PREFIX}{key}")
}

/// The synthetic IR variable capturing the level of one store write.
pub fn store_write_name(key: &str, k: usize) -> String {
    format!("{STORE_VAR_PREFIX}{key}#w{k}")
}

/// Whether an IR variable name is a store *cell* (as opposed to a
/// per-site write variable, which carries a `#` discriminator).
pub fn is_store_cell(name: &str) -> bool {
    name.starts_with(STORE_VAR_PREFIX) && !name.contains('#')
}

/// The cell key of a store cell variable name.
pub fn store_cell_key(name: &str) -> Option<&str> {
    if is_store_cell(name) {
        Some(&name[STORE_VAR_PREFIX.len()..])
    } else {
        None
    }
}

/// One store's accumulated write information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreEntry {
    /// Join of the levels of every value written to this store.
    pub level: Elem,
    /// Human-readable write sites (`file:line — snippet`), for
    /// source-after-sink provenance in reports.
    pub sites: Vec<String>,
}

/// The cross-request store model: store identity → written levels.
///
/// Built in a first pass over every file of a source set, then consumed
/// by the filter when lowering store *reads*: a `SELECT` + fetch of
/// table `t` reads at `read_level("t")`. Missing entries read at `⊤`
/// (the legacy conservative treatment of database input), so an empty
/// summary reproduces the original pipeline exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreSummary {
    entries: BTreeMap<String, StoreEntry>,
}

impl StoreSummary {
    /// An empty summary (every read is `⊤`, the legacy behavior).
    pub fn new() -> Self {
        StoreSummary::default()
    }

    /// Whether no writes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct store identities written.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Records one write of `level` to store `key`.
    pub fn record(&mut self, key: &str, level: Elem, site: &str, lattice: &impl Lattice) {
        match self.entries.get_mut(key) {
            Some(e) => {
                e.level = lattice.join(e.level, level);
                if !e.sites.iter().any(|s| s == site) {
                    e.sites.push(site.to_owned());
                }
            }
            None => {
                self.entries.insert(
                    key.to_owned(),
                    StoreEntry {
                        level,
                        sites: vec![site.to_owned()],
                    },
                );
            }
        }
    }

    /// Merges another summary in (composition across the include graph
    /// / source set: levels join, sites union).
    pub fn merge(&mut self, other: &StoreSummary, lattice: &impl Lattice) {
        for (key, entry) in &other.entries {
            for site in &entry.sites {
                self.record(key, entry.level, site, lattice);
            }
        }
    }

    /// The direct entry for one store identity, if any write resolved
    /// to it.
    pub fn entry(&self, key: &str) -> Option<&StoreEntry> {
        self.entries.get(key)
    }

    /// The level a read of store `key` observes.
    ///
    /// * No direct entry: `⊤` — the store was never modeled as written,
    ///   so its content is untrusted input exactly as the legacy
    ///   pipeline treated every database read. (A wildcard entry does
    ///   not downgrade this: `⊤` already dominates it.)
    /// * A direct entry: its level joined with any wildcard writes,
    ///   which may have targeted this store under a dynamic name.
    pub fn read_level(&self, key: &str, lattice: &impl Lattice) -> Elem {
        match self.entries.get(key) {
            None => lattice.top(),
            Some(e) => {
                let wild = self
                    .entries
                    .get(WILDCARD_KEY)
                    .map(|w| w.level)
                    .unwrap_or_else(|| lattice.bottom());
                lattice.join(e.level, wild)
            }
        }
    }

    /// Write sites feeding a read of `key` (direct + wildcard), for
    /// source-after-sink provenance.
    pub fn provenance(&self, key: &str) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        if let Some(e) = self.entries.get(key) {
            out.extend(e.sites.iter().map(String::as_str));
        }
        if key != WILDCARD_KEY {
            if let Some(w) = self.entries.get(WILDCARD_KEY) {
                out.extend(w.sites.iter().map(String::as_str));
            }
        }
        out
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StoreEntry)> {
        self.entries.iter().map(|(k, e)| (k.as_str(), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taint_lattice::TwoPoint;

    fn tpl(parts: Vec<TplPart<&'static str>>) -> SqlTemplate<&'static str> {
        SqlTemplate::parse(parts)
    }

    #[test]
    fn insert_with_concat_hole() {
        let t = tpl(vec![
            TplPart::Lit("INSERT INTO tickets_tickets VALUES ('".into()),
            TplPart::Hole("subject"),
            TplPart::Lit("', now())".into()),
        ]);
        assert_eq!(t.stmt, SqlStmtKind::Insert);
        assert!(t.stmt.is_write());
        assert_eq!(t.table.as_deref(), Some("tickets_tickets"));
        assert_eq!(t.store_write_key(), Some("tickets_tickets"));
        assert_eq!(t.holes(), ["subject"]);
        assert_eq!(t.placeholders, 0);
    }

    #[test]
    fn parameterized_query_counts_placeholders() {
        let t = tpl(vec![TplPart::Lit(
            "INSERT INTO guestbook (author, msg) VALUES (?, ?)".into(),
        )]);
        assert_eq!(t.stmt, SqlStmtKind::Insert);
        assert_eq!(t.placeholders, 2);
        assert!(t.holes().is_empty());
    }

    #[test]
    fn select_and_delete_take_table_after_from() {
        let s = tpl(vec![TplPart::Lit("SELECT c FROM t3 WHERE id=1".into())]);
        assert_eq!(s.stmt, SqlStmtKind::Select);
        assert_eq!(s.table.as_deref(), Some("t3"));
        assert_eq!(s.store_write_key(), None, "selects do not write");
        let d = tpl(vec![
            TplPart::Lit("DELETE FROM log WHERE tag=".into()),
            TplPart::Hole("src"),
        ]);
        assert_eq!(d.stmt, SqlStmtKind::Delete);
        assert_eq!(d.store_write_key(), Some("log"));
    }

    #[test]
    fn update_and_replace_tables() {
        let u = tpl(vec![TplPart::Lit("UPDATE users SET name='x'".into())]);
        assert_eq!(u.stmt, SqlStmtKind::Update);
        assert_eq!(u.table.as_deref(), Some("users"));
        let r = tpl(vec![TplPart::Lit("REPLACE INTO cache VALUES (1)".into())]);
        assert_eq!(r.stmt, SqlStmtKind::Replace);
        assert_eq!(r.table.as_deref(), Some("cache"));
    }

    #[test]
    fn keywords_are_case_insensitive_and_tables_lowercased() {
        let t = tpl(vec![TplPart::Lit("insert into GuestBook values(1)".into())]);
        assert_eq!(t.stmt, SqlStmtKind::Insert);
        assert_eq!(t.table.as_deref(), Some("guestbook"));
    }

    #[test]
    fn dynamic_table_is_none() {
        let t = tpl(vec![
            TplPart::Lit("SELECT * FROM ".into()),
            TplPart::Hole("tbl"),
        ]);
        assert_eq!(t.stmt, SqlStmtKind::Select);
        assert_eq!(t.table, None);
        let w = tpl(vec![
            TplPart::Lit("INSERT INTO ".into()),
            TplPart::Hole("tbl"),
            TplPart::Lit(" VALUES (1)".into()),
        ]);
        assert_eq!(w.stmt, SqlStmtKind::Insert);
        assert_eq!(w.store_write_key(), None, "dynamic identity");
    }

    #[test]
    fn non_sql_text_is_other() {
        for text in ["x=", "WHERE sid=", "hello world", ""] {
            let t = tpl(vec![TplPart::Lit(text.into()), TplPart::Hole("v")]);
            assert_eq!(t.stmt, SqlStmtKind::Other, "{text:?}");
            assert!(!t.is_resolved());
            assert_eq!(t.store_write_key(), None);
        }
        let leading_hole = tpl(vec![TplPart::Hole("q")]);
        assert_eq!(leading_hole.stmt, SqlStmtKind::Other);
    }

    #[test]
    fn store_variable_naming_round_trips() {
        let cell = store_cell_name("guestbook");
        assert_eq!(cell, "store::guestbook");
        assert!(is_store_cell(&cell));
        assert_eq!(store_cell_key(&cell), Some("guestbook"));
        let write = store_write_name("guestbook", 2);
        assert_eq!(write, "store::guestbook#w2");
        assert!(!is_store_cell(&write), "write vars are not cells");
        assert_eq!(store_cell_key(&write), None);
        assert!(!is_store_cell("guestbook"));
    }

    #[test]
    fn empty_summary_reads_top_everywhere() {
        let l = TwoPoint::new();
        let s = StoreSummary::new();
        assert!(s.is_empty());
        assert_eq!(s.read_level("anything", &l), l.top());
    }

    #[test]
    fn record_joins_levels_and_collects_sites() {
        let l = TwoPoint::new();
        let mut s = StoreSummary::new();
        s.record("gb", TwoPoint::UNTAINTED, "a.php:3", &l);
        assert_eq!(s.read_level("gb", &l), TwoPoint::UNTAINTED);
        s.record("gb", TwoPoint::TAINTED, "b.php:7", &l);
        assert_eq!(s.read_level("gb", &l), TwoPoint::TAINTED);
        assert_eq!(s.provenance("gb"), ["a.php:3", "b.php:7"]);
        // Unwritten stores still read ⊤ (legacy behavior).
        assert_eq!(s.read_level("other", &l), l.top());
    }

    #[test]
    fn wildcard_joins_into_direct_entries_only() {
        let l = TwoPoint::new();
        let mut s = StoreSummary::new();
        s.record("gb", TwoPoint::UNTAINTED, "a.php:3", &l);
        s.record(WILDCARD_KEY, TwoPoint::TAINTED, "x.php:1", &l);
        // A cleanly-written store is poisoned by a dynamic write…
        assert_eq!(s.read_level("gb", &l), TwoPoint::TAINTED);
        assert_eq!(s.provenance("gb"), ["a.php:3", "x.php:1"]);
        // …and never-written stores were already ⊤.
        assert_eq!(s.read_level("other", &l), l.top());
    }

    #[test]
    fn merge_composes_summaries() {
        let l = TwoPoint::new();
        let mut a = StoreSummary::new();
        a.record("t1", TwoPoint::UNTAINTED, "a.php:1", &l);
        let mut b = StoreSummary::new();
        b.record("t1", TwoPoint::TAINTED, "b.php:2", &l);
        b.record("t2", TwoPoint::UNTAINTED, "b.php:5", &l);
        a.merge(&b, &l);
        assert_eq!(a.len(), 2);
        assert_eq!(a.read_level("t1", &l), TwoPoint::TAINTED);
        assert_eq!(a.read_level("t2", &l), TwoPoint::UNTAINTED);
        assert_eq!(a.provenance("t1"), ["a.php:1", "b.php:2"]);
        // Merge is idempotent: sites dedup, levels are a join.
        let before = a.clone();
        a.merge(&b, &l);
        assert_eq!(a, before);
    }
}
