//! Tiered verification: static discharge before bounded model checking.
//!
//! The paper's architecture is already two-tier — a polynomial
//! typestate pass (TS) and an exact BMC. [`screen`] makes the tiers
//! cooperate: assertions the TS pass proves clean are *discharged
//! statically* with a proof tag, and only the survivors (with their
//! cones) are handed to the SAT encoder.
//!
//! # Why discharge is sound
//!
//! TS walks the same loop-free AI with the join-merge rule: at every
//! program point each variable carries the join of its values over all
//! paths. Every transfer function `t = (base ⊔ ⊔deps) ⊓ mask` is
//! monotone, so the TS state at an assertion over-approximates the
//! value on *every* concrete path, and the violation predicate
//! (`¬(t < bound)` resp. `¬(t ≤ bound)`) is upward-closed. A TS-clean
//! assertion therefore has no violating path, which is exactly what the
//! BMC would (expensively) confirm: discharging it cannot change the
//! verdict, the counterexample set, or any downstream fix plan.

use std::collections::{HashMap, HashSet};

use taint_lattice::{Elem, Lattice};
use typestate::TsResult;
use webssari_ir::{AiCmd, AiProgram, AssertId, Site, VarId};

use crate::cone::{cones, slice_with_cones, AssertCone};

/// How a discharged assertion was proven safe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DischargeProof {
    /// The cone contains no tainted source at all: the join of every
    /// cone assignment's constant base already satisfies the bound, so
    /// no path can violate regardless of control flow.
    TaintFreeCone,
    /// The sparse flow-sensitive analysis proved every SSA reaching
    /// definition at the assertion within the bound — the strongest
    /// evidence for cones that *do* see taint (the taint is killed or
    /// sanitized on every path before the sink).
    FlowClean,
    /// The cone does see taint, but the typestate join-merge state at
    /// the assertion satisfies the bound — an over-approximation of
    /// every path, hence no violating path exists. With the flow tier
    /// enabled this remains only as a defensive fallback: the flow
    /// verdict computes the same join at merges, so every
    /// typestate-clean assertion is expected to upgrade to
    /// [`DischargeProof::FlowClean`].
    TypestateClean,
}

impl DischargeProof {
    /// Stable tag for reports and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            DischargeProof::TaintFreeCone => "taint-free-cone",
            DischargeProof::FlowClean => "flow-clean",
            DischargeProof::TypestateClean => "typestate-clean",
        }
    }
}

/// One statically discharged assertion.
#[derive(Clone, Debug)]
pub struct Discharged {
    /// The discharged assertion.
    pub id: AssertId,
    /// The SOC function whose precondition it is.
    pub func: String,
    /// Its call site.
    pub site: Site,
    /// The proof that discharging is sound.
    pub proof: DischargeProof,
}

/// The outcome of screening one AI program.
#[derive(Clone, Debug)]
pub struct ScreenResult {
    /// Assertions proven safe statically, in program order.
    pub discharged: Vec<Discharged>,
    /// Number of assertions that survive to the BMC tier.
    pub surviving: usize,
    /// The program sliced down to the surviving assertions' cones. When
    /// nothing was discharged this equals the input (same commands);
    /// when everything was, it still carries the branch skeleton but no
    /// assertions.
    pub sliced: AiProgram,
    /// Per-assertion cones (program order, all assertions).
    pub cones: Vec<AssertCone>,
}

impl ScreenResult {
    /// Whether every assertion was discharged (BMC can be skipped).
    pub fn all_discharged(&self) -> bool {
        self.surviving == 0
    }
}

/// Screens the program: discharges TS-clean assertions and slices the
/// rest down to their cones.
///
/// `ts` must be the result of `typestate::analyze` (or the worklist
/// variant) on the *same* `ai` and `lattice`.
pub fn screen(ai: &AiProgram, ts: &TsResult, lattice: &impl Lattice) -> ScreenResult {
    let all_cones = cones(ai);
    let cone_index: HashMap<AssertId, usize> = all_cones
        .iter()
        .enumerate()
        .map(|(i, c)| (c.id, i))
        .collect();
    let mut base_join = HashMap::new();
    joined_bases(&ai.cmds, lattice, &mut base_join);
    let dirty: HashSet<AssertId> = ts.errors.iter().map(|e| e.assert_id).collect();

    let mut discharged = Vec::new();
    let mut surviving: HashSet<AssertId> = HashSet::new();
    for (cmd, site) in ai.assertions() {
        let AiCmd::Assert {
            id,
            bound,
            strict,
            func,
            ..
        } = cmd
        else {
            continue;
        };
        if dirty.contains(id) {
            surviving.insert(*id);
            continue;
        }
        let taint_free = cone_index.get(id).is_some_and(|&i| {
            cone_is_taint_free(&all_cones[i], &base_join, *bound, *strict, lattice)
        });
        let proof = if taint_free {
            DischargeProof::TaintFreeCone
        } else {
            DischargeProof::TypestateClean
        };
        discharged.push(Discharged {
            id: *id,
            func: func.clone(),
            site: site.clone(),
            proof,
        });
    }

    let sliced = slice_with_cones(ai, &surviving, &all_cones);
    ScreenResult {
        discharged,
        surviving: surviving.len(),
        sliced,
        cones: all_cones,
    }
}

/// Outcome of the two-stage screening: cone slicing + the sparse
/// flow-sensitive dataflow tier.
#[derive(Clone, Debug)]
pub struct FlowScreenResult {
    /// The first-stage result with proof tags upgraded: discharged
    /// assertions the flow analysis independently proves clean carry
    /// [`DischargeProof::FlowClean`].
    pub screen: ScreenResult,
    /// The sliced program further refined by the flow tier: SSA
    /// definitions reaching no surviving assertion are dropped and
    /// all-paths-constant assignments are folded to constants. Per-path
    /// assertion valuations are unchanged, so this is what the BMC
    /// should encode.
    pub refined: AiProgram,
    /// Assertions discharged with the `flow-clean` proof.
    pub flow_discharged: u64,
    /// φ definitions placed building the full program's SSA.
    pub ssa_phis: u64,
    /// Dead definitions dropped from the sliced program.
    pub dead_defs_dropped: u64,
    /// Constant assignments folded in the sliced program.
    pub consts_folded: u64,
}

/// Two-stage screening: run [`screen`], then the sparse flow-sensitive
/// tier — upgrade discharge proofs with flow verdicts and refine the
/// sliced program (dead-definition elimination + constant folding)
/// before it reaches the encoder.
///
/// # Why the refinement is report-invisible
///
/// The flow tier never changes *which* assertions are discharged — on
/// this loop-free AI the flow verdict coincides with the typestate
/// verdict (both compute the join at merges and kill-by-redefinition),
/// so stage two only re-attributes proofs and shrinks the CNF. The
/// refined program keeps the `If` skeleton, every `BranchId`,
/// `num_branches`, and all surviving assertions, and per-path assertion
/// valuations are preserved (see `webssari_dataflow::refine`), so
/// verdicts, counterexample sets, and fix plans stay bit-identical.
pub fn screen_two_stage(ai: &AiProgram, ts: &TsResult, lattice: &impl Lattice) -> FlowScreenResult {
    let mut first = screen(ai, ts, lattice);

    let ssa = webssari_dataflow::SsaProgram::build(ai);
    let flow = webssari_dataflow::analyze(&ssa, lattice);
    let flow_clean: HashSet<AssertId> = flow
        .verdicts
        .iter()
        .filter(|v| v.clean)
        .map(|v| v.id)
        .collect();
    #[cfg(debug_assertions)]
    {
        let ts_dirty: HashSet<AssertId> = ts.errors.iter().map(|e| e.assert_id).collect();
        for v in &flow.verdicts {
            debug_assert_eq!(
                !v.clean,
                ts_dirty.contains(&v.id),
                "flow verdict must agree with typestate on this loop-free AI (assert {:?})",
                v.id
            );
        }
    }

    let mut flow_discharged = 0u64;
    for d in &mut first.discharged {
        if d.proof == DischargeProof::TypestateClean && flow_clean.contains(&d.id) {
            d.proof = DischargeProof::FlowClean;
            flow_discharged += 1;
        }
    }

    let (refined, rstats) = webssari_dataflow::refine(&first.sliced, lattice);
    FlowScreenResult {
        screen: first,
        refined,
        flow_discharged,
        ssa_phis: ssa.num_phis as u64,
        dead_defs_dropped: rstats.dead_defs_dropped,
        consts_folded: rstats.consts_folded,
    }
}

/// Whether the join of every cone assignment's constant base already
/// satisfies the assertion's bound. Masks only lower values, so this
/// join is an upper bound on any variable in the cone on any path.
fn cone_is_taint_free(
    cone: &AssertCone,
    base_join: &HashMap<VarId, Elem>,
    bound: Elem,
    strict: bool,
    lattice: &impl Lattice,
) -> bool {
    let mut acc = lattice.bottom();
    for v in &cone.vars {
        if let Some(b) = base_join.get(v) {
            acc = lattice.join(acc, *b);
        }
    }
    if strict {
        lattice.lt(acc, bound)
    } else {
        lattice.leq(acc, bound)
    }
}

/// One pass over the program collecting, per variable, the join of the
/// constant bases of every assignment to it — the ingredient
/// [`cone_is_taint_free`] folds over a cone's variables.
fn joined_bases(cmds: &[AiCmd], lattice: &impl Lattice, out: &mut HashMap<VarId, Elem>) {
    for c in cmds {
        match c {
            AiCmd::Assign { var, base, .. } => {
                let acc = out.entry(*var).or_insert_with(|| lattice.bottom());
                *acc = lattice.join(*acc, *base);
            }
            AiCmd::If {
                then_cmds,
                else_cmds,
                ..
            } => {
                joined_bases(then_cmds, lattice, out);
                joined_bases(else_cmds, lattice, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_front::parse_source;
    use taint_lattice::TwoPoint;
    use typestate::analyze;
    use webssari_ir::{abstract_interpret, filter_program, FilterOptions, Prelude};

    fn ai_of(src: &str) -> AiProgram {
        let ast = parse_source(src).expect("parse");
        let f = filter_program(
            &ast,
            src,
            "t.php",
            &Prelude::standard(),
            &FilterOptions::default(),
        );
        abstract_interpret(&f)
    }

    fn screened(src: &str) -> (AiProgram, ScreenResult) {
        let ai = ai_of(src);
        let l = TwoPoint::new();
        let ts = analyze(&ai, &l);
        let s = screen(&ai, &ts, &l);
        (ai, s)
    }

    #[test]
    fn clean_untouched_assertion_is_taint_free_cone() {
        let (_, s) = screened("<?php $x = 'hello'; echo $x;");
        assert_eq!(s.discharged.len(), 1);
        assert_eq!(s.discharged[0].proof, DischargeProof::TaintFreeCone);
        assert!(s.all_discharged());
        assert_eq!(s.sliced.num_assertions(), 0);
    }

    #[test]
    fn sanitized_flow_is_typestate_clean() {
        // The cone does contain a tainted source ($_GET) but the
        // sanitizer kills it on every path: TS proves it, taint-free
        // cone cannot.
        let (_, s) = screened("<?php $x = $_GET['q']; $x = htmlspecialchars($x); echo $x;");
        assert_eq!(s.discharged.len(), 1);
        assert_eq!(s.discharged[0].proof, DischargeProof::TypestateClean);
    }

    #[test]
    fn tainted_assertion_survives_to_bmc() {
        let (ai, s) = screened("<?php $x = $_GET['q']; echo $x; $y = 'ok'; mysql_query($y);");
        assert_eq!(s.discharged.len(), 1); // the mysql_query($y)
        assert_eq!(s.surviving, 1); // the echo $x
        assert_eq!(s.sliced.num_assertions(), 1);
        assert!(s.sliced.num_commands() < ai.num_commands());
    }

    #[test]
    fn sliced_program_yields_identical_counterexamples() {
        let src = "<?php $x = 'ok'; if ($a) { $x = $_GET['p']; } if ($b) { $junk = $_GET['z']; } \
                   echo $x; $c = 'safe'; echo $c;";
        let (ai, s) = screened(src);
        assert_eq!(s.discharged.len(), 1);
        assert_eq!(s.surviving, 1);
        let full = xbmc::Xbmc::new(&ai).check_all();
        let sliced = xbmc::Xbmc::new(&s.sliced).check_all();
        let key = |r: &xbmc::CheckResult| {
            r.counterexamples
                .iter()
                .map(|c| (c.assert_id, c.branches.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&full), key(&sliced));
        assert!(sliced.stats.cnf_vars < full.stats.cnf_vars);
    }

    fn screened_two_stage(src: &str) -> (AiProgram, FlowScreenResult) {
        let ai = ai_of(src);
        let l = TwoPoint::new();
        let ts = analyze(&ai, &l);
        let s = screen_two_stage(&ai, &ts, &l);
        (ai, s)
    }

    #[test]
    fn killed_taint_upgrades_to_flow_clean() {
        // Cone-blind: the cone of $x contains $_GET, so taint-free-cone
        // cannot prove it; the flow tier can.
        let (_, s) = screened_two_stage("<?php $x = $_GET['q']; $x = 'safe'; echo $x;");
        assert_eq!(s.screen.discharged.len(), 1);
        assert_eq!(s.screen.discharged[0].proof, DischargeProof::FlowClean);
        assert_eq!(s.flow_discharged, 1);
    }

    #[test]
    fn taint_free_cone_keeps_its_stronger_tag() {
        let (_, s) = screened_two_stage("<?php $x = 'hello'; echo $x;");
        assert_eq!(s.screen.discharged[0].proof, DischargeProof::TaintFreeCone);
        assert_eq!(s.flow_discharged, 0);
    }

    #[test]
    fn two_stage_refinement_preserves_counterexamples() {
        // The first two defs of $x are killed by `$x = 'ok'` on every
        // path, but the flow-insensitive cone keeps them ($x is the
        // checked variable) — only the flow tier can drop them.
        let src = "<?php if ($p) { $x = $_GET['d']; } else { $x = 'd'; } \
                   $x = 'ok'; if ($a) { $x = $_GET['p']; } echo $x;";
        let (ai, s) = screened_two_stage(src);
        assert_eq!(s.screen.surviving, 1);
        assert!(
            s.dead_defs_dropped >= 2,
            "killed branch defs must be dropped, got {}",
            s.dead_defs_dropped
        );
        let full = xbmc::Xbmc::new(&ai).check_all();
        let refined = xbmc::Xbmc::new(&s.refined).check_all();
        let key = |r: &xbmc::CheckResult| {
            r.counterexamples
                .iter()
                .map(|c| (c.assert_id, c.branches.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&full), key(&refined));
        // Strictly smaller formula than the cone-only slice.
        let sliced = xbmc::Xbmc::new(&s.screen.sliced).check_all();
        assert!(refined.stats.cnf_clauses < sliced.stats.cnf_clauses);
    }

    #[test]
    fn phi_merge_both_arms_sanitized_is_flow_clean() {
        let src = "<?php if ($c) { $x = htmlspecialchars($_GET['a']); } \
                   else { $x = 'lit'; } echo $x;";
        let (_, s) = screened_two_stage(src);
        assert!(s.ssa_phis >= 1);
        assert_eq!(s.screen.discharged.len(), 1);
        assert!(matches!(
            s.screen.discharged[0].proof,
            DischargeProof::FlowClean | DischargeProof::TaintFreeCone
        ));
    }

    #[test]
    fn discharge_never_loses_a_violation() {
        // Screening must keep every assertion the BMC would flag.
        let srcs = [
            "<?php $x = $_GET['q']; echo $x;",
            "<?php if ($c) { $x = $_GET['q']; } echo $x; echo 'lit';",
            "<?php $q = \"id=$id\"; mysql_query($q); echo $q;",
            "<?php while ($r = mysql_fetch_array($h)) { echo $r; }",
        ];
        for src in srcs {
            let (ai, s) = screened(src);
            let full = xbmc::Xbmc::new(&ai).check_all();
            let flagged: HashSet<AssertId> =
                full.counterexamples.iter().map(|c| c.assert_id).collect();
            for d in &s.discharged {
                assert!(!flagged.contains(&d.id), "{src}: discharged a violation");
            }
            let sliced = xbmc::Xbmc::new(&s.sliced).check_all();
            assert_eq!(
                full.counterexamples.len(),
                sliced.counterexamples.len(),
                "{src}"
            );
        }
    }
}
