//! SARIF 2.1.0 export for lint diagnostics.
//!
//! The writer goes through [`jsonio`] (the workspace's shared JSON
//! model), emitting the minimal valid subset editors and CI annotators
//! consume: `$schema`/`version`, one run with a tool driver carrying
//! the full rule table, and one `result` per diagnostic with `ruleId`,
//! `level`, `message.text`, and a physical location. Diagnostics that
//! carry a def-use witness ([`Diagnostic::steps`]) additionally get a
//! `codeFlows` entry — one `threadFlow` whose locations trace the
//! taint from source to sink — which SARIF viewers render as a
//! step-through path.

use jsonio::Value;

use crate::lint::{Diagnostic, FlowStep, RULES};

/// The SARIF schema URI embedded in every report.
pub const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// One-line documentation per rule id, for the driver's rule table.
fn rule_description(rule: &str) -> &'static str {
    match rule {
        "unsanitized-sink" => "Tainted data may reach a sensitive output channel.",
        "sql-concat-injection" => {
            "Tainted data is concatenated into SQL query text instead of being bound at a \
             parameterized position."
        }
        "stored-taint-flow" => {
            "A sink is reachable from a cross-request store read whose writers may be tainted \
             (second-order flow)."
        }
        "tainted-include" => "A dynamic include/require path may be attacker-controlled.",
        "dead-sanitizer" => "A sanitizer's result never reaches any sensitive output channel.",
        "flow-unreachable-sink" => {
            "A sensitive output channel is unreachable: every path to it exits first."
        }
        "unreachable-after-stop" => "Code after exit/return in the same block never executes.",
        "recursion-cutoff-approximation" => {
            "A call degraded to the join-of-arguments approximation at the inlining depth cutoff."
        }
        _ => "Unknown rule.",
    }
}

/// Builds the SARIF 2.1.0 document for a set of diagnostics.
pub fn to_sarif(diags: &[Diagnostic]) -> Value {
    let rules = RULES
        .iter()
        .map(|id| {
            Value::obj(vec![
                ("id", Value::str(*id)),
                (
                    "shortDescription",
                    Value::obj(vec![("text", Value::str(rule_description(id)))]),
                ),
            ])
        })
        .collect();
    let results = diags.iter().map(result).collect();
    Value::obj(vec![
        ("$schema", Value::str(SARIF_SCHEMA)),
        ("version", Value::str("2.1.0")),
        (
            "runs",
            Value::Arr(vec![Value::obj(vec![
                (
                    "tool",
                    Value::obj(vec![(
                        "driver",
                        Value::obj(vec![
                            ("name", Value::str("webssari")),
                            ("rules", Value::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results", Value::Arr(results)),
            ])]),
        ),
    ])
}

/// Renders the SARIF document as a JSON string.
pub fn to_sarif_json(diags: &[Diagnostic]) -> String {
    to_sarif(diags).to_json()
}

/// A `physicalLocation` object for a site.
fn physical_location(site: &webssari_ir::Site) -> Value {
    // SARIF regions are 1-based; synthetic sites carry line 0.
    let line = u64::from(site.line.max(1));
    Value::obj(vec![
        (
            "artifactLocation",
            Value::obj(vec![("uri", Value::str(site.file.clone()))]),
        ),
        ("region", Value::obj(vec![("startLine", Value::Num(line))])),
    ])
}

/// The `codeFlows` array for a diagnostic's def-use witness: one code
/// flow with one thread flow whose locations are the witness steps in
/// source-to-sink order, each annotated with the variable it flows
/// through.
fn code_flows(steps: &[FlowStep]) -> Value {
    let locations = steps
        .iter()
        .map(|s| {
            Value::obj(vec![(
                "location",
                Value::obj(vec![
                    ("physicalLocation", physical_location(&s.site)),
                    (
                        "message",
                        Value::obj(vec![("text", Value::str(format!("${}", s.var)))]),
                    ),
                ]),
            )])
        })
        .collect();
    Value::Arr(vec![Value::obj(vec![(
        "threadFlows",
        Value::Arr(vec![Value::obj(vec![("locations", Value::Arr(locations))])]),
    )])])
}

fn result(d: &Diagnostic) -> Value {
    let mut fields = vec![
        ("ruleId", Value::str(d.rule)),
        ("level", Value::str(d.severity.as_str())),
        (
            "message",
            Value::obj(vec![("text", Value::str(d.message.clone()))]),
        ),
        (
            "locations",
            Value::Arr(vec![Value::obj(vec![(
                "physicalLocation",
                physical_location(&d.site),
            )])]),
        ),
    ];
    if !d.steps.is_empty() {
        fields.push(("codeFlows", code_flows(&d.steps)));
    }
    Value::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::Severity;
    use php_front::Span;
    use proptest::prelude::*;
    use webssari_ir::Site;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                rule: "unsanitized-sink",
                severity: Severity::Error,
                message: "tainted data may reach echo() via $x".to_owned(),
                site: Site::new("a.php", 3, Span::new(10, 20), "echo $x;"),
                steps: vec![
                    FlowStep {
                        var: "_GET[q]".to_owned(),
                        site: Site::new("a.php", 2, Span::new(0, 9), "$x = $_GET['q'];"),
                    },
                    FlowStep {
                        var: "x".to_owned(),
                        site: Site::new("a.php", 3, Span::new(10, 20), "echo $x;"),
                    },
                ],
            },
            Diagnostic {
                rule: "recursion-cutoff-approximation",
                severity: Severity::Note,
                message: "call degrades".to_owned(),
                site: Site::synthetic("a.php", "r($x)"),
                steps: Vec::new(),
            },
        ]
    }

    #[test]
    fn document_shape_is_sarif_2_1_0() {
        let doc = to_sarif(&sample());
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        assert_eq!(
            doc.get("$schema").and_then(Value::as_str),
            Some(SARIF_SCHEMA)
        );
        let run = &doc.get("runs").and_then(Value::as_arr).unwrap()[0];
        let driver = run.get("tool").and_then(|t| t.get("driver")).unwrap();
        assert_eq!(driver.get("name").and_then(Value::as_str), Some("webssari"));
        let rules = driver.get("rules").and_then(Value::as_arr).unwrap();
        assert_eq!(rules.len(), RULES.len());
        let results = run.get("results").and_then(Value::as_arr).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("ruleId").and_then(Value::as_str),
            Some("unsanitized-sink")
        );
        assert_eq!(
            results[0].get("level").and_then(Value::as_str),
            Some("error")
        );
    }

    #[test]
    fn synthetic_sites_clamp_start_line_to_one() {
        let doc = to_sarif(&sample());
        let run = &doc.get("runs").and_then(Value::as_arr).unwrap()[0];
        let results = run.get("results").and_then(Value::as_arr).unwrap();
        let start = results[1]
            .get("locations")
            .and_then(Value::as_arr)
            .and_then(|l| l[0].get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .and_then(|r| r.get("startLine"))
            .and_then(Value::as_u64);
        assert_eq!(start, Some(1));
    }

    fn step() -> impl Strategy<Value = FlowStep> {
        (".{1,12}", ".{1,20}", 0u32..100, ".{0,30}").prop_map(|(var, file, line, snippet)| {
            FlowStep {
                var,
                site: Site::new(file, line, Span::new(0, 0), &snippet),
            }
        })
    }

    fn diag() -> impl Strategy<Value = Diagnostic> {
        (
            (0usize..RULES.len(), 0usize..3, ".{0,40}"),
            (".{1,20}", 0u32..100, ".{0,30}"),
            proptest::collection::vec(step(), 0..4),
        )
            .prop_map(
                |((rule, sev, message), (file, line, snippet), steps)| Diagnostic {
                    rule: RULES[rule],
                    severity: [Severity::Error, Severity::Warning, Severity::Note][sev],
                    message,
                    site: Site::new(file, line, Span::new(0, 0), &snippet),
                    steps,
                },
            )
    }

    proptest! {
        /// Satellite (c): every emitted report parses back through the
        /// jsonio parser, and every result carries a non-empty ruleId, a
        /// valid level, and a physical location with a uri and a
        /// startLine >= 1 — for arbitrary messages, file names (incl.
        /// quotes, backslashes, non-ASCII), and line numbers (incl. 0).
        #[test]
        fn sarif_round_trips_through_jsonio(diags in proptest::collection::vec(diag(), 0..8)) {
            let json = to_sarif_json(&diags);
            let doc = jsonio::parse(&json).expect("emitted SARIF must re-parse");
            prop_assert_eq!(doc.clone(), to_sarif(&diags));
            let run = &doc.get("runs").and_then(Value::as_arr).unwrap()[0];
            let results = run.get("results").and_then(Value::as_arr).unwrap();
            prop_assert_eq!(results.len(), diags.len());
            for (r, d) in results.iter().zip(&diags) {
                let rule = r.get("ruleId").and_then(Value::as_str).unwrap();
                prop_assert!(!rule.is_empty());
                prop_assert_eq!(rule, d.rule);
                let level = r.get("level").and_then(Value::as_str).unwrap();
                prop_assert!(matches!(level, "error" | "warning" | "note"));
                let loc = &r.get("locations").and_then(Value::as_arr).unwrap()[0];
                let phys = loc.get("physicalLocation").unwrap();
                let uri = phys
                    .get("artifactLocation")
                    .and_then(|a| a.get("uri"))
                    .and_then(Value::as_str)
                    .unwrap();
                prop_assert_eq!(uri, d.site.file.as_str());
                let start = phys
                    .get("region")
                    .and_then(|r| r.get("startLine"))
                    .and_then(Value::as_u64)
                    .unwrap();
                prop_assert!(start >= 1);
                // codeFlows mirror the witness: present exactly when the
                // diagnostic carries steps, one threadFlow location per
                // step, each with a physical location and startLine >= 1.
                match r.get("codeFlows") {
                    None => prop_assert!(d.steps.is_empty()),
                    Some(flows) => {
                        prop_assert!(!d.steps.is_empty());
                        let flow = &flows.as_arr().unwrap()[0];
                        let thread = &flow.get("threadFlows").and_then(Value::as_arr).unwrap()[0];
                        let locs = thread.get("locations").and_then(Value::as_arr).unwrap();
                        prop_assert_eq!(locs.len(), d.steps.len());
                        for (loc, s) in locs.iter().zip(&d.steps) {
                            let l = loc.get("location").unwrap();
                            let uri = l
                                .get("physicalLocation")
                                .and_then(|p| p.get("artifactLocation"))
                                .and_then(|a| a.get("uri"))
                                .and_then(Value::as_str)
                                .unwrap();
                            prop_assert_eq!(uri, s.site.file.as_str());
                            let start = l
                                .get("physicalLocation")
                                .and_then(|p| p.get("region"))
                                .and_then(|r| r.get("startLine"))
                                .and_then(Value::as_u64)
                                .unwrap();
                            prop_assert!(start >= 1);
                            let text = l
                                .get("message")
                                .and_then(|m| m.get("text"))
                                .and_then(Value::as_str)
                                .unwrap();
                            let want = format!("${}", s.var);
                            prop_assert_eq!(text, want.as_str());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn taint_results_carry_a_source_to_sink_code_flow() {
        let doc = to_sarif(&sample());
        let run = &doc.get("runs").and_then(Value::as_arr).unwrap()[0];
        let results = run.get("results").and_then(Value::as_arr).unwrap();
        let flows = results[0].get("codeFlows").and_then(Value::as_arr).unwrap();
        let locs = flows[0]
            .get("threadFlows")
            .and_then(Value::as_arr)
            .and_then(|t| t[0].get("locations"))
            .and_then(Value::as_arr)
            .unwrap();
        assert_eq!(locs.len(), 2);
        let first_msg = locs[0]
            .get("location")
            .and_then(|l| l.get("message"))
            .and_then(|m| m.get("text"))
            .and_then(Value::as_str);
        assert_eq!(first_msg, Some("$_GET[q]"));
        // The step-less note has no codeFlows at all.
        assert!(results[1].get("codeFlows").is_none());
    }
}
