//! # webssari-analysis — static screening and diagnostics.
//!
//! The layer between the abstract interpretation
//! (`webssari_ir::abstract_interpret`) and the bounded model checker
//! (`xbmc`), with three jobs:
//!
//! 1. **Cone-of-influence slicing** ([`cones`], [`slice`]): for each
//!    assertion, the backward closure of the variables it checks, plus
//!    the branch decisions that can influence it. The slice preserves
//!    the branch skeleton (the renaming encoder's blocking clauses
//!    quantify over the program-order branch prefix), so verdicts and
//!    counterexample sets are preserved exactly.
//! 2. **Tiered discharge** ([`screen`]): assertions the polynomial
//!    typestate pass proves clean are discharged statically with a
//!    proof tag ([`DischargeProof`]); only the survivors — sliced down
//!    to their cones — reach the SAT encoder.
//! 3. **Lint** ([`lint`], [`lint_file`]) with SARIF 2.1.0 export
//!    ([`to_sarif_json`]): taint findings, dead sanitizers, unreachable
//!    code, and approximation points as structured diagnostics with
//!    spans, severity, and stable rule ids.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cone;
pub mod lint;
pub mod sarif;
pub mod screen;

pub use cone::{cones, slice, AssertCone};
pub use lint::{lint, lint_file, Diagnostic, FlowStep, Severity, RULES};
pub use sarif::{to_sarif, to_sarif_json, SARIF_SCHEMA};
pub use screen::{
    screen, screen_two_stage, DischargeProof, Discharged, FlowScreenResult, ScreenResult,
};
