//! The taint lint pass: structured diagnostics with spans, severity,
//! and stable rule ids, over one file's filter and AI artifacts.
//!
//! | rule id | severity | meaning |
//! |---------|----------|---------|
//! | `unsanitized-sink` | error | tainted data may reach a sensitive output channel |
//! | `sql-concat-injection` | error | tainted data is concatenated into SQL query text |
//! | `stored-taint-flow` | error | a sink is reachable from a cross-request store read |
//! | `tainted-include` | error | a dynamic `include`/`require` path carries taint |
//! | `dead-sanitizer` | warning | a sanitizer call whose result never reaches any sink |
//! | `unreachable-after-stop` | warning | code after `exit`/top-level `return` in the same block |
//! | `flow-unreachable-sink` | warning | a sink no execution reaches (every path exits first) |
//! | `recursion-cutoff-approximation` | note | a call degraded by the inlining depth cutoff |
//!
//! The `dead-sanitizer` and `flow-unreachable-sink` rules are verdicts
//! of the sparse dataflow tier (SSA def-use liveness and stop-respecting
//! CFG reachability), and every taint finding carries the tier's
//! def-use witness as [`Diagnostic::steps`] — the source-to-sink chain
//! SARIF renders as a `codeFlow`.

use std::collections::BTreeMap;

use taint_lattice::Lattice;
use typestate::TsResult;
use webssari_dataflow::{BlockCmd, Def, DefId, FlowResult, SsaProgram};
use webssari_ir::{
    is_store_cell, store_cell_key, AiCmd, AiProgram, AssertId, AssertKind, FProgram, Site,
};

/// Diagnostic severity, mirroring SARIF's `level`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A defect: the verifier would flag this.
    Error,
    /// Suspicious but not a proven defect.
    Warning,
    /// An analysis-precision remark.
    Note,
}

impl Severity {
    /// The SARIF `level` string.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// Every rule id the lint pass can emit, in stable order.
pub const RULES: [&str; 8] = [
    "unsanitized-sink",
    "sql-concat-injection",
    "stored-taint-flow",
    "tainted-include",
    "dead-sanitizer",
    "unreachable-after-stop",
    "flow-unreachable-sink",
    "recursion-cutoff-approximation",
];

/// One step of a def-use taint witness: a definition on the chain from
/// the taint source to the flagged sink, in source-to-sink order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowStep {
    /// The variable defined at this step.
    pub var: String,
    /// Where the definition happened.
    pub site: Site,
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Where the finding points.
    pub site: Site,
    /// The dataflow tier's def-use witness for taint findings
    /// (source-to-sink); empty for rules without a flow.
    pub steps: Vec<FlowStep>,
}

impl Diagnostic {
    /// Renders as `file:line: severity [rule] message`.
    pub fn render(&self) -> String {
        let line = self.site.line.max(1);
        format!(
            "{}:{}: {} [{}] {}",
            self.site.file,
            line,
            self.severity.as_str(),
            self.rule,
            self.message
        )
    }
}

/// Runs every lint rule over one file's artifacts.
///
/// `f` and `ai` must come from the same source; `ts` must be
/// `typestate::analyze(ai, lattice)`. Diagnostics are sorted by line,
/// then rule, and deduplicated by `(rule, site)`.
pub fn lint(
    f: &FProgram,
    ai: &AiProgram,
    ts: &TsResult,
    lattice: &impl Lattice,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let ssa = SsaProgram::build(ai);
    let flow = webssari_dataflow::analyze(&ssa, lattice);
    taint_rules(ai, ts, &ssa, &flow, lattice, &mut out);
    dead_sanitizers(ai, &ssa, &mut out);
    flow_unreachable_sinks(&ssa, &mut out);
    unreachable_after_stop(&ai.cmds, &mut out);
    for site in &f.recursion_cutoffs {
        out.push(Diagnostic {
            rule: "recursion-cutoff-approximation",
            severity: Severity::Note,
            message: format!(
                "call exceeds the inlining depth and degrades to the \
                 join-of-arguments approximation: `{}`",
                site.snippet
            ),
            site: site.clone(),
            steps: Vec::new(),
        });
    }
    out.sort_by(|a, b| {
        (a.site.line, a.rule, &a.site.file, &a.message).cmp(&(
            b.site.line,
            b.rule,
            &b.site.file,
            &b.message,
        ))
    });
    out.dedup_by(|a, b| a.rule == b.rule && a.site == b.site);
    out
}

/// Lints one PHP source file end to end: parse, filter, abstract
/// interpretation, typestate, then every lint rule.
pub fn lint_file(
    src: &str,
    file: &str,
    prelude: &webssari_ir::Prelude,
    options: &webssari_ir::FilterOptions,
    lattice: &impl Lattice,
) -> Result<Vec<Diagnostic>, php_front::ParseError> {
    let ast = php_front::parse_source(src)?;
    let f = webssari_ir::filter_program(&ast, src, file, prelude, options);
    // Unroll factor 1 suffices for lints: extra unrollings only repeat
    // diagnostics at the same (rule, site), which dedup removes.
    let ai = webssari_ir::abstract_interpret_with(&f, lattice, 1);
    let ts = typestate::analyze(&ai, lattice);
    Ok(lint(&f, &ai, &ts, lattice))
}

/// The dataflow tier's def-use witness for one flagged assertion, as
/// renderable steps in source-to-sink order. Empty when the flow tier
/// has no dirty chain for the assertion (it and TS agree on verdicts,
/// so this only happens for asserts outside the SSA walk).
fn witness_steps(
    ai: &AiProgram,
    ssa: &SsaProgram,
    flow: &FlowResult,
    lattice: &impl Lattice,
    id: AssertId,
) -> Vec<FlowStep> {
    let Some(idx) = ssa.asserts.iter().position(|a| a.id == id) else {
        return Vec::new();
    };
    if flow.verdicts[idx].clean {
        return Vec::new();
    }
    webssari_dataflow::witness(ssa, flow, lattice, idx)
        .into_iter()
        .filter_map(|w| {
            Some(FlowStep {
                var: ai.vars.name(w.var).to_owned(),
                site: w.site?,
            })
        })
        .collect()
}

/// `unsanitized-sink`, `sql-concat-injection`, `stored-taint-flow`, and
/// `tainted-include` from the TS symptoms, each carrying the flow
/// tier's def-use witness.
fn taint_rules(
    ai: &AiProgram,
    ts: &TsResult,
    ssa: &SsaProgram,
    flow: &FlowResult,
    lattice: &impl Lattice,
    out: &mut Vec<Diagnostic>,
) {
    let mut kinds: BTreeMap<AssertId, &AssertKind> = BTreeMap::new();
    for (c, _) in ai.assertions() {
        if let AiCmd::Assert { id, kind, .. } = c {
            kinds.insert(*id, kind);
        }
    }
    // Store cells in each assertion's backward cone — the signature of
    // a second-order flow feeding the sink. The cone walk is skipped
    // entirely when the program reads no store.
    let mut store_keys: BTreeMap<AssertId, Vec<&str>> = BTreeMap::new();
    if ai.vars.iter().any(|v| is_store_cell(ai.vars.name(v))) {
        for cone in crate::cone::cones(ai) {
            let keys: Vec<&str> = cone
                .vars
                .iter()
                .filter_map(|v| store_cell_key(ai.vars.name(*v)))
                .collect();
            if !keys.is_empty() {
                store_keys.insert(cone.id, keys);
            }
        }
    }
    for e in &ts.errors {
        let vars: Vec<&str> = e.violating_vars.iter().map(|v| ai.vars.name(*v)).collect();
        let (rule, message) = if e.func == "include" {
            (
                "tainted-include",
                format!(
                    "dynamic include path may be attacker-controlled (via ${})",
                    vars.join(", $")
                ),
            )
        } else if let Some(AssertKind::SqlStructure(meta)) = kinds.get(&e.assert_id).copied() {
            let table = meta
                .table
                .as_ref()
                .map(|t| format!(" on `{t}`"))
                .unwrap_or_default();
            (
                "sql-concat-injection",
                format!(
                    "tainted data is concatenated into {} query text{table} \
                     via ${} — bind it at a parameterized (?) position instead",
                    meta.stmt.as_str(),
                    vars.join(", $"),
                ),
            )
        } else {
            (
                "unsanitized-sink",
                format!(
                    "tainted data may reach {}() via ${}",
                    e.func,
                    vars.join(", $")
                ),
            )
        };
        let steps = witness_steps(ai, ssa, flow, lattice, e.assert_id);
        out.push(Diagnostic {
            rule,
            severity: Severity::Error,
            message,
            site: e.site.clone(),
            steps: steps.clone(),
        });
        if let Some(keys) = store_keys.get(&e.assert_id) {
            out.push(Diagnostic {
                rule: "stored-taint-flow",
                severity: Severity::Error,
                message: format!(
                    "sink is reachable from store `{}`: the value read back may carry \
                     taint written by an earlier request",
                    keys.join("`, `"),
                ),
                site: e.site.clone(),
                steps,
            });
        }
    }
}

/// `dead-sanitizer`: a sanitizer temp whose SSA definition reaches no
/// assertion through the def-use chains — its result never influences
/// any sink. Unlike the old cone-based check this is flow-sensitive: a
/// sanitized value that is overwritten before the sink is dead even
/// though the overwritten variable itself flows on.
fn dead_sanitizers(ai: &AiProgram, ssa: &SsaProgram, out: &mut Vec<Diagnostic>) {
    // Backward liveness: seed with the definitions assertions read,
    // close over operand edges.
    let mut live = vec![false; ssa.defs.len()];
    let mut work: Vec<DefId> = Vec::new();
    for a in &ssa.asserts {
        for (_, d) in &a.uses {
            if !live[d.idx()] {
                live[d.idx()] = true;
                work.push(*d);
            }
        }
    }
    while let Some(d) = work.pop() {
        for op in ssa.defs[d.idx()].operands() {
            if !live[op.idx()] {
                live[op.idx()] = true;
                work.push(*op);
            }
        }
    }
    for (i, def) in ssa.defs.iter().enumerate() {
        let Def::Assign { var, site, .. } = def else {
            continue;
        };
        let name = ai.vars.name(*var);
        if let Some(func) = name.split("#san").next().filter(|_| name.contains("#san")) {
            if !live[i] {
                out.push(Diagnostic {
                    rule: "dead-sanitizer",
                    severity: Severity::Warning,
                    message: format!(
                        "result of {func}() never reaches any sensitive output channel"
                    ),
                    site: site.clone(),
                    steps: Vec::new(),
                });
            }
        }
    }
}

/// `flow-unreachable-sink`: an assertion no execution reaches because
/// every path to it passes a `stop` first. Stop-respecting forward
/// reachability over the SSA CFG (block indices are topological, so one
/// forward sweep suffices). Lint-only: the verifier still checks these
/// assertions — Figure 5 encodes `stop` as the constraint `true` — so
/// this rule never discharges anything.
fn flow_unreachable_sinks(ssa: &SsaProgram, out: &mut Vec<Diagnostic>) {
    let mut entered = vec![false; ssa.blocks.len()];
    if let Some(e) = entered.first_mut() {
        *e = true;
    }
    let mut reachable = vec![false; ssa.asserts.len()];
    for (b, block) in ssa.blocks.iter().enumerate() {
        if !entered[b] {
            continue;
        }
        let mut stopped = false;
        for c in &block.cmds {
            match c {
                BlockCmd::Stop(_) => {
                    stopped = true;
                    break;
                }
                BlockCmd::Assert(i) => reachable[*i] = true,
                BlockCmd::Assign(_) => {}
            }
        }
        if !stopped {
            for s in &block.succs {
                entered[s.idx()] = true;
            }
        }
    }
    for (i, a) in ssa.asserts.iter().enumerate() {
        if !reachable[i] {
            out.push(Diagnostic {
                rule: "flow-unreachable-sink",
                severity: Severity::Warning,
                message: format!(
                    "{}() sink is unreachable: every path to it exits first",
                    a.func
                ),
                site: a.site.clone(),
                steps: Vec::new(),
            });
        }
    }
}

/// The source location of any AI command.
fn cmd_site(c: &AiCmd) -> &Site {
    match c {
        AiCmd::Assign { site, .. }
        | AiCmd::Assert { site, .. }
        | AiCmd::If { site, .. }
        | AiCmd::Stop { site } => site,
    }
}

/// `unreachable-after-stop`: commands following a `stop` in the same
/// block. The AI keeps them (Figure 5 encodes `stop` as `true`) but no
/// concrete execution reaches them.
fn unreachable_after_stop(cmds: &[AiCmd], out: &mut Vec<Diagnostic>) {
    let mut stopped = false;
    for c in cmds {
        if stopped {
            let site = cmd_site(c);
            out.push(Diagnostic {
                rule: "unreachable-after-stop",
                severity: Severity::Warning,
                message: format!("unreachable code after exit/return: `{}`", site.snippet),
                site: site.clone(),
                steps: Vec::new(),
            });
            // One diagnostic per stop suffices; deeper commands in the
            // same dead region would only repeat it.
            return;
        }
        match c {
            AiCmd::Stop { .. } => stopped = true,
            AiCmd::If {
                then_cmds,
                else_cmds,
                ..
            } => {
                unreachable_after_stop(then_cmds, out);
                unreachable_after_stop(else_cmds, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_front::parse_source;
    use taint_lattice::TwoPoint;
    use typestate::analyze;
    use webssari_ir::{abstract_interpret, filter_program, FilterOptions, Prelude};

    fn lint_src(src: &str) -> Vec<Diagnostic> {
        let ast = parse_source(src).expect("parse");
        let f = filter_program(
            &ast,
            src,
            "t.php",
            &Prelude::standard(),
            &FilterOptions::default(),
        );
        let ai = abstract_interpret(&f);
        let l = TwoPoint::new();
        let ts = analyze(&ai, &l);
        lint(&f, &ai, &ts, &l)
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn unsanitized_sink_is_reported_with_site() {
        let diags = lint_src("<?php\n$x = $_GET['q'];\necho $x;\n");
        assert_eq!(rules(&diags), vec!["unsanitized-sink"]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].site.line, 3);
        assert!(diags[0].message.contains("echo"), "{}", diags[0].message);
        assert!(diags[0].render().starts_with("t.php:3: error"));
    }

    #[test]
    fn tainted_include_is_its_own_rule() {
        let diags = lint_src("<?php include $_GET['page'];");
        assert_eq!(rules(&diags), vec!["tainted-include"]);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn dead_sanitizer_flags_unused_result() {
        // The sanitized value is never echoed or queried.
        let diags = lint_src("<?php $x = htmlspecialchars($_GET['q']); echo 'done';");
        assert_eq!(rules(&diags), vec!["dead-sanitizer"]);
        assert!(
            diags[0].message.contains("htmlspecialchars"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn live_sanitizer_is_not_flagged() {
        let diags = lint_src("<?php $x = htmlspecialchars($_GET['q']); echo $x;");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn flow_sensitively_killed_sanitizer_is_dead() {
        // Syntactically the sanitizer's variable reaches the sink, but
        // flow-sensitively the re-taint kills the sanitized incarnation
        // before any use: the SSA liveness verdict flags it, and the
        // sink still fires.
        let diags = lint_src("<?php $x = htmlspecialchars($_GET['q']); $x = $_GET['q']; echo $x;");
        let rs = rules(&diags);
        assert!(rs.contains(&"dead-sanitizer"), "{diags:?}");
        assert!(rs.contains(&"unsanitized-sink"), "{diags:?}");
    }

    #[test]
    fn taint_diagnostics_carry_a_def_use_witness() {
        let diags = lint_src("<?php\n$a = $_GET['q'];\n$b = $a;\necho $b;\n");
        let d = diags
            .iter()
            .find(|d| d.rule == "unsanitized-sink")
            .expect("sink finding");
        let vars: Vec<&str> = d.steps.iter().map(|s| s.var.as_str()).collect();
        // Source-to-sink order: the keyed channel first, the variable
        // feeding the sink last.
        assert!(!vars.is_empty(), "{diags:?}");
        assert_eq!(vars.first(), Some(&"_GET[q]"), "{vars:?}");
        assert_eq!(vars.last(), Some(&"b"), "{vars:?}");
        // Step sites are real source locations, in nondecreasing line
        // order for this straight-line program.
        assert!(d.steps.windows(2).all(|w| w[0].site.line <= w[1].site.line));
    }

    #[test]
    fn sink_behind_unconditional_exit_is_flow_unreachable() {
        let diags = lint_src("<?php $x = $_GET['q']; exit; mysql_query($x);");
        let d = diags
            .iter()
            .find(|d| d.rule == "flow-unreachable-sink")
            .expect("unreachable-sink finding");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("mysql_query"), "{}", d.message);
    }

    #[test]
    fn conditionally_reachable_sink_is_not_flagged_unreachable() {
        // Only one arm exits, so a path to the sink survives.
        let diags = lint_src("<?php $x = $_GET['q']; if ($c) { exit; } echo $x;");
        assert!(
            !rules(&diags).contains(&"flow-unreachable-sink"),
            "{diags:?}"
        );
    }

    #[test]
    fn unreachable_after_stop_points_at_dead_code() {
        let diags = lint_src("<?php exit; echo $x;");
        // The echo after exit is unreachable; the AI still checks it
        // (Figure 5 semantics), so the unsanitized-sink would also fire
        // when $x is tainted — here $x is unassigned (⊥), so the two
        // reachability warnings remain: the syntactic one for the dead
        // statement and the flow one for the dead sink.
        assert_eq!(
            rules(&diags),
            vec!["flow-unreachable-sink", "unreachable-after-stop"]
        );
        assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn recursion_cutoff_notes_the_call_site() {
        let diags =
            lint_src("<?php function r($x) { return r($x); } $y = r('lit'); mysql_query($y);");
        assert!(
            rules(&diags).contains(&"recursion-cutoff-approximation"),
            "{diags:?}"
        );
        let d = diags
            .iter()
            .find(|d| d.rule == "recursion-cutoff-approximation")
            .unwrap();
        assert_eq!(d.severity, Severity::Note);
        assert!(d.message.contains("r($x)"), "{}", d.message);
        assert!(!d.site.is_synthetic());
    }

    #[test]
    fn sql_concat_injection_for_resolved_templates() {
        let diags = lint_src(
            "<?php\n$name = $_GET['n'];\n$q = \"SELECT * FROM users WHERE name='\" . $name . \"'\";\nmysql_query($q);\n",
        );
        assert_eq!(rules(&diags), vec!["sql-concat-injection"]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("SELECT"), "{}", diags[0].message);
        assert!(diags[0].message.contains("users"), "{}", diags[0].message);
        assert!(
            diags[0].message.contains("parameterized"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn parameterized_query_is_clean() {
        let diags = lint_src(
            "<?php\n$m = $_GET['m'];\nmysql_query(\"INSERT INTO gb (msg) VALUES (?)\", $m);\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn stored_taint_flow_names_the_store() {
        let diags = lint_src(
            "<?php\n$r = mysql_query('SELECT m FROM gb');\nwhile ($row = mysql_fetch_array($r)) {\necho $row;\n}\n",
        );
        assert_eq!(rules(&diags), vec!["stored-taint-flow", "unsanitized-sink"]);
        assert!(diags[0].message.contains("`gb`"), "{}", diags[0].message);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let diags = lint_src("<?php $x = 'hello'; echo $x;");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn diagnostics_are_sorted_by_line() {
        let diags = lint_src("<?php\n$a = $_GET['p'];\necho $a;\nmysql_query($a);\n");
        assert_eq!(rules(&diags), vec!["unsanitized-sink", "unsanitized-sink"]);
        assert!(diags[0].site.line < diags[1].site.line);
    }
}
