//! Backward cone-of-influence computation over the loop-free AI.
//!
//! For each assertion, the *cone* is everything that can influence its
//! verdict: the backward closure of the checked variables under the
//! assignment dependency relation, the branch decisions enclosing any
//! cone command, and the commands that write cone variables. CBMC ships
//! the same slice-before-CNF step; here it feeds both the static
//! discharge decision and the sliced program handed to the SAT encoder.

use std::collections::{BTreeSet, HashMap, HashSet};

use webssari_ir::{AiCmd, AiProgram, AssertId, BranchId, VarId};

/// The cone of influence of one assertion.
#[derive(Clone, Debug)]
pub struct AssertCone {
    /// The assertion this cone belongs to.
    pub id: AssertId,
    /// Variables whose values can reach the assertion: the backward
    /// closure of the checked variables under assignment dependencies.
    pub vars: BTreeSet<VarId>,
    /// Branch decisions enclosing the assertion or any cone assignment.
    pub branches: BTreeSet<BranchId>,
    /// Number of commands in the cone (cone assignments plus the
    /// assertion itself).
    pub num_commands: usize,
}

/// Computes the cone of influence of every assertion, in program order.
pub fn cones(ai: &AiProgram) -> Vec<AssertCone> {
    // Flow-insensitive dependency edges: var -> union of deps over every
    // assignment to it, plus the enclosing-branch stack of each command.
    let mut dep_edges: HashMap<VarId, BTreeSet<VarId>> = HashMap::new();
    let mut assign_branches: HashMap<VarId, BTreeSet<BranchId>> = HashMap::new();
    let mut assign_counts: HashMap<VarId, usize> = HashMap::new();
    let mut asserts: Vec<(AssertId, Vec<VarId>, BTreeSet<BranchId>)> = Vec::new();
    collect(
        &ai.cmds,
        &mut Vec::new(),
        &mut dep_edges,
        &mut assign_branches,
        &mut assign_counts,
        &mut asserts,
    );

    asserts
        .into_iter()
        .map(|(id, seed, own_branches)| {
            let mut vars: BTreeSet<VarId> = seed.iter().copied().collect();
            let mut work: Vec<VarId> = seed;
            while let Some(v) = work.pop() {
                if let Some(deps) = dep_edges.get(&v) {
                    for d in deps {
                        if vars.insert(*d) {
                            work.push(*d);
                        }
                    }
                }
            }
            let mut branches = own_branches;
            let mut num_commands = 1; // the assertion itself
            for v in &vars {
                if let Some(bs) = assign_branches.get(v) {
                    branches.extend(bs.iter().copied());
                }
                num_commands += assign_counts.get(v).copied().unwrap_or(0);
            }
            AssertCone {
                id,
                vars,
                branches,
                num_commands,
            }
        })
        .collect()
}

fn collect(
    cmds: &[AiCmd],
    enclosing: &mut Vec<BranchId>,
    dep_edges: &mut HashMap<VarId, BTreeSet<VarId>>,
    assign_branches: &mut HashMap<VarId, BTreeSet<BranchId>>,
    assign_counts: &mut HashMap<VarId, usize>,
    asserts: &mut Vec<(AssertId, Vec<VarId>, BTreeSet<BranchId>)>,
) {
    for c in cmds {
        match c {
            AiCmd::Assign { var, deps, .. } => {
                dep_edges
                    .entry(*var)
                    .or_default()
                    .extend(deps.iter().copied());
                assign_branches
                    .entry(*var)
                    .or_default()
                    .extend(enclosing.iter().copied());
                *assign_counts.entry(*var).or_default() += 1;
            }
            AiCmd::Assert { id, vars, .. } => {
                asserts.push((*id, vars.clone(), enclosing.iter().copied().collect()));
            }
            AiCmd::If {
                branch,
                then_cmds,
                else_cmds,
                ..
            } => {
                enclosing.push(*branch);
                collect(
                    then_cmds,
                    enclosing,
                    dep_edges,
                    assign_branches,
                    assign_counts,
                    asserts,
                );
                collect(
                    else_cmds,
                    enclosing,
                    dep_edges,
                    assign_branches,
                    assign_counts,
                    asserts,
                );
                enclosing.pop();
            }
            AiCmd::Stop { .. } => {}
        }
    }
}

/// Slices the program down to the given surviving assertions.
///
/// The slice keeps:
///
/// * every `If` node with its original [`BranchId`] (bodies may empty
///   out) — the renaming encoder derives each assertion's `BN` from the
///   program-order *prefix* of branch decisions, and blocking clauses
///   quantify over exactly that set, so dropping an `If` would change
///   which counterexamples are enumerated;
/// * every `Stop` (it encodes the constraint `true`);
/// * the surviving assertions themselves;
/// * exactly the assignments whose target is in the union of the
///   surviving assertions' cone variables.
///
/// [`AiProgram::num_branches`] is preserved for the same reason the
/// `If` skeleton is. The result is verdict- and counterexample-set
/// equivalent to the original for every kept assertion.
pub fn slice(ai: &AiProgram, keep_asserts: &HashSet<AssertId>) -> AiProgram {
    slice_with_cones(ai, keep_asserts, &cones(ai))
}

/// [`slice`] with precomputed cones, so a caller that already ran
/// [`cones`] (the screening pass does) does not pay for them twice.
pub(crate) fn slice_with_cones(
    ai: &AiProgram,
    keep_asserts: &HashSet<AssertId>,
    all_cones: &[AssertCone],
) -> AiProgram {
    let mut keep_vars: BTreeSet<VarId> = BTreeSet::new();
    for cone in all_cones {
        if keep_asserts.contains(&cone.id) {
            keep_vars.extend(cone.vars.iter().copied());
        }
    }
    let cmds = slice_cmds(&ai.cmds, keep_asserts, &keep_vars);
    AiProgram::from_parts(ai.vars.clone(), cmds, ai.num_branches)
}

fn slice_cmds(
    cmds: &[AiCmd],
    keep_asserts: &HashSet<AssertId>,
    keep_vars: &BTreeSet<VarId>,
) -> Vec<AiCmd> {
    let mut out = Vec::new();
    for c in cmds {
        match c {
            AiCmd::Assign { var, .. } => {
                if keep_vars.contains(var) {
                    out.push(c.clone());
                }
            }
            AiCmd::Assert { id, .. } => {
                if keep_asserts.contains(id) {
                    out.push(c.clone());
                }
            }
            AiCmd::If {
                branch,
                then_cmds,
                else_cmds,
                site,
            } => {
                out.push(AiCmd::If {
                    branch: *branch,
                    then_cmds: slice_cmds(then_cmds, keep_asserts, keep_vars),
                    else_cmds: slice_cmds(else_cmds, keep_asserts, keep_vars),
                    site: site.clone(),
                });
            }
            AiCmd::Stop { .. } => out.push(c.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_front::parse_source;
    use webssari_ir::{abstract_interpret, filter_program, FilterOptions, Prelude};

    fn ai_of(src: &str) -> AiProgram {
        let ast = parse_source(src).expect("parse");
        let f = filter_program(
            &ast,
            src,
            "t.php",
            &Prelude::standard(),
            &FilterOptions::default(),
        );
        abstract_interpret(&f)
    }

    fn names(ai: &AiProgram, vars: &BTreeSet<VarId>) -> Vec<String> {
        vars.iter().map(|v| ai.vars.name(*v).to_owned()).collect()
    }

    #[test]
    fn cone_follows_assignment_dependencies() {
        let ai = ai_of("<?php $a = $_GET['x']; $b = $a; $c = 'other'; mysql_query($b);");
        let cs = cones(&ai);
        assert_eq!(cs.len(), 1);
        let vars = names(&ai, &cs[0].vars);
        assert!(vars.contains(&"b".to_owned()));
        assert!(vars.contains(&"a".to_owned()));
        assert!(vars.contains(&"_GET[x]".to_owned()));
        assert!(!vars.contains(&"c".to_owned()), "{vars:?}");
    }

    #[test]
    fn cone_collects_enclosing_and_assignment_branches() {
        let ai = ai_of("<?php if ($c) { $x = $_GET['q']; } if ($d) { echo $x; } $y = 1;");
        let cs = cones(&ai);
        assert_eq!(cs.len(), 1);
        // Branch 0 guards the tainting assignment, branch 1 encloses the
        // assertion itself.
        assert_eq!(
            cs[0].branches.iter().map(|b| b.0).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert!(cs[0].num_commands >= 2);
    }

    #[test]
    fn independent_assertions_have_disjoint_cones() {
        let ai = ai_of("<?php $a = $_GET['p']; $b = $_GET['q']; echo $a; mysql_query($b);");
        let cs = cones(&ai);
        assert_eq!(cs.len(), 2);
        let a_vars = names(&ai, &cs[0].vars);
        let b_vars = names(&ai, &cs[1].vars);
        assert!(a_vars.contains(&"a".to_owned()) && !a_vars.contains(&"b".to_owned()));
        assert!(b_vars.contains(&"b".to_owned()) && !b_vars.contains(&"a".to_owned()));
    }

    #[test]
    fn slice_keeps_branch_skeleton_and_drops_irrelevant_assigns() {
        let ai =
            ai_of("<?php $a = $_GET['p']; if ($c) { $junk = $_GET['z']; } echo $a; echo $junk;");
        // Keep only the first assertion (echo $a).
        let keep: HashSet<AssertId> = [AssertId(0)].into_iter().collect();
        let sliced = slice(&ai, &keep);
        assert_eq!(sliced.num_assertions(), 1);
        assert_eq!(sliced.num_branches, ai.num_branches);
        assert!(sliced.num_commands() < ai.num_commands());
        // The If skeleton survives even though its body emptied out.
        fn has_if(cmds: &[AiCmd]) -> bool {
            cmds.iter().any(|c| matches!(c, AiCmd::If { .. }))
        }
        assert!(has_if(&sliced.cmds));
    }

    #[test]
    fn slice_to_nothing_keeps_structure_only() {
        let ai = ai_of("<?php $a = $_GET['p']; if ($c) { echo $a; }");
        let sliced = slice(&ai, &HashSet::new());
        assert_eq!(sliced.num_assertions(), 0);
        assert_eq!(sliced.num_branches, ai.num_branches);
    }
}
