//! Regenerates the §3.3.1-vs-§3.3.2 comparison (experiment E7): the
//! auxiliary-variable encoding (xBMC 0.1) encodes each assignment with
//! `2·|X|` type vectors and blows up; variable renaming (xBMC 1.0) uses
//! 2 per assignment. The paper reports "frequent system breakdowns"
//! for xBMC 0.1 — this harness prints CNF sizes and verification times
//! for both on growing copy-chain programs.
//!
//! ```text
//! cargo run --release -p webssari-bench --bin encoding_blowup
//! ```

use std::time::Instant;

use php_front::parse_source;
use webssari_bench::{branchy_program, chain_program};
use webssari_ir::{abstract_interpret, filter_program, AiProgram, FilterOptions, Prelude};
use xbmc::{aux_encoding, renaming, CheckOptions, EncoderKind, Xbmc};

fn ai_of(src: &str) -> AiProgram {
    let prelude = Prelude::standard();
    let ast = parse_source(src).expect("workload parses");
    let f = filter_program(&ast, src, "bench.php", &prelude, &FilterOptions::default());
    abstract_interpret(&f)
}

fn row(label: &str, ai: &AiProgram) {
    let lattice = taint_lattice::TwoPoint::new();
    let ren = renaming::encode(ai, &lattice);
    let aux = aux_encoding::encode(ai, &lattice);
    let (rv, rc) = (ren.formula.num_vars(), ren.formula.num_clauses());
    let (av, ac) = (aux.formula.num_vars(), aux.formula.num_clauses());
    let t0 = Instant::now();
    let r1 = Xbmc::new(ai).check_all();
    let ren_time = t0.elapsed();
    let t1 = Instant::now();
    let r2 = Xbmc::with_options(
        ai,
        CheckOptions {
            encoder: EncoderKind::AuxVariable,
            ..CheckOptions::default()
        },
    )
    .check_all();
    let aux_time = t1.elapsed();
    assert_eq!(
        r1.violated_assertions, r2.violated_assertions,
        "encodings must agree"
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12} {:>10.2?} {:>10.2?} {:>7.1}x",
        label,
        rv,
        rc,
        av,
        ac,
        ren_time,
        aux_time,
        ac as f64 / rc.max(1) as f64,
    );
}

fn main() {
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "workload",
        "ren vars",
        "ren clauses",
        "aux vars",
        "aux clauses",
        "ren time",
        "aux time",
        "blowup"
    );
    println!("-- straight-line copy chains (renaming constant-folds these) --");
    for n in [4usize, 8, 16, 32, 64] {
        let ai = ai_of(&chain_program(n));
        row(&format!("chain-{n}"), &ai);
    }
    println!("-- branchy programs (nondeterministic guards defeat folding) --");
    for k in [2usize, 4, 6, 8] {
        let ai = ai_of(&branchy_program(k));
        row(&format!("branch-{k}"), &ai);
    }
    println!("\nThe aux/renaming clause ratio grows with program size: the");
    println!("auxiliary-variable encoding copies the whole state (2·|X| type");
    println!("vectors) every step, which is why the paper abandoned xBMC 0.1.");
}
