//! Regenerates Figure 10 (experiments E1 and E3): per-project TS vs
//! BMC error counts over the 38 acknowledged projects, plus the 41.0%
//! instrumentation-reduction headline.
//!
//! ```text
//! cargo run --release -p webssari-bench --bin fig10_table
//! ```

use std::time::Instant;

use corpus::Corpus;
use webssari_bench::{render_fig10, verify_corpus};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    println!("Generating the 38 acknowledged projects of Figure 10…");
    let corpus = Corpus::figure10();
    println!(
        "{} projects, {} files. Verifying with {} threads…\n",
        corpus.projects.len(),
        corpus.num_files(),
        threads
    );
    let start = Instant::now();
    let rows = verify_corpus(&corpus, threads);
    let elapsed = start.elapsed();
    print!("{}", render_fig10(&rows));
    let mismatches: Vec<_> = rows
        .iter()
        .filter(|r| r.ts != r.expected_ts || r.bmc != r.expected_bmc)
        .collect();
    if mismatches.is_empty() {
        println!("\nAll 38 rows match the paper's table.");
    } else {
        println!("\nMISMATCHED ROWS:");
        for r in mismatches {
            println!(
                "  {}: measured {}/{} vs paper {}/{}",
                r.name, r.ts, r.bmc, r.expected_ts, r.expected_bmc
            );
        }
    }
    println!("Total verification time: {elapsed:.2?}");
}
