//! Runs the screening suite (tiered TS→slice→BMC pipeline vs the raw
//! BMC check over the Figure 10 corpus) and writes `BENCH_screen.json`.
//!
//! ```text
//! cargo run --release -p webssari-bench --bin bench_screening         # full run → BENCH_screen.json
//! cargo run --release -p webssari-bench --bin bench_screening -- \
//!     --fast --out BENCH_screen.fast.json --check BENCH_screen.json   # CI smoke mode
//! ```
//!
//! `--fast` measures a prefix of the corpus with fewer repetitions.
//! `--check FILE` compares this run's deterministic outcomes —
//! assertion counts, discharge counts, counterexample fingerprints,
//! never wall times — against a committed baseline, rejects a baseline
//! whose discharge fraction is zero, and exits non-zero on mismatch.

use std::process::ExitCode;

use webssari_bench::screening;

fn main() -> ExitCode {
    let mut fast = false;
    let mut out = String::from("BENCH_screen.json");
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--out" => match args.next() {
                Some(p) => out = p,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(p) => check = Some(p),
                None => return usage("--check needs a path"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
    }

    let suite = screening::run_suite(fast);
    for p in &suite.projects {
        println!(
            "{:<24} {:>3} file(s) {:>4} assert(s) {:>4} discharged ({:>3} flow)  \
             CNF {:>6}→{:<6}→{:<6}  raw {:>9.3?}  screened {:>9.3?}  flow {:>9.3?}",
            p.name,
            p.files,
            p.assertions,
            p.discharged,
            p.flow_discharged,
            p.full_cnf_vars,
            p.sliced_cnf_vars,
            p.flow_cnf_vars,
            p.full_wall,
            p.screened_wall,
            p.flow_wall,
        );
    }
    println!(
        "discharged {:.2}% of assertions ({} flow-clean); CNF vars -{:.2}%, clauses -{:.2}%; \
         speedup {:.2}x",
        suite.discharge_pct_x100() as f64 / 100.0,
        suite.flow_discharged_total(),
        suite.cnf_var_reduction_pct_x100() as f64 / 100.0,
        suite.cnf_clause_reduction_pct_x100() as f64 / 100.0,
        suite.speedup_x100() as f64 / 100.0,
    );
    println!(
        "flow tier: CNF vars -{:.2}%, clauses -{:.2}%; speedup {:.2}x",
        suite.flow_cnf_var_reduction_pct_x100() as f64 / 100.0,
        suite.flow_cnf_clause_reduction_pct_x100() as f64 / 100.0,
        suite.flow_speedup_x100() as f64 / 100.0,
    );

    let doc = suite.to_json().to_json();
    if let Err(e) = std::fs::write(&out, format!("{doc}\n")) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");

    if let Some(baseline_path) = check {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(baseline) = jsonio::parse(&text) else {
            eprintln!("error: {baseline_path} is not valid JSON");
            return ExitCode::FAILURE;
        };
        match suite.check_against(&baseline) {
            Ok(()) => println!("deterministic outcomes match {baseline_path}"),
            Err(e) => {
                eprintln!("error: screening regression against {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: bench_screening [--fast] [--out FILE] [--check FILE]");
    ExitCode::FAILURE
}
