//! Runs the solver-core suite (arena solver vs the frozen pre-refactor
//! solver) and writes `BENCH_sat.json`.
//!
//! ```text
//! cargo run --release -p webssari-bench --bin solver_core              # full run → BENCH_sat.json
//! cargo run --release -p webssari-bench --bin solver_core -- \
//!     --fast --out BENCH_sat.fast.json --check BENCH_sat.json          # CI smoke mode
//! ```
//!
//! `--fast` shrinks timing workloads but keeps enumeration workloads
//! (and their fingerprints) identical to full mode. `--check FILE`
//! compares this run's deterministic outcomes — verdicts and
//! enumeration fingerprints, never wall times — against a committed
//! baseline and exits non-zero on any mismatch. Every run additionally
//! enforces the vacuity guards: if the cube enumeration workloads never
//! dropped a literal (every blocking cube full-width), or any
//! conflict-bound workload produced zero conflicts on either solver,
//! the run fails regardless of `--check`.

use std::process::ExitCode;

use webssari_bench::solver_core;

fn main() -> ExitCode {
    let mut fast = false;
    let mut out = String::from("BENCH_sat.json");
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--out" => match args.next() {
                Some(p) => out = p,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(p) => check = Some(p),
                None => return usage("--check needs a path"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
    }

    let suite = solver_core::run_suite(fast);
    for w in &suite.workloads {
        println!(
            "{:<32} {:<12} arena {:>9.3?}  reference {:>9.3?}  speedup {:.2}x  [{}]",
            w.name,
            w.kind,
            w.arena.wall,
            w.reference.wall,
            w.speedup_x100() as f64 / 100.0,
            w.verdict,
        );
    }
    println!(
        "propagation-bound speedup: {:.2}x",
        suite.propagation_speedup_x100() as f64 / 100.0
    );
    println!(
        "conflict-bound speedup (geometric mean): {:.2}x",
        suite.conflict_speedup_x100() as f64 / 100.0
    );
    println!(
        "cube-enumeration speedup: {:.2}x (mean assignments per cube: {:.2})",
        suite.cube_enumeration_speedup_x100() as f64 / 100.0,
        suite.mean_assignments_per_cube_x100() as f64 / 100.0
    );
    if let Err(e) = suite.vacuity_guard() {
        eprintln!("error: vacuity guard: {e}");
        return ExitCode::FAILURE;
    }

    let doc = suite.to_json().to_json();
    if let Err(e) = std::fs::write(&out, format!("{doc}\n")) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");

    if let Some(baseline_path) = check {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(baseline) = jsonio::parse(&text) else {
            eprintln!("error: {baseline_path} is not valid JSON");
            return ExitCode::FAILURE;
        };
        match suite.check_against(&baseline) {
            Ok(()) => println!("deterministic outcomes match {baseline_path}"),
            Err(e) => {
                eprintln!("error: enumeration regression against {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: solver_core [--fast] [--out FILE] [--check FILE]");
    ExitCode::FAILURE
}
