//! Regenerates the §5 corpus statistics (experiment E2): 230 projects,
//! 11,848 files, 1,140,091 statements, 69 vulnerable projects, 515
//! vulnerable files.
//!
//! ```text
//! cargo run --release -p webssari-bench --bin corpus_stats            # small scale
//! cargo run --release -p webssari-bench --bin corpus_stats -- --full  # paper scale
//! cargo run --release -p webssari-bench --bin corpus_stats -- --full --verify
//! ```
//!
//! `--verify` additionally runs the whole pipeline over every project
//! (slow at full scale) and reports measured vulnerable projects.

use std::time::Instant;

use corpus::{Corpus, CorpusScale};
use webssari_bench::verify_corpus;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let verify = args.iter().any(|a| a == "--verify");
    let scale = if full {
        CorpusScale::Full
    } else {
        CorpusScale::Small
    };
    println!("Generating the 230-project corpus ({scale:?} scale)…");
    let start = Instant::now();
    let corpus = Corpus::sourceforge_230(scale);
    let gen_time = start.elapsed();
    let statements: usize = corpus.projects.iter().map(|p| p.num_statements).sum();
    println!("generation time:        {gen_time:.2?}");
    println!(
        "projects:               {:>9}   (paper: 230)",
        corpus.projects.len()
    );
    println!(
        "files:                  {:>9}   (paper: 11,848)",
        corpus.num_files()
    );
    println!("statements:             {statements:>9}   (paper: 1,140,091)");
    println!(
        "vulnerable projects:    {:>9}   (paper: 69)",
        corpus.expected_vulnerable_projects()
    );
    let vulnerable_files: usize = corpus
        .projects
        .iter()
        .map(|p| p.expected_vulnerable_files)
        .sum();
    println!("vulnerable files:       {vulnerable_files:>9}   (paper: 515)");
    let acknowledged: usize = corpus
        .projects
        .iter()
        .filter(|p| corpus::figure10_profiles().iter().any(|f| f.name == p.name))
        .map(|p| p.expected_ts)
        .sum();
    println!("acknowledged TS errors: {acknowledged:>9}   (paper: 980)");
    if verify {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        println!("\nVerifying every project with {threads} threads…");
        let start = Instant::now();
        let rows = verify_corpus(&corpus, threads);
        let elapsed = start.elapsed();
        let vulnerable = rows.iter().filter(|r| r.bmc > 0).count();
        let ts: usize = rows.iter().map(|r| r.ts).sum();
        let bmc: usize = rows.iter().map(|r| r.bmc).sum();
        println!("measured vulnerable projects: {vulnerable}   (expected 69)");
        println!("measured TS errors:           {ts}");
        println!("measured BMC groups:          {bmc}");
        println!("verification time:            {elapsed:.2?}");
    }
}
