//! Load-generates the verification daemon and writes `BENCH_serve.json`:
//! the legacy thread-per-request core vs the keep-alive event loop,
//! each over a cold (all cache misses) and a warm (all cache hits)
//! phase, with open-loop client connections and configurable
//! pipelining depth.
//!
//! ```text
//! cargo run --release -p webssari-bench --bin bench_serve              # full run → BENCH_serve.json
//! cargo run --release -p webssari-bench --bin bench_serve -- \
//!     --fast --out BENCH_serve.fast.json --check BENCH_serve.json      # CI smoke mode
//! ```
//!
//! `--fast` shrinks request counts for CI. `--check FILE` validates a
//! committed baseline *and* the current run against the vacuity
//! guards — every row nonzero requests and zero errors, warm rows
//! with real cache hits — and requires the warm event-loop phase to
//! beat the warm threaded phase by at least 2x at 8+ connections.
//! Wall times are never compared across runs.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use jsonio::Value;
use webssari_engine::EngineBuilder;
use webssari_serve::{ServeMode, Server, ServerConfig, ServerHandle};

/// One measured serving phase.
struct Row {
    mode: &'static str,
    phase: &'static str,
    connections: usize,
    pipeline: usize,
    requests: u64,
    errors: u64,
    cache_hits: u64,
    wall: Duration,
    p50: Duration,
    p95: Duration,
    p99: Duration,
}

impl Row {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> Value {
        Value::obj(vec![
            ("mode", Value::str(self.mode)),
            ("phase", Value::str(self.phase)),
            ("connections", Value::Num(self.connections as u64)),
            ("pipeline", Value::Num(self.pipeline as u64)),
            ("requests", Value::Num(self.requests)),
            ("errors", Value::Num(self.errors)),
            ("cache_hits", Value::Num(self.cache_hits)),
            ("wall_ms", Value::Num(self.wall.as_millis() as u64)),
            ("rps_x100", Value::Num((self.rps() * 100.0) as u64)),
            ("p50_us", Value::Num(self.p50.as_micros() as u64)),
            ("p95_us", Value::Num(self.p95.as_micros() as u64)),
            ("p99_us", Value::Num(self.p99.as_micros() as u64)),
        ])
    }
}

/// A distinct-per-index PHP source: unique content key, same tiny
/// verification workload.
fn php_source(tag: &str, index: usize) -> String {
    format!("<?php /* {tag}-{index} */ $x = $_GET['x']; echo $x;")
}

fn request_bytes(file: &str, source: &str, close: bool) -> Vec<u8> {
    let connection = if close { "Connection: close\r\n" } else { "" };
    format!(
        "POST /verify?file={file} HTTP/1.1\r\nHost: bench\r\n{connection}\
         Content-Length: {}\r\n\r\n{source}",
        source.len(),
    )
    .into_bytes()
}

/// Reads one framed response from the front of `residue` (topping it
/// up from the socket as needed), leaving any overread bytes of the
/// next pipelined response in place. Returns whether it was a 200
/// with a verification outcome in the body.
fn read_framed(stream: &mut TcpStream, residue: &mut Vec<u8>) -> Result<bool, std::io::Error> {
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = residue.windows(4).position(|w| w == b"\r\n\r\n") {
            break i + 4;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        residue.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&residue[..head_end]).to_string();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0);
    while residue.len() < head_end + content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        residue.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8_lossy(&residue[head_end..head_end + content_length]).to_string();
    residue.drain(..head_end + content_length);
    let ok = head.starts_with("HTTP/1.1 200") && body.contains("outcome");
    if !ok && std::env::var_os("BENCH_SERVE_DEBUG").is_some() {
        eprintln!("--- bad response ---\n{head}{body}");
    }
    Ok(ok)
}

/// Issues `quota` requests over one keep-alive connection, `pipeline`
/// requests in flight per write burst. Returns per-request latencies
/// and the error count.
fn keep_alive_client(
    addr: SocketAddr,
    requests: &[Vec<u8>],
    pipeline: usize,
) -> (Vec<Duration>, u64) {
    let mut latencies = Vec::with_capacity(requests.len());
    let mut errors = 0u64;
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return (latencies, requests.len() as u64);
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let mut residue = Vec::new();
    let mut next = 0usize;
    let mut answered = 0u64;
    while next < requests.len() {
        let burst = pipeline.min(requests.len() - next);
        let burst_started = Instant::now();
        for req in &requests[next..next + burst] {
            if stream.write_all(req).is_err() {
                return (latencies, errors + (requests.len() as u64 - answered));
            }
        }
        for _ in 0..burst {
            match read_framed(&mut stream, &mut residue) {
                Ok(true) => {
                    latencies.push(burst_started.elapsed());
                    answered += 1;
                }
                Ok(false) => {
                    errors += 1;
                    answered += 1;
                }
                Err(_) => return (latencies, errors + (requests.len() as u64 - answered)),
            }
        }
        next += burst;
    }
    (latencies, errors)
}

/// Issues requests the legacy way: one fresh connection each,
/// `Connection: close`, read to EOF.
fn connection_per_request_client(addr: SocketAddr, requests: &[Vec<u8>]) -> (Vec<Duration>, u64) {
    let mut latencies = Vec::with_capacity(requests.len());
    let mut errors = 0u64;
    for req in requests {
        let started = Instant::now();
        let ok = (|| -> Result<bool, std::io::Error> {
            let mut stream = TcpStream::connect(addr)?;
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
            stream.write_all(req)?;
            let mut response = Vec::new();
            stream.read_to_end(&mut response)?;
            let text = String::from_utf8_lossy(&response);
            Ok(text.starts_with("HTTP/1.1 200") && text.contains("outcome"))
        })();
        match ok {
            Ok(true) => latencies.push(started.elapsed()),
            _ => errors += 1,
        }
    }
    (latencies, errors)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Runs one phase: `per_conn[i]` is connection i's request scripts.
fn run_phase(
    server: &ServerHandle,
    mode: &'static str,
    phase: &'static str,
    per_conn: Vec<Vec<Vec<u8>>>,
    pipeline: usize,
) -> Row {
    let addr = server.local_addr();
    let connections = per_conn.len();
    let total: usize = per_conn.iter().map(Vec::len).sum();
    let hits_before = server.state().engine.snapshot().cache_hits;
    let started = Instant::now();
    let results: Vec<(Vec<Duration>, u64)> = std::thread::scope(|s| {
        per_conn
            .iter()
            .map(|requests| {
                s.spawn(move || {
                    if pipeline == 0 {
                        connection_per_request_client(addr, requests)
                    } else {
                        keep_alive_client(addr, requests, pipeline)
                    }
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();
    if std::env::var_os("BENCH_SERVE_DEBUG").is_some() {
        let probe = (|| -> Result<String, std::io::Error> {
            let mut stream = TcpStream::connect(addr)?;
            stream.set_read_timeout(Some(Duration::from_secs(5)))?;
            stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: d\r\nConnection: close\r\n\r\n")?;
            let mut text = String::new();
            stream.read_to_string(&mut text)?;
            Ok(text)
        })();
        match probe {
            Ok(text) => {
                for line in text.lines() {
                    if line.starts_with("webssari_shard_queue_depth")
                        || line.starts_with("webssari_http_requests_total")
                        || line.starts_with("webssari_http_responses_total")
                        || line.starts_with("webssari_http_connections")
                    {
                        eprintln!("[{mode}/{phase}] {line}");
                    }
                }
            }
            Err(e) => eprintln!("[{mode}/{phase}] metrics probe failed: {e}"),
        }
    }
    let mut latencies: Vec<Duration> = Vec::with_capacity(total);
    let mut errors = 0u64;
    for (lat, err) in results {
        latencies.extend(lat);
        errors += err;
    }
    latencies.sort_unstable();
    Row {
        mode,
        phase,
        connections,
        pipeline: pipeline.max(1),
        requests: latencies.len() as u64,
        errors,
        cache_hits: server.state().engine.snapshot().cache_hits - hits_before,
        wall,
        p50: percentile(&latencies, 50.0),
        p95: percentile(&latencies, 95.0),
        p99: percentile(&latencies, 99.0),
    }
}

/// Splits `files` round-robin into per-connection request scripts.
fn scatter(files: &[(String, String)], connections: usize, close: bool) -> Vec<Vec<Vec<u8>>> {
    let mut per_conn: Vec<Vec<Vec<u8>>> = vec![Vec::new(); connections];
    for (i, (file, source)) in files.iter().enumerate() {
        per_conn[i % connections].push(request_bytes(file, source, close));
    }
    per_conn
}

fn bench_mode(
    mode: ServeMode,
    label: &'static str,
    connections: usize,
    pipeline: usize,
    cold_files: usize,
    warm_requests: usize,
) -> Vec<Row> {
    let server = Server::start(
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            http_workers: 4,
            mode,
            ..ServerConfig::default()
        },
        EngineBuilder::new().workers(4).build(),
    )
    .expect("bind bench server");

    // Cold: every request a distinct file — all cache misses.
    let cold: Vec<(String, String)> = (0..cold_files)
        .map(|i| (format!("cold{i}.php"), php_source(label, i)))
        .collect();
    let close = pipeline == 0;
    let cold_row = run_phase(
        &server,
        label,
        "cold",
        scatter(&cold, connections, close),
        pipeline,
    );

    // Warm: requests cycle over a small pre-seeded set — all hits.
    let warm_pool: Vec<(String, String)> = (0..16)
        .map(|i| (format!("warm{i}.php"), php_source(&format!("{label}w"), i)))
        .collect();
    // Seed sequentially (unmeasured) so the phase measures pure hits.
    for (file, source) in &warm_pool {
        let (lat, err) = connection_per_request_client(
            server.local_addr(),
            &[request_bytes(file, source, true)],
        );
        assert!(err == 0 && lat.len() == 1, "warm seeding failed");
    }
    let warm: Vec<(String, String)> = (0..warm_requests)
        .map(|i| warm_pool[i % warm_pool.len()].clone())
        .collect();
    let warm_row = run_phase(
        &server,
        label,
        "warm",
        scatter(&warm, connections, close),
        pipeline,
    );

    server.shutdown().expect("bench server shutdown");
    vec![cold_row, warm_row]
}

fn guard_rows(rows: &[Value], source: &str) -> Result<u64, String> {
    let mut warm_threaded_rps = None;
    let mut warm_event_rps = None;
    if rows.is_empty() {
        return Err(format!("{source}: no rows"));
    }
    for row in rows {
        let mode = row.get("mode").and_then(Value::as_str).unwrap_or("?");
        let phase = row.get("phase").and_then(Value::as_str).unwrap_or("?");
        let requests = row.get("requests").and_then(Value::as_u64).unwrap_or(0);
        let errors = row
            .get("errors")
            .and_then(Value::as_u64)
            .unwrap_or(u64::MAX);
        if requests == 0 {
            return Err(format!("{source}: {mode}/{phase} measured zero requests"));
        }
        if errors != 0 {
            return Err(format!("{source}: {mode}/{phase} had {errors} errors"));
        }
        for key in ["p50_us", "p95_us", "p99_us"] {
            if row.get(key).and_then(Value::as_u64).is_none() {
                return Err(format!("{source}: {mode}/{phase} missing {key}"));
            }
        }
        if phase == "warm" {
            let hits = row.get("cache_hits").and_then(Value::as_u64).unwrap_or(0);
            if hits == 0 {
                return Err(format!(
                    "{source}: {mode}/warm had zero cache hits (vacuous warm phase)"
                ));
            }
            let conns = row.get("connections").and_then(Value::as_u64).unwrap_or(0);
            if conns < 8 {
                return Err(format!(
                    "{source}: {mode}/warm ran at {conns} < 8 connections"
                ));
            }
            let rps = row.get("rps_x100").and_then(Value::as_u64).unwrap_or(0);
            match mode {
                "threaded" => warm_threaded_rps = Some(rps),
                "event-loop" => warm_event_rps = Some(rps),
                _ => {}
            }
        }
    }
    let speedup = match (warm_event_rps, warm_threaded_rps) {
        (Some(e), Some(t)) if t > 0 => e * 100 / t,
        _ => {
            return Err(format!("{source}: missing warm rows for one of the modes"));
        }
    };
    if speedup < 200 {
        return Err(format!(
            "{source}: warm event-loop throughput is only {:.2}x the threaded \
             baseline (need >= 2x)",
            speedup as f64 / 100.0,
        ));
    }
    Ok(speedup)
}

fn main() -> ExitCode {
    let mut fast = false;
    let mut out = String::from("BENCH_serve.json");
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--out" => match args.next() {
                Some(p) => out = p,
                None => return usage("--out needs a path"),
            },
            "--check" => match args.next() {
                Some(p) => check = Some(p),
                None => return usage("--check needs a path"),
            },
            other => return usage(&format!("unknown argument {other}")),
        }
    }

    let connections = 16;
    let pipeline = 8;
    let (cold_files, warm_requests) = if fast { (24, 320) } else { (64, 1280) };

    let mut rows = Vec::new();
    rows.extend(bench_mode(
        ServeMode::Threaded,
        "threaded",
        connections,
        0, // connection per request
        cold_files,
        warm_requests,
    ));
    rows.extend(bench_mode(
        ServeMode::default_for_platform(),
        "event-loop",
        connections,
        pipeline,
        cold_files,
        warm_requests,
    ));

    for row in &rows {
        println!(
            "{:<10} {:<5} {:>2} conn x{:<2} {:>5} req {:>3} err {:>6} hits \
             {:>8.1} rps  p50 {:>9.3?}  p95 {:>9.3?}  p99 {:>9.3?}",
            row.mode,
            row.phase,
            row.connections,
            row.pipeline,
            row.requests,
            row.errors,
            row.cache_hits,
            row.rps(),
            row.p50,
            row.p95,
            row.p99,
        );
    }

    let row_values: Vec<Value> = rows.iter().map(Row::to_json).collect();
    let doc = Value::obj(vec![
        (
            "config",
            Value::obj(vec![
                ("connections", Value::Num(connections as u64)),
                ("pipeline", Value::Num(pipeline as u64)),
                ("cold_files", Value::Num(cold_files as u64)),
                ("warm_requests", Value::Num(warm_requests as u64)),
                ("fast", Value::Bool(fast)),
            ]),
        ),
        ("rows", Value::Arr(row_values.clone())),
    ]);
    if let Err(e) = std::fs::write(&out, format!("{}\n", doc.to_json())) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");

    // This run must satisfy the guards regardless of --check.
    match guard_rows(&row_values, "this run") {
        Ok(speedup) => println!(
            "warm keep-alive speedup over thread-per-request: {:.2}x",
            speedup as f64 / 100.0,
        ),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(baseline_path) = check {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(baseline) = jsonio::parse(&text) else {
            eprintln!("error: {baseline_path} is not valid JSON");
            return ExitCode::FAILURE;
        };
        let Some(rows) = baseline.get("rows").and_then(Value::as_arr) else {
            eprintln!("error: {baseline_path} has no rows array");
            return ExitCode::FAILURE;
        };
        match guard_rows(rows, &baseline_path) {
            Ok(_) => println!("baseline {baseline_path} passes the vacuity guards"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: bench_serve [--fast] [--out FILE] [--check FILE]");
    ExitCode::FAILURE
}
