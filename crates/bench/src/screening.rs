//! The screening suite behind `BENCH_screen.json`: the tiered
//! TS→slice→BMC pipeline (`webssari-analysis`) measured against the raw
//! BMC check over the Figure 10 corpus.
//!
//! For every corpus file both pipelines run end to end:
//!
//! * **raw** — encode the full `AI(F(p))` and enumerate counterexamples
//!   for every assertion, exactly as `--no-screen` does.
//! * **screened** — static discharge, cone-of-influence slice, then
//!   BMC over the slice only (skipped entirely when every assertion
//!   discharges), with traces re-replayed on the full program. The
//!   typestate result all tiers consume is computed outside the timed
//!   region: the verifier needs it for the report whether or not
//!   screening is on, so it is not part of screening's marginal cost.
//! * **flow** — the two-stage tier: static discharge with flow-clean
//!   re-attribution, then BMC over the *refined* slice (dead
//!   definitions dropped, constants folded). Its encoding must be
//!   strictly smaller than the cone-only slice across the corpus.
//!
//! The suite records the discharge fraction, the CNF variable/clause
//! reduction each tier buys, and the wall-clock deltas — and, for the
//! CI smoke job, per-project deterministic outcomes (assertion counts,
//! discharge counts, flow re-attribution counts, and an
//! order-independent counterexample fingerprint) that a committed
//! `BENCH_screen.json` must reproduce. All three pipelines'
//! counterexample sets are asserted identical on every file, so the
//! benchmark doubles as a corpus-scale equivalence check.

use std::time::{Duration, Instant};

use jsonio::Value;
use php_front::parse_source;
use taint_lattice::TwoPoint;
use webssari_ir::{abstract_interpret, filter_program, AiProgram, FilterOptions, Prelude};
use xbmc::{CheckResult, Xbmc};

/// One project's before/after measurement.
#[derive(Clone, Debug)]
pub struct ProjectResult {
    /// Corpus project name (the `--check` comparison key).
    pub name: String,
    /// Files that parsed and were measured.
    pub files: usize,
    /// Total assertions across the project's files.
    pub assertions: usize,
    /// Assertions the screening tier discharged statically.
    pub discharged: usize,
    /// CNF variables when encoding the full programs.
    pub full_cnf_vars: u64,
    /// CNF clauses when encoding the full programs.
    pub full_cnf_clauses: u64,
    /// CNF variables when encoding only the slices (0 for files whose
    /// assertions all discharge).
    pub sliced_cnf_vars: u64,
    /// CNF clauses when encoding only the slices.
    pub sliced_cnf_clauses: u64,
    /// Assertions whose discharge proof the flow tier re-attributed to
    /// `flow-clean`.
    pub flow_discharged: usize,
    /// CNF variables when encoding the flow-refined slices.
    pub flow_cnf_vars: u64,
    /// CNF clauses when encoding the flow-refined slices.
    pub flow_cnf_clauses: u64,
    /// Wall time of the raw pipeline.
    pub full_wall: Duration,
    /// Wall time of the screened pipeline (screen + BMC on the slice).
    pub screened_wall: Duration,
    /// Wall time of the flow pipeline (two-stage screen + BMC on the
    /// refined slice).
    pub flow_wall: Duration,
    /// Counterexamples found (identical in both pipelines).
    pub counterexamples: usize,
    /// Order-independent FNV-1a fingerprint of the counterexample set
    /// across the project's files.
    pub fingerprint: u64,
}

/// A full suite run.
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// `full` or `fast`.
    pub mode: &'static str,
    /// Per-project measurements, in corpus order.
    pub projects: Vec<ProjectResult>,
}

/// Percentage of `part` in `whole`, scaled by 100 (jsonio stores only
/// integers); 0 when `whole` is 0.
fn pct_x100(part: u64, whole: u64) -> u64 {
    (part * 10_000).checked_div(whole).unwrap_or(0)
}

impl SuiteResult {
    fn totals(&self) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
        let mut t = (0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
        for p in &self.projects {
            t.0 += p.assertions as u64;
            t.1 += p.discharged as u64;
            t.2 += p.full_cnf_vars;
            t.3 += p.sliced_cnf_vars;
            t.4 += p.full_cnf_clauses;
            t.5 += p.sliced_cnf_clauses;
            t.6 += p.full_wall.as_micros() as u64;
            t.7 += p.screened_wall.as_micros() as u64;
        }
        t
    }

    /// Fraction of assertions discharged statically, ×100 as a
    /// percentage ×100 (e.g. 4250 = 42.50 %). The acceptance headline:
    /// must be nonzero on the committed baseline.
    pub fn discharge_pct_x100(&self) -> u64 {
        let (assertions, discharged, ..) = self.totals();
        pct_x100(discharged, assertions)
    }

    /// CNF variables removed by slicing, as a percentage ×100 of the
    /// full encoding.
    pub fn cnf_var_reduction_pct_x100(&self) -> u64 {
        let (_, _, full, sliced, ..) = self.totals();
        pct_x100(full.saturating_sub(sliced), full)
    }

    /// CNF clauses removed by slicing, as a percentage ×100.
    pub fn cnf_clause_reduction_pct_x100(&self) -> u64 {
        let (.., full, sliced, _, _) = self.totals();
        pct_x100(full.saturating_sub(sliced), full)
    }

    /// `full_wall / screened_wall`, scaled by 100.
    pub fn speedup_x100(&self) -> u64 {
        let (.., full_us, screened_us) = self.totals();
        full_us * 100 / screened_us.max(1)
    }

    /// `(flow_vars, flow_clauses, flow_us, flow_discharged)` totals for
    /// the flow pipeline.
    fn flow_totals(&self) -> (u64, u64, u64, u64) {
        let mut t = (0u64, 0u64, 0u64, 0u64);
        for p in &self.projects {
            t.0 += p.flow_cnf_vars;
            t.1 += p.flow_cnf_clauses;
            t.2 += p.flow_wall.as_micros() as u64;
            t.3 += p.flow_discharged as u64;
        }
        t
    }

    /// CNF variables removed by the flow-refined slice, as a percentage
    /// ×100 of the full encoding.
    pub fn flow_cnf_var_reduction_pct_x100(&self) -> u64 {
        let (_, _, full, ..) = self.totals();
        let (flow, ..) = self.flow_totals();
        pct_x100(full.saturating_sub(flow), full)
    }

    /// CNF clauses removed by the flow-refined slice, as a percentage
    /// ×100 of the full encoding.
    pub fn flow_cnf_clause_reduction_pct_x100(&self) -> u64 {
        let full = self.totals().4;
        let (_, flow, ..) = self.flow_totals();
        pct_x100(full.saturating_sub(flow), full)
    }

    /// `full_wall / flow_wall`, scaled by 100.
    pub fn flow_speedup_x100(&self) -> u64 {
        let (.., full_us, _) = self.totals();
        let (_, _, flow_us, _) = self.flow_totals();
        full_us * 100 / flow_us.max(1)
    }

    /// Total flow-clean re-attributions across the corpus.
    pub fn flow_discharged_total(&self) -> u64 {
        self.flow_totals().3
    }

    /// Serializes the suite to the `BENCH_screen.json` document.
    pub fn to_json(&self) -> Value {
        let projects = self
            .projects
            .iter()
            .map(|p| {
                Value::obj(vec![
                    ("name", Value::str(p.name.clone())),
                    ("files", Value::Num(p.files as u64)),
                    ("assertions", Value::Num(p.assertions as u64)),
                    ("discharged", Value::Num(p.discharged as u64)),
                    ("full_cnf_vars", Value::Num(p.full_cnf_vars)),
                    ("full_cnf_clauses", Value::Num(p.full_cnf_clauses)),
                    ("sliced_cnf_vars", Value::Num(p.sliced_cnf_vars)),
                    ("sliced_cnf_clauses", Value::Num(p.sliced_cnf_clauses)),
                    ("flow_discharged", Value::Num(p.flow_discharged as u64)),
                    ("flow_cnf_vars", Value::Num(p.flow_cnf_vars)),
                    ("flow_cnf_clauses", Value::Num(p.flow_cnf_clauses)),
                    ("full_wall_us", Value::Num(p.full_wall.as_micros() as u64)),
                    (
                        "screened_wall_us",
                        Value::Num(p.screened_wall.as_micros() as u64),
                    ),
                    ("flow_wall_us", Value::Num(p.flow_wall.as_micros() as u64)),
                    ("counterexamples", Value::Num(p.counterexamples as u64)),
                    ("fingerprint", Value::str(format!("{:016x}", p.fingerprint))),
                ])
            })
            .collect();
        Value::obj(vec![
            ("schema", Value::str("bench_screen/v2")),
            ("mode", Value::str(self.mode)),
            (
                "summary",
                Value::obj(vec![
                    ("discharge_pct_x100", Value::Num(self.discharge_pct_x100())),
                    (
                        "cnf_var_reduction_pct_x100",
                        Value::Num(self.cnf_var_reduction_pct_x100()),
                    ),
                    (
                        "cnf_clause_reduction_pct_x100",
                        Value::Num(self.cnf_clause_reduction_pct_x100()),
                    ),
                    ("speedup_x100", Value::Num(self.speedup_x100())),
                    (
                        "flow_cnf_var_reduction_pct_x100",
                        Value::Num(self.flow_cnf_var_reduction_pct_x100()),
                    ),
                    (
                        "flow_cnf_clause_reduction_pct_x100",
                        Value::Num(self.flow_cnf_clause_reduction_pct_x100()),
                    ),
                    ("flow_speedup_x100", Value::Num(self.flow_speedup_x100())),
                    ("flow_discharged", Value::Num(self.flow_discharged_total())),
                ]),
            ),
            ("projects", Value::Arr(projects)),
        ])
    }

    /// Compares this run's deterministic outcomes (assertion counts,
    /// discharge counts, counterexample counts and fingerprints — never
    /// wall times or CNF sizes, which encoder changes may legitimately
    /// move) against a committed `BENCH_screen.json`.
    ///
    /// Projects are matched by name, so a fast run checked against a
    /// committed full run compares only the projects both have.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn check_against(&self, committed: &Value) -> Result<(), String> {
        let committed_projects = committed
            .get("projects")
            .and_then(Value::as_arr)
            .ok_or("committed BENCH_screen.json has no projects array")?;
        for p in &self.projects {
            let Some(c) = committed_projects
                .iter()
                .find(|c| c.get("name").and_then(Value::as_str) == Some(p.name.as_str()))
            else {
                continue;
            };
            for (field, current) in [
                ("assertions", p.assertions as u64),
                ("discharged", p.discharged as u64),
                ("flow_discharged", p.flow_discharged as u64),
                ("counterexamples", p.counterexamples as u64),
            ] {
                let committed_n = c.get(field).and_then(Value::as_u64).unwrap_or(u64::MAX);
                if committed_n != current {
                    return Err(format!(
                        "project {}: {field} {current} != committed {committed_n}",
                        p.name
                    ));
                }
            }
            let committed_fp = c.get("fingerprint").and_then(Value::as_str).unwrap_or("");
            let current_fp = format!("{:016x}", p.fingerprint);
            if committed_fp != current_fp {
                return Err(format!(
                    "project {}: fingerprint {current_fp} != committed {committed_fp}",
                    p.name
                ));
            }
        }
        let committed_discharge = committed
            .get("summary")
            .and_then(|s| s.get("discharge_pct_x100"))
            .and_then(Value::as_u64)
            .unwrap_or(0);
        if committed_discharge == 0 {
            return Err("committed baseline discharges nothing — screening is vacuous".into());
        }
        if committed_discharge < 4500 {
            return Err(format!(
                "committed baseline discharges only {:.2}% statically — below the 45% target",
                committed_discharge as f64 / 100.0
            ));
        }
        // The flow tier must buy a *strictly* smaller encoding than the
        // cone-only slice on this run (dead-definition elimination and
        // constant folding are its whole point), and must re-attribute
        // a nonzero number of proofs.
        let sliced_clauses = self.totals().5;
        let (_, flow_clauses, ..) = self.flow_totals();
        if sliced_clauses > 0 && flow_clauses >= sliced_clauses {
            return Err(format!(
                "flow-refined encoding ({flow_clauses} clauses) is not strictly smaller than \
                 the cone-only slice ({sliced_clauses} clauses) — the flow tier is vacuous"
            ));
        }
        if self.flow_discharged_total() == 0 {
            return Err(
                "flow tier re-attributed no discharge proofs — flow-clean is vacuous".into(),
            );
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

/// Order-independent FNV-1a over a sorted `(file, assert, branches)`
/// counterexample set.
fn fingerprint(counterexamples: &mut [(usize, u32, Vec<bool>)]) -> u64 {
    counterexamples.sort();
    let mut h = 0xcbf29ce484222325u64;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    };
    for (file, id, branches) in counterexamples.iter() {
        for b in (*file as u64).to_le_bytes() {
            eat(b);
        }
        for b in id.to_le_bytes() {
            eat(b);
        }
        for &bit in branches {
            eat(u8::from(bit));
        }
        eat(0xFF);
    }
    h
}

fn ai_of(src: &str, name: &str, prelude: &Prelude) -> Option<AiProgram> {
    let ast = parse_source(src).ok()?;
    let f = filter_program(&ast, src, name, prelude, &FilterOptions::default());
    Some(abstract_interpret(&f))
}

/// The raw pipeline: full encoding, full enumeration.
fn raw_check(ai: &AiProgram) -> CheckResult {
    Xbmc::new(ai).check_all()
}

/// The screened pipeline, exactly as `webssari-core` runs it: static
/// discharge then BMC over the slice (or no SAT at all when everything
/// discharges), with traces re-replayed on the full program. Takes the
/// typestate result as input because the verifier computes it for the
/// report whether or not screening is on — it is not part of
/// screening's marginal cost. Returns the merged result and the
/// discharge count.
fn screened_check(
    ai: &AiProgram,
    ts: &typestate::TsResult,
    lattice: &TwoPoint,
) -> (CheckResult, usize) {
    let screened = webssari_analysis::screen(ai, ts, lattice);
    let discharged = screened.discharged.len();
    let mut result = if screened.all_discharged() {
        CheckResult::default()
    } else {
        Xbmc::new(&screened.sliced).check_all()
    };
    result.checked_assertions += discharged;
    for cx in &mut result.counterexamples {
        cx.trace = xbmc::replay_trace(ai, &cx.branches, cx.assert_id);
    }
    (result, discharged)
}

/// The two-stage flow pipeline, exactly as `webssari-core` runs it with
/// the flow tier on: static discharge with flow-clean re-attribution,
/// then BMC over the refined (dead-defs-dropped, consts-folded) slice,
/// with traces re-replayed on the full program. Returns the merged
/// result and the flow-clean re-attribution count.
fn flow_check(
    ai: &AiProgram,
    ts: &typestate::TsResult,
    lattice: &TwoPoint,
) -> (CheckResult, usize) {
    let flow = webssari_analysis::screen_two_stage(ai, ts, lattice);
    let discharged = flow.screen.discharged.len();
    let mut result = if flow.screen.all_discharged() {
        CheckResult::default()
    } else {
        Xbmc::new(&flow.refined).check_all()
    };
    result.checked_assertions += discharged;
    for cx in &mut result.counterexamples {
        cx.trace = xbmc::replay_trace(ai, &cx.branches, cx.assert_id);
    }
    (result, flow.flow_discharged as usize)
}

/// Measures one project: every file through both pipelines, best-of-
/// `reps` wall times, deterministic outcomes asserted equal between the
/// pipelines on every rep.
fn measure_project(
    name: &str,
    files: &[(String, String)],
    prelude: &Prelude,
    reps: usize,
) -> ProjectResult {
    let lattice = TwoPoint::new();
    let programs: Vec<(AiProgram, typestate::TsResult)> = files
        .iter()
        .filter_map(|(file, src)| ai_of(src, file, prelude))
        .map(|ai| {
            let ts = typestate::analyze(&ai, &lattice);
            (ai, ts)
        })
        .collect();

    // Deterministic outcomes and CNF sizes, measured once.
    let mut assertions = 0usize;
    let mut discharged_total = 0usize;
    let mut flow_discharged_total = 0usize;
    let mut full_sizes = (0u64, 0u64);
    let mut sliced_sizes = (0u64, 0u64);
    let mut flow_sizes = (0u64, 0u64);
    let mut cxs: Vec<(usize, u32, Vec<bool>)> = Vec::new();
    for (idx, (ai, ts)) in programs.iter().enumerate() {
        assertions += ai.num_assertions();
        let full = raw_check(ai);
        let (screened, discharged) = screened_check(ai, ts, &lattice);
        assert_eq!(
            full.counterexamples, screened.counterexamples,
            "{name}: screening changed the counterexample set"
        );
        let (flowed, flow_discharged) = flow_check(ai, ts, &lattice);
        assert_eq!(
            full.counterexamples, flowed.counterexamples,
            "{name}: the flow tier changed the counterexample set"
        );
        discharged_total += discharged;
        flow_discharged_total += flow_discharged;
        full_sizes.0 += full.stats.cnf_vars as u64;
        full_sizes.1 += full.stats.cnf_clauses as u64;
        sliced_sizes.0 += screened.stats.cnf_vars as u64;
        sliced_sizes.1 += screened.stats.cnf_clauses as u64;
        flow_sizes.0 += flowed.stats.cnf_vars as u64;
        flow_sizes.1 += flowed.stats.cnf_clauses as u64;
        cxs.extend(
            full.counterexamples
                .iter()
                .map(|c| (idx, c.assert_id.0, c.branches.clone())),
        );
    }

    // Wall times: best of `reps` end-to-end sweeps per pipeline.
    let mut full_wall: Option<Duration> = None;
    let mut screened_wall: Option<Duration> = None;
    let mut flow_wall: Option<Duration> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        for (ai, _) in &programs {
            let _ = raw_check(ai);
        }
        let f = t0.elapsed();
        if full_wall.is_none_or(|best| f < best) {
            full_wall = Some(f);
        }
        let t1 = Instant::now();
        for (ai, ts) in &programs {
            let _ = screened_check(ai, ts, &lattice);
        }
        let s = t1.elapsed();
        if screened_wall.is_none_or(|best| s < best) {
            screened_wall = Some(s);
        }
        let t2 = Instant::now();
        for (ai, ts) in &programs {
            let _ = flow_check(ai, ts, &lattice);
        }
        let w = t2.elapsed();
        if flow_wall.is_none_or(|best| w < best) {
            flow_wall = Some(w);
        }
    }

    let counterexamples = cxs.len();
    ProjectResult {
        name: name.to_owned(),
        files: programs.len(),
        assertions,
        discharged: discharged_total,
        full_cnf_vars: full_sizes.0,
        full_cnf_clauses: full_sizes.1,
        sliced_cnf_vars: sliced_sizes.0,
        sliced_cnf_clauses: sliced_sizes.1,
        flow_discharged: flow_discharged_total,
        flow_cnf_vars: flow_sizes.0,
        flow_cnf_clauses: flow_sizes.1,
        full_wall: full_wall.expect("reps >= 1"),
        screened_wall: screened_wall.expect("reps >= 1"),
        flow_wall: flow_wall.expect("reps >= 1"),
        counterexamples,
        fingerprint: fingerprint(&mut cxs),
    }
}

/// A wide synthetic file: `n` sanitized echo blocks (every one
/// discharged by the screening tier) around one small tainted core —
/// the shape slicing is built for. The raw pipeline encodes and checks
/// all `n + 1` assertions; the screened pipeline SAT-checks exactly one
/// over a cone-sized formula.
fn synthetic_wide(n: usize) -> Vec<(String, String)> {
    let mut src = String::from("<?php\n");
    for i in 0..n {
        src.push_str(&format!(
            "$s{i} = htmlspecialchars($_GET['p{i}']);\necho $s{i};\n"
        ));
    }
    src.push_str("$x = $_GET['x'];\nif ($c) { $x = 'safe'; }\nmysql_query($x);\n");
    vec![("wide.php".to_owned(), src)]
}

/// Runs the suite over the Figure 10 corpus plus one wide synthetic
/// workload. `fast` measures a prefix of the corpus with fewer
/// repetitions for the CI smoke job; deterministic outcomes for the
/// projects it does measure are identical to full mode.
pub fn run_suite(fast: bool) -> SuiteResult {
    let corpus = corpus::Corpus::figure10();
    let prelude = Prelude::standard();
    let (limit, reps) = if fast {
        (10, 1)
    } else {
        (corpus.projects.len(), 3)
    };
    let mut projects: Vec<ProjectResult> = corpus
        .projects
        .iter()
        .take(limit)
        .map(|p| {
            let files: Vec<(String, String)> = p
                .sources
                .iter()
                .map(|(n, s)| (n.to_owned(), s.to_owned()))
                .collect();
            measure_project(&p.name, &files, &prelude, reps)
        })
        .collect();
    // Sized identically in both modes so the smoke run's outcomes are
    // comparable against a committed full baseline.
    projects.push(measure_project(
        "synthetic-wide-sanitized",
        &synthetic_wide(150),
        &prelude,
        reps,
    ));
    // The SQL-heavy profile: structured-SQL sinks (concat vs
    // parameterized) and fetch-read pages, also identical across modes.
    let sql_heavy: Vec<(String, String)> = corpus::sql_heavy_project(12)
        .sources
        .iter()
        .map(|(n, s)| (n.to_owned(), s.to_owned()))
        .collect();
    projects.push(measure_project("sql-heavy", &sql_heavy, &prelude, reps));
    SuiteResult {
        mode: if fast { "fast" } else { "full" },
        projects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_suite() -> SuiteResult {
        SuiteResult {
            mode: "fast",
            projects: vec![ProjectResult {
                name: "proj-a".into(),
                files: 2,
                assertions: 8,
                discharged: 4,
                full_cnf_vars: 400,
                full_cnf_clauses: 900,
                sliced_cnf_vars: 300,
                sliced_cnf_clauses: 700,
                flow_discharged: 2,
                flow_cnf_vars: 280,
                flow_cnf_clauses: 600,
                full_wall: Duration::from_micros(4000),
                screened_wall: Duration::from_micros(2500),
                flow_wall: Duration::from_micros(2000),
                counterexamples: 5,
                fingerprint: 0xABCD,
            }],
        }
    }

    #[test]
    fn summary_percentages_are_scaled_integers() {
        let suite = synthetic_suite();
        assert_eq!(suite.discharge_pct_x100(), 5000); // 4/8 = 50.00 %
        assert_eq!(suite.cnf_var_reduction_pct_x100(), 2500); // 100/400
        assert_eq!(suite.speedup_x100(), 160); // 4000/2500
        assert_eq!(suite.flow_cnf_var_reduction_pct_x100(), 3000); // 120/400
        assert_eq!(suite.flow_cnf_clause_reduction_pct_x100(), 3333); // 300/900
        assert_eq!(suite.flow_speedup_x100(), 200); // 4000/2000
        assert_eq!(suite.flow_discharged_total(), 2);
    }

    #[test]
    fn check_catches_outcome_drift_but_not_timing() {
        let suite = synthetic_suite();
        let text = suite.to_json().to_json();
        let committed = jsonio::parse(&text).expect("suite JSON parses");
        suite
            .check_against(&committed)
            .expect("a run checks against its own output");
        // Wall times may drift freely.
        let slower = text.replace("\"screened_wall_us\":2500", "\"screened_wall_us\":9999");
        suite
            .check_against(&jsonio::parse(&slower).unwrap())
            .expect("wall times are not compared");
        // Discharge counts may not.
        let drifted = text.replace("\"discharged\":4", "\"discharged\":2");
        assert!(suite
            .check_against(&jsonio::parse(&drifted).unwrap())
            .is_err());
        // Nor flow re-attribution counts.
        let flow_drifted = text.replace("\"flow_discharged\":2,", "\"flow_discharged\":1,");
        assert!(suite
            .check_against(&jsonio::parse(&flow_drifted).unwrap())
            .is_err());
        // Nor fingerprints.
        let tampered = text.replace("000000000000abcd", "0000000000000000");
        assert!(suite
            .check_against(&jsonio::parse(&tampered).unwrap())
            .is_err());
    }

    #[test]
    fn check_rejects_a_vacuous_baseline() {
        let mut suite = synthetic_suite();
        suite.projects[0].discharged = 0;
        let committed = jsonio::parse(&suite.to_json().to_json()).unwrap();
        assert!(suite.check_against(&committed).is_err());
    }

    #[test]
    fn check_rejects_a_baseline_below_the_discharge_target() {
        let mut suite = synthetic_suite();
        suite.projects[0].discharged = 3; // 37.50 % < 45 %
        let committed = jsonio::parse(&suite.to_json().to_json()).unwrap();
        let err = suite.check_against(&committed).unwrap_err();
        assert!(err.contains("45%"), "{err}");
    }

    #[test]
    fn check_rejects_a_flow_tier_that_buys_nothing() {
        // Equal clause counts: the refinement did not strictly shrink
        // the encoding.
        let mut suite = synthetic_suite();
        suite.projects[0].flow_cnf_clauses = suite.projects[0].sliced_cnf_clauses;
        let committed = jsonio::parse(&suite.to_json().to_json()).unwrap();
        let err = suite.check_against(&committed).unwrap_err();
        assert!(err.contains("strictly smaller"), "{err}");
        // Zero re-attributions: flow-clean never fired.
        let mut suite = synthetic_suite();
        suite.projects[0].flow_discharged = 0;
        let committed = jsonio::parse(&suite.to_json().to_json()).unwrap();
        let err = suite.check_against(&committed).unwrap_err();
        assert!(err.contains("re-attributed"), "{err}");
    }

    #[test]
    fn screened_pipeline_matches_raw_on_a_small_project() {
        let files = vec![
            (
                "clean.php".to_owned(),
                "<?php\n$a = htmlspecialchars($_GET['a']);\necho $a;\n".to_owned(),
            ),
            (
                "vuln.php".to_owned(),
                "<?php\n$b = $_GET['b'];\nmysql_query($b);\n".to_owned(),
            ),
        ];
        let r = measure_project("mini", &files, &Prelude::standard(), 1);
        assert_eq!(r.files, 2);
        assert!(r.assertions >= 2);
        assert!(r.discharged >= 1, "the sanitized file must discharge");
        assert_eq!(r.counterexamples, 1);
        assert!(r.sliced_cnf_vars < r.full_cnf_vars);
        assert!(r.flow_cnf_clauses <= r.sliced_cnf_clauses);
    }

    #[test]
    fn flow_pipeline_strictly_shrinks_a_dead_def_cone() {
        // The sink's cone variable carries a branch-dependent dead
        // definition the flow tier drops (along with the branch's merge
        // clauses); cone-only slicing must keep it.
        let files = vec![(
            "dead.php".to_owned(),
            "<?php\nif ($c) { $x = $_GET['a']; } else { $x = 'lit'; }\n\
             $x = $_GET['x'];\nmysql_query($x);\n\
             $tk = $_GET['tk'];\n$tk = 'safe';\necho $tk;\n"
                .to_owned(),
        )];
        let r = measure_project("dead-def", &files, &Prelude::standard(), 1);
        // The dead branch is in the sink's cone, so enumeration
        // quantifies over it: one counterexample per branch value.
        assert_eq!(r.counterexamples, 2);
        assert!(
            r.flow_cnf_clauses < r.sliced_cnf_clauses,
            "flow {} vs sliced {}",
            r.flow_cnf_clauses,
            r.sliced_cnf_clauses
        );
        assert!(
            r.flow_discharged >= 1,
            "the killed-taint echo must re-attribute to flow-clean"
        );
    }
}
