//! The solver-core suite behind `BENCH_sat.json`: the arena solver
//! measured head-to-head against the frozen pre-refactor implementation
//! ([`sat::reference::Solver`]) on three workload families —
//!
//! * **propagation-bound** — parallel implication chains with
//!   scattered clause storage, re-propagated from scratch on every
//!   solve; no conflicts, no root units (so `add_formula` preprocessing
//!   cannot shortcut it), pure watcher-walk and clause-access
//!   throughput.
//! * **conflict-bound** — pigeonhole instances, random 3-SAT at the
//!   phase-transition ratio, and a BMC-shaped unrolled-counter unsat
//!   family; dominated by conflict analysis, learning, and
//!   clause-database maintenance (tiered reduction, binary implication
//!   lists, glue restarts, root inprocessing). The headline is the
//!   geometric-mean speedup across the family, and a vacuity guard
//!   fails the run if any conflict workload stops producing conflicts.
//! * **enumeration-bound** — the xBMC counterexample loop (paper
//!   §3.3.2) over a branchy program's renaming encoding; repeated
//!   solve-plus-blocking-clause with a per-assertion selector, exactly
//!   as `Xbmc::check_all` drives it.
//!
//! Every workload records wall time and solver counters for both
//! solvers; enumeration workloads additionally record an
//! order-independent fingerprint of the counterexample set, which the
//! CI smoke job compares against the committed `BENCH_sat.json` so a
//! solver change that silently alters enumeration results fails the
//! build.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use cnf::{CnfFormula, Lit, Var};
use jsonio::Value;
use sat::{SatResult, SolverStats};
use taint_lattice::TwoPoint;
use webssari_ir::AiProgram;

use crate::branchy_program;

/// The two solver generations under measurement, behind one interface.
trait CoreSolver {
    /// Ingests a formula into a fresh solver.
    fn build(f: &CnfFormula) -> Self;
    /// Solves under assumptions.
    fn assume(&mut self, assumptions: &[Lit]) -> SatResult;
    /// Adds a clause.
    fn add(&mut self, lits: Vec<Lit>) -> bool;
    /// Work counters.
    fn counters(&self) -> SolverStats;
}

impl CoreSolver for sat::Solver {
    fn build(f: &CnfFormula) -> Self {
        sat::Solver::from_formula(f)
    }

    fn assume(&mut self, assumptions: &[Lit]) -> SatResult {
        self.solve_with_assumptions(assumptions)
    }

    fn add(&mut self, lits: Vec<Lit>) -> bool {
        self.add_clause(lits)
    }

    fn counters(&self) -> SolverStats {
        *self.stats()
    }
}

impl CoreSolver for sat::reference::Solver {
    fn build(f: &CnfFormula) -> Self {
        sat::reference::Solver::from_formula(f)
    }

    fn assume(&mut self, assumptions: &[Lit]) -> SatResult {
        self.solve_with_assumptions(assumptions)
    }

    fn add(&mut self, lits: Vec<Lit>) -> bool {
        self.add_clause(lits)
    }

    fn counters(&self) -> SolverStats {
        *self.stats()
    }
}

/// One solver's measurement on one workload.
#[derive(Clone, Copy, Debug)]
pub struct Side {
    /// Wall time of the measured phase (formula ingestion included).
    pub wall: Duration,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts found.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Propagations served by binary implication lists (always zero on
    /// the reference solver, which has no such lists).
    pub binary_propagations: u64,
    /// Learned clauses that entered the core glue tier (LBD ≤ 2); zero
    /// on the untiered reference solver.
    pub glue_core: u64,
    /// Learned clauses that entered the mid glue tier (LBD 3–6).
    pub glue_mid: u64,
    /// Learned clauses that entered the local glue tier (LBD > 6).
    pub glue_local: u64,
}

impl Side {
    fn new(wall: Duration, s: &SolverStats) -> Side {
        Side {
            wall,
            propagations: s.propagations,
            conflicts: s.conflicts,
            decisions: s.decisions,
            restarts: s.restarts,
            binary_propagations: s.binary_propagations,
            glue_core: s.glue_core,
            glue_mid: s.glue_mid,
            glue_local: s.glue_local,
        }
    }

    fn to_value(self) -> Value {
        Value::obj(vec![
            ("wall_us", Value::Num(self.wall.as_micros() as u64)),
            ("propagations", Value::Num(self.propagations)),
            ("conflicts", Value::Num(self.conflicts)),
            ("decisions", Value::Num(self.decisions)),
            ("restarts", Value::Num(self.restarts)),
            ("binary_propagations", Value::Num(self.binary_propagations)),
            ("glue_core", Value::Num(self.glue_core)),
            ("glue_mid", Value::Num(self.glue_mid)),
            ("glue_local", Value::Num(self.glue_local)),
        ])
    }
}

/// One workload's before/after measurement.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Stable workload name (the `--check` comparison key).
    pub name: String,
    /// Workload family: `propagation`, `conflict`, or `enumeration`.
    pub kind: &'static str,
    /// The deterministic outcome: `sat`/`unsat` for solve workloads, a
    /// counterexample count for enumeration workloads.
    pub verdict: String,
    /// Arena solver measurement (the "after" number).
    pub arena: Side,
    /// Reference solver measurement (the "before" number).
    pub reference: Side,
    /// Order-independent FNV-1a fingerprint of the enumerated
    /// counterexample set, for enumeration workloads.
    pub fingerprint: Option<u64>,
    /// Blocking cubes learned, for cube-generalized enumeration
    /// workloads.
    pub cubes_learned: Option<u64>,
    /// Distinct assignments covered by the learned cubes, for
    /// cube-generalized enumeration workloads.
    pub cube_assignments: Option<u64>,
}

impl WorkloadResult {
    /// `reference.wall / arena.wall`, scaled by 100 (jsonio stores only
    /// integers).
    pub fn speedup_x100(&self) -> u64 {
        let arena_us = self.arena.wall.as_micros().max(1) as u64;
        let reference_us = self.reference.wall.as_micros() as u64;
        reference_us * 100 / arena_us
    }
}

/// A full suite run.
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// `full` or `fast`.
    pub mode: &'static str,
    /// Per-workload measurements, in suite order.
    pub workloads: Vec<WorkloadResult>,
}

impl SuiteResult {
    /// The propagation-bound workload's speedup ×100 (the acceptance
    /// headline).
    pub fn propagation_speedup_x100(&self) -> u64 {
        self.workloads
            .iter()
            .filter(|w| w.kind == "propagation")
            .map(WorkloadResult::speedup_x100)
            .min()
            .unwrap_or(0)
    }

    /// Geometric-mean speedup ×100 across conflict-bound workloads (the
    /// clause-learning acceptance headline). Geometric, not minimum:
    /// conflict-count trajectories diverge per instance once the
    /// propagation order changes, so the family-wide ratio is the
    /// meaningful number, not the single worst lottery ticket.
    pub fn conflict_speedup_x100(&self) -> u64 {
        let logs: Vec<f64> = self
            .workloads
            .iter()
            .filter(|w| w.kind == "conflict")
            .map(|w| (w.speedup_x100() as f64 / 100.0).max(1e-9).ln())
            .collect();
        if logs.is_empty() {
            return 0;
        }
        let mean = logs.iter().sum::<f64>() / logs.len() as f64;
        (mean.exp() * 100.0).round() as u64
    }

    /// The minimum speedup ×100 across cube-generalized enumeration
    /// workloads (cube loop vs per-model loop on the same solver).
    pub fn cube_enumeration_speedup_x100(&self) -> u64 {
        self.workloads
            .iter()
            .filter(|w| w.cubes_learned.is_some())
            .map(WorkloadResult::speedup_x100)
            .min()
            .unwrap_or(0)
    }

    /// Mean assignments covered per learned cube across cube-generalized
    /// enumeration workloads, ×100 (jsonio stores only integers). A
    /// value of 100 means every cube was full-width — generalization
    /// did nothing.
    pub fn mean_assignments_per_cube_x100(&self) -> u64 {
        let cubes: u64 = self.workloads.iter().filter_map(|w| w.cubes_learned).sum();
        let assignments: u64 = self
            .workloads
            .iter()
            .filter_map(|w| w.cube_assignments)
            .sum();
        (assignments * 100).checked_div(cubes).unwrap_or(0)
    }

    /// Rejects vacuous runs. Cube workloads must cover strictly more
    /// assignments than they learned cubes (at least one cube dropped a
    /// literal), and at least one must have run. Conflict workloads
    /// must produce conflicts on *both* solvers — a conflict-bound
    /// instance that one side solves without learning anything means
    /// the workload stopped exercising the conflict path (e.g.
    /// preprocessing started solving it outright) and its speedup is
    /// measuring nothing; at least one conflict workload must have run.
    ///
    /// # Errors
    ///
    /// Returns a description of the vacuous workload, or of the missing
    /// workload family.
    pub fn vacuity_guard(&self) -> Result<(), String> {
        let mut saw_cubes = false;
        let mut saw_conflicts = false;
        for w in &self.workloads {
            if w.kind == "conflict" {
                saw_conflicts = true;
                if w.arena.conflicts == 0 || w.reference.conflicts == 0 {
                    return Err(format!(
                        "workload {}: zero conflicts (arena {}, reference {}) — \
                         the conflict path was never exercised",
                        w.name, w.arena.conflicts, w.reference.conflicts
                    ));
                }
            }
            let (Some(cubes), Some(assignments)) = (w.cubes_learned, w.cube_assignments) else {
                continue;
            };
            saw_cubes = true;
            if assignments <= cubes {
                return Err(format!(
                    "workload {}: {cubes} cube(s) cover only {assignments} assignment(s) — \
                     every cube is full-width, generalization did nothing",
                    w.name
                ));
            }
        }
        if !saw_cubes {
            return Err("no cube-generalized enumeration workload ran".into());
        }
        if !saw_conflicts {
            return Err("no conflict-bound workload ran".into());
        }
        Ok(())
    }

    /// Serializes the suite to the `BENCH_sat.json` document.
    pub fn to_json(&self) -> Value {
        let workloads = self
            .workloads
            .iter()
            .map(|w| {
                let mut pairs = vec![
                    ("name", Value::str(w.name.clone())),
                    ("kind", Value::str(w.kind)),
                    ("verdict", Value::str(w.verdict.clone())),
                    ("arena", w.arena.to_value()),
                    ("reference", w.reference.to_value()),
                    ("speedup_x100", Value::Num(w.speedup_x100())),
                ];
                if let Some(fp) = w.fingerprint {
                    pairs.push(("fingerprint", Value::str(format!("{fp:016x}"))));
                }
                if let Some(c) = w.cubes_learned {
                    pairs.push(("cubes_learned", Value::Num(c)));
                }
                if let Some(c) = w.cube_assignments {
                    pairs.push(("cube_assignments", Value::Num(c)));
                }
                Value::obj(pairs)
            })
            .collect();
        Value::obj(vec![
            ("schema", Value::str("bench_sat/v1")),
            ("mode", Value::str(self.mode)),
            (
                "summary",
                Value::obj(vec![
                    (
                        "propagation_speedup_x100",
                        Value::Num(self.propagation_speedup_x100()),
                    ),
                    (
                        "conflict_speedup_x100",
                        Value::Num(self.conflict_speedup_x100()),
                    ),
                    (
                        "cube_enumeration_speedup_x100",
                        Value::Num(self.cube_enumeration_speedup_x100()),
                    ),
                    (
                        "mean_assignments_per_cube_x100",
                        Value::Num(self.mean_assignments_per_cube_x100()),
                    ),
                ]),
            ),
            ("workloads", Value::Arr(workloads)),
        ])
    }

    /// Compares this run's deterministic outcomes (verdicts,
    /// enumeration fingerprints — never wall times) against a committed
    /// `BENCH_sat.json` document.
    ///
    /// Timing workloads are sized per mode and matched by name, so a
    /// fast run checked against a committed full run only compares the
    /// workloads both have. Enumeration workloads are identical in
    /// every mode by construction and must always be present.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn check_against(&self, committed: &Value) -> Result<(), String> {
        let committed_workloads = committed
            .get("workloads")
            .and_then(Value::as_arr)
            .ok_or("committed BENCH_sat.json has no workloads array")?;
        for w in &self.workloads {
            let found = committed_workloads
                .iter()
                .find(|c| c.get("name").and_then(Value::as_str) == Some(w.name.as_str()));
            let c = match found {
                Some(c) => c,
                None if w.kind != "enumeration" => continue,
                None => return Err(format!("workload {} missing from committed file", w.name)),
            };
            let committed_verdict = c.get("verdict").and_then(Value::as_str).unwrap_or("");
            if committed_verdict != w.verdict {
                return Err(format!(
                    "workload {}: verdict {} != committed {committed_verdict}",
                    w.name, w.verdict
                ));
            }
            let committed_fp = c.get("fingerprint").and_then(Value::as_str);
            let current_fp = w.fingerprint.map(|fp| format!("{fp:016x}"));
            if committed_fp != current_fp.as_deref() {
                return Err(format!(
                    "workload {}: fingerprint {:?} != committed {:?}",
                    w.name, current_fp, committed_fp
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Workload construction
// ---------------------------------------------------------------------

/// Parallel implication chains with no root units: `chains` chains of
/// `len` steps, every step clause
/// `(¬x_{c,i} ∨ ¬g₁ ∨ ¬g₂ ∨ ¬g₃ ∨ x_{c,i+1})` width 5 so the watcher
/// walk scans literals past the watched pair, with the guards `gⱼ`
/// assumed true. Solving under the returned assumptions propagates
/// `chains · len` literals and never conflicts; with no unit clauses at
/// the root, `add_formula` preprocessing cannot simplify anything away
/// — this isolates the propagation data plane.
///
/// Clause insertion order is scattered by a deterministic Fisher-Yates
/// shuffle so clause storage order is decorrelated from propagation
/// visit order, the way a long-lived solver's clause database looks
/// after learning and reduction churn. A sequential layout would let
/// the hardware prefetcher stream both solvers' clause storage and
/// hide exactly the pointer-chasing cost this workload exists to
/// measure.
pub fn propagation_chains(chains: usize, len: usize) -> (CnfFormula, Vec<Lit>) {
    let g1 = Var::new(0);
    let g2 = Var::new(1);
    let g3 = Var::new(2);
    let x = |c: usize, i: usize| Var::new(3 + c * (len + 1) + i);
    let mut clauses: Vec<[Lit; 5]> = Vec::with_capacity(chains * len);
    for c in 0..chains {
        for i in 0..len {
            clauses.push([
                x(c, i).negative(),
                g1.negative(),
                g2.negative(),
                g3.negative(),
                x(c, i + 1).positive(),
            ]);
        }
    }
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..clauses.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        clauses.swap(i, j);
    }
    let mut f = CnfFormula::new();
    for cl in clauses {
        f.add_lits(cl);
    }
    let mut assumptions = vec![g1.positive(), g2.positive(), g3.positive()];
    assumptions.extend((0..chains).map(|c| x(c, 0).positive()));
    (f, assumptions)
}

fn time_propagation<S: CoreSolver>(f: &CnfFormula, assumptions: &[Lit], rounds: usize) -> Side {
    let start = Instant::now();
    let mut s = S::build(f);
    for _ in 0..rounds {
        assert!(s.assume(assumptions).is_sat(), "chains are satisfiable");
    }
    Side::new(start.elapsed(), &s.counters())
}

fn time_solve<S: CoreSolver>(f: &CnfFormula) -> (Side, SatResult) {
    let start = Instant::now();
    let mut s = S::build(f);
    let res = s.assume(&[]);
    (Side::new(start.elapsed(), &s.counters()), res)
}

/// Runs the xBMC enumeration loop (selector-scoped blocking clauses)
/// over a renaming encoding with solver `S`, returning the measurement
/// and the order-independent fingerprint of the counterexample set.
fn time_enumeration<S: CoreSolver>(ai: &AiProgram) -> (Side, usize, u64) {
    let lattice = TwoPoint::new();
    let start = Instant::now();
    let enc = xbmc::renaming::encode(ai, &lattice);
    let mut s = S::build(&enc.formula);
    let selector_base = enc.formula.num_vars();
    let mut counterexamples: Vec<(u32, Vec<bool>)> = Vec::new();
    for (ai_idx, a) in enc.asserts.iter().enumerate() {
        let selector = Var::new(selector_base + ai_idx).positive();
        loop {
            match s.assume(&[selector, a.violated]) {
                SatResult::Sat(model) => {
                    let mut branches = vec![false; ai.num_branches];
                    for b in &a.relevant_branches {
                        branches[b.0 as usize] = model.lit_value(enc.branch_lits[b.0 as usize]);
                    }
                    let mut blocking: Vec<Lit> = a
                        .relevant_branches
                        .iter()
                        .map(|b| {
                            let lit = enc.branch_lits[b.0 as usize];
                            if model.lit_value(lit) {
                                !lit
                            } else {
                                lit
                            }
                        })
                        .collect();
                    blocking.push(!selector);
                    s.add(blocking);
                    counterexamples.push((a.id.0, branches));
                }
                SatResult::Unsat => break,
                other => panic!("enumeration hit {other:?} with no budget"),
            }
        }
    }
    let side = Side::new(start.elapsed(), &s.counters());
    let count = counterexamples.len();
    (side, count, fingerprint(&mut counterexamples))
}

/// Runs the cube-generalized ALLSAT loop over a renaming encoding:
/// each model is shrunk to a minimal implicant over the assertion's
/// branch variables ([`sat::Solver::shrink_cube`]), the negated cube is
/// blocked, and the cube is expanded back to full branch assignments —
/// exactly as `Xbmc::check_all` drives it since the cube refactor.
///
/// Returns the measurement, the expanded counterexample count, the
/// set fingerprint, and the number of cubes learned. Expansion and
/// deduplication run inside the measured wall, so the speedup against
/// [`time_enumeration`] prices the full report-time cost, not just the
/// saved solver calls.
///
/// Not generic over [`CoreSolver`]: cube lifting exists only on the
/// arena solver, so cube workloads run both sides on `sat::Solver` and
/// isolate the enumeration *algorithm*, not the solver data plane.
fn time_cube_enumeration(ai: &AiProgram) -> (Side, usize, u64, u64) {
    let lattice = TwoPoint::new();
    let start = Instant::now();
    let enc = xbmc::renaming::encode(ai, &lattice);
    let mut s = sat::Solver::from_formula(&enc.formula);
    let selector_base = enc.formula.num_vars();
    let mut counterexamples: Vec<(u32, Vec<bool>)> = Vec::new();
    let mut cubes_learned = 0u64;
    for (ai_idx, a) in enc.asserts.iter().enumerate() {
        let selector = Var::new(selector_base + ai_idx).positive();
        let mut seen: HashSet<Vec<bool>> = HashSet::new();
        loop {
            match s.solve_with_assumptions(&[selector, a.violated]) {
                SatResult::Sat(model) => {
                    let model_cube: Vec<Lit> = a
                        .relevant_branches
                        .iter()
                        .map(|b| {
                            let lit = enc.branch_lits[b.0 as usize];
                            if model.lit_value(lit) {
                                lit
                            } else {
                                !lit
                            }
                        })
                        .collect();
                    let cube = s.shrink_cube(&model_cube, a.violated);
                    cubes_learned += 1;
                    let mut fixed: Vec<(usize, bool)> = Vec::new();
                    let mut free: Vec<usize> = Vec::new();
                    for b in &a.relevant_branches {
                        let idx = b.0 as usize;
                        let lit = enc.branch_lits[idx];
                        match cube.iter().find(|l| l.var() == lit.var()) {
                            Some(&l) => fixed.push((idx, l == lit)),
                            None => free.push(idx),
                        }
                    }
                    let width = free.len();
                    for m in 0..1u64 << width {
                        let mut branches = vec![false; ai.num_branches];
                        for &(idx, v) in &fixed {
                            branches[idx] = v;
                        }
                        for (i, &idx) in free.iter().enumerate() {
                            branches[idx] = m >> (width - 1 - i) & 1 == 1;
                        }
                        if seen.insert(branches.clone()) {
                            counterexamples.push((a.id.0, branches));
                        }
                    }
                    let mut blocking: Vec<Lit> = cube.iter().map(|&l| !l).collect();
                    blocking.push(!selector);
                    s.add_clause(blocking);
                }
                SatResult::Unsat => break,
                other => panic!("cube enumeration hit {other:?} with no budget"),
            }
        }
    }
    let side = Side::new(start.elapsed(), s.stats());
    let count = counterexamples.len();
    (
        side,
        count,
        fingerprint(&mut counterexamples),
        cubes_learned,
    )
}

/// Order-independent FNV-1a over the sorted counterexample set.
fn fingerprint(counterexamples: &mut [(u32, Vec<bool>)]) -> u64 {
    counterexamples.sort();
    let mut h = 0xcbf29ce484222325u64;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    };
    for (id, branches) in counterexamples.iter() {
        for b in id.to_le_bytes() {
            eat(b);
        }
        for &bit in branches {
            eat(u8::from(bit));
        }
        eat(0xFF);
    }
    h
}

fn verdict_str(r: &SatResult) -> String {
    match r {
        SatResult::Sat(_) => "sat".into(),
        SatResult::Unsat => "unsat".into(),
        SatResult::Unknown => "unknown".into(),
        SatResult::Interrupted => "interrupted".into(),
    }
}

fn ai_of(src: &str) -> AiProgram {
    let ast = php_front::parse_source(src).expect("workload parses");
    let filtered = webssari_ir::filter_program(
        &ast,
        src,
        "bench.php",
        &webssari_ir::Prelude::standard(),
        &webssari_ir::FilterOptions::default(),
    );
    webssari_ir::abstract_interpret(&filtered)
}

// ---------------------------------------------------------------------
// The suite
// ---------------------------------------------------------------------

/// Runs the full suite. `fast` shrinks sizes and repetition counts for
/// the CI smoke job but keeps every enumeration workload (and therefore
/// every fingerprint) identical to full mode.
pub fn run_suite(fast: bool) -> SuiteResult {
    let mut workloads = Vec::new();

    // Propagation-bound: best-of-N so a cold cache or scheduler blip on
    // either side doesn't skew the ratio.
    let (chains, len, rounds, reps) = if fast {
        (4, 20_000, 4, 2)
    } else {
        (4, 60_000, 10, 3)
    };
    let (f, assumptions) = propagation_chains(chains, len);
    let mut arena: Option<Side> = None;
    let mut reference: Option<Side> = None;
    for _ in 0..reps {
        let a = time_propagation::<sat::Solver>(&f, &assumptions, rounds);
        let r = time_propagation::<sat::reference::Solver>(&f, &assumptions, rounds);
        if arena.is_none_or(|best| a.wall < best.wall) {
            arena = Some(a);
        }
        if reference.is_none_or(|best| r.wall < best.wall) {
            reference = Some(r);
        }
    }
    workloads.push(WorkloadResult {
        name: format!("propagation_chains_{chains}x{len}"),
        kind: "propagation",
        verdict: "sat".into(),
        arena: arena.expect("reps >= 1"),
        reference: reference.expect("reps >= 1"),
        fingerprint: None,
        cubes_learned: None,
        cube_assignments: None,
    });

    // Conflict-bound: pigeonhole, random 3-SAT at the phase-transition
    // ratio (~4.26 clauses per variable), and the BMC-shaped unrolled
    // counter family ([`crate::bmc_counter`]). The two solvers walk
    // different search trajectories here — watcher-list evolution
    // differs between the implementations, which perturbs unit order
    // and phase saving — so any single instance is a trajectory
    // lottery; the suite commits a family spanning both verdicts and
    // all three shapes, and the headline is the geometric mean
    // ([`SuiteResult::conflict_speedup_x100`]).
    let mut conflict_formulas: Vec<(String, CnfFormula)> = Vec::new();
    if fast {
        conflict_formulas.push(("pigeonhole_6x5".into(), crate::pigeonhole(6, 5)));
        conflict_formulas.push((
            "random3sat_100v_r426_s1".into(),
            crate::random_3sat(100, 426, 1),
        ));
        conflict_formulas.push(("bmc_counter_16".into(), crate::bmc_counter(16)));
    } else {
        conflict_formulas.push(("pigeonhole_8x7".into(), crate::pigeonhole(8, 7)));
        conflict_formulas.push(("pigeonhole_9x8".into(), crate::pigeonhole(9, 8)));
        conflict_formulas.push(("bmc_counter_48".into(), crate::bmc_counter(48)));
        conflict_formulas.push(("bmc_counter_64".into(), crate::bmc_counter(64)));
        for (vars, seed) in [
            (150, 1u64),
            (150, 8),
            (175, 6),
            (175, 7),
            (200, 2),
            (200, 4),
            (200, 5),
        ] {
            let clauses = (vars as f64 * 4.26) as usize;
            conflict_formulas.push((
                format!("random3sat_{vars}v_r426_s{seed}"),
                crate::random_3sat(vars, clauses, seed),
            ));
        }
    }
    for (name, f) in conflict_formulas {
        let mut arena: Option<Side> = None;
        let mut reference: Option<Side> = None;
        let mut verdict: Option<String> = None;
        for _ in 0..reps {
            let (a, a_res) = time_solve::<sat::Solver>(&f);
            let (r, r_res) = time_solve::<sat::reference::Solver>(&f);
            assert_eq!(
                verdict_str(&a_res),
                verdict_str(&r_res),
                "{name}: solvers disagree"
            );
            verdict = Some(verdict_str(&a_res));
            if arena.is_none_or(|best| a.wall < best.wall) {
                arena = Some(a);
            }
            if reference.is_none_or(|best| r.wall < best.wall) {
                reference = Some(r);
            }
        }
        workloads.push(WorkloadResult {
            name,
            kind: "conflict",
            verdict: verdict.expect("reps >= 1"),
            arena: arena.expect("reps >= 1"),
            reference: reference.expect("reps >= 1"),
            fingerprint: None,
            cubes_learned: None,
            cube_assignments: None,
        });
    }

    // Enumeration-bound: identical in both modes so fingerprints are
    // comparable across full runs and CI fast runs. k = 12 is the
    // blocking-clause-heavy regime (4095 clauses piling thousands of
    // watchers onto a few branch literals) where any propagate that
    // pays O(list) instead of O(1) to detach a watcher shows up as a
    // regression — the amplified version of the 0.96× slip the k = 11
    // row caught when removal compacted the whole tail.
    for k in [8usize, 11, 12] {
        let ai = ai_of(&branchy_program(k));
        let mut arena: Option<Side> = None;
        let mut reference: Option<Side> = None;
        let mut outcome: Option<(usize, u64)> = None;
        for _ in 0..reps {
            let (a, a_count, a_fp) = time_enumeration::<sat::Solver>(&ai);
            let (r, r_count, r_fp) = time_enumeration::<sat::reference::Solver>(&ai);
            assert_eq!(a_count, r_count, "enumeration counts diverge at k={k}");
            assert_eq!(a_fp, r_fp, "enumeration sets diverge at k={k}");
            outcome = Some((a_count, a_fp));
            if arena.is_none_or(|best| a.wall < best.wall) {
                arena = Some(a);
            }
            if reference.is_none_or(|best| r.wall < best.wall) {
                reference = Some(r);
            }
        }
        let (a_count, a_fp) = outcome.expect("reps >= 1");
        let (arena, reference) = (arena.expect("reps >= 1"), reference.expect("reps >= 1"));
        // And the production checker must report exactly this set.
        let check = xbmc::Xbmc::with_options(
            &ai,
            xbmc::CheckOptions {
                max_counterexamples_per_assert: 1 << 12,
                ..xbmc::CheckOptions::default()
            },
        )
        .check_all();
        let mut from_checker: Vec<(u32, Vec<bool>)> = check
            .counterexamples
            .iter()
            .map(|c| (c.assert_id.0, c.branches.clone()))
            .collect();
        assert_eq!(
            fingerprint(&mut from_checker),
            a_fp,
            "Xbmc::check_all diverges from the enumeration loop at k={k}"
        );
        workloads.push(WorkloadResult {
            name: format!("enumeration_branchy_{k}"),
            kind: "enumeration",
            verdict: format!("{a_count} counterexamples"),
            arena,
            reference,
            fingerprint: Some(a_fp),
            cubes_learned: None,
            cube_assignments: None,
        });
    }

    // Cube-generalized enumeration: depths where the per-model loop
    // needs 2^k − 1 solver calls and the cube loop needs a handful.
    // Both sides run on the arena solver (cube lifting exists only
    // there), so the ratio prices the algorithm change alone. The
    // per-model baseline runs once: at these depths it is three to four
    // orders of magnitude slower than the cube loop, so scheduler noise
    // amortizes away and extra reps would only stretch the suite.
    for k in [14usize, 16] {
        let ai = ai_of(&branchy_program(k));
        let (reference, r_count, r_fp) = time_enumeration::<sat::Solver>(&ai);
        let mut arena: Option<Side> = None;
        let mut outcome: Option<(usize, u64, u64)> = None;
        for _ in 0..reps {
            let (a, a_count, a_fp, cubes) = time_cube_enumeration(&ai);
            assert_eq!(a_count, r_count, "cube expansion count diverges at k={k}");
            assert_eq!(
                a_fp, r_fp,
                "cube expansion diverges from the per-model baseline at k={k}"
            );
            outcome = Some((a_count, a_fp, cubes));
            if arena.is_none_or(|best| a.wall < best.wall) {
                arena = Some(a);
            }
        }
        let (count, fp, cubes) = outcome.expect("reps >= 1");
        // And the production checker must report exactly this set.
        let check = xbmc::Xbmc::with_options(
            &ai,
            xbmc::CheckOptions {
                max_counterexamples_per_assert: 1 << 17,
                ..xbmc::CheckOptions::default()
            },
        )
        .check_all();
        let mut from_checker: Vec<(u32, Vec<bool>)> = check
            .counterexamples
            .iter()
            .map(|c| (c.assert_id.0, c.branches.clone()))
            .collect();
        assert_eq!(
            fingerprint(&mut from_checker),
            fp,
            "Xbmc::check_all diverges from the cube enumeration loop at k={k}"
        );
        workloads.push(WorkloadResult {
            name: format!("enumeration_cubes_branchy_{k}"),
            kind: "enumeration",
            verdict: format!("{count} counterexamples"),
            arena: arena.expect("reps >= 1"),
            reference,
            fingerprint: Some(fp),
            cubes_learned: Some(cubes),
            cube_assignments: Some(count as u64),
        });
    }

    SuiteResult {
        mode: if fast { "fast" } else { "full" },
        workloads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_chains_has_no_root_units() {
        let (f, assumptions) = propagation_chains(2, 50);
        assert_eq!(f.num_clauses(), 100);
        // Three guards + one head per chain.
        assert_eq!(assumptions.len(), 5);
        // The arena solver's preprocessing must find nothing to do.
        let s = sat::Solver::from_formula(&f);
        assert_eq!(s.stats().pre_units_fixed, 0);
        assert_eq!(s.stats().pre_clauses_removed, 0);
        assert_eq!(s.num_clauses(), 100);
    }

    #[test]
    fn propagation_chains_propagate_fully() {
        let (f, assumptions) = propagation_chains(3, 40);
        let mut s = sat::Solver::from_formula(&f);
        match s.solve_with_assumptions(&assumptions) {
            SatResult::Sat(m) => {
                // Every chain variable is forced true.
                for c in 0..3 {
                    for i in 0..=40 {
                        assert!(m.value(Var::new(3 + c * 41 + i)), "chain {c} step {i}");
                    }
                }
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let mut a = vec![(0u32, vec![true, false]), (1u32, vec![false, false])];
        let mut b = vec![(1u32, vec![false, false]), (0u32, vec![true, false])];
        assert_eq!(fingerprint(&mut a), fingerprint(&mut b));
        let mut c = vec![(0u32, vec![true, true]), (1u32, vec![false, false])];
        assert_ne!(fingerprint(&mut a), fingerprint(&mut c));
    }

    #[test]
    fn suite_json_round_trips_and_check_catches_tampering() {
        // Synthetic measurements (running the real suite belongs to the
        // release-mode CI smoke job, not a debug unit test).
        let side = Side {
            wall: Duration::from_micros(1500),
            propagations: 10,
            conflicts: 2,
            decisions: 3,
            restarts: 0,
            binary_propagations: 4,
            glue_core: 1,
            glue_mid: 1,
            glue_local: 0,
        };
        let suite = SuiteResult {
            mode: "fast",
            workloads: vec![
                WorkloadResult {
                    name: "propagation_chains_1x10".into(),
                    kind: "propagation",
                    verdict: "sat".into(),
                    arena: side,
                    reference: Side {
                        wall: Duration::from_micros(3000),
                        ..side
                    },
                    fingerprint: None,
                    cubes_learned: None,
                    cube_assignments: None,
                },
                WorkloadResult {
                    name: "pigeonhole_2x1".into(),
                    kind: "conflict",
                    verdict: "unsat".into(),
                    arena: side,
                    reference: Side {
                        wall: Duration::from_micros(3000),
                        ..side
                    },
                    fingerprint: None,
                    cubes_learned: None,
                    cube_assignments: None,
                },
                WorkloadResult {
                    name: "pigeonhole_3x2".into(),
                    kind: "conflict",
                    verdict: "unsat".into(),
                    arena: side,
                    reference: Side {
                        wall: Duration::from_micros(750),
                        ..side
                    },
                    fingerprint: None,
                    cubes_learned: None,
                    cube_assignments: None,
                },
                WorkloadResult {
                    name: "enumeration_branchy_2".into(),
                    kind: "enumeration",
                    verdict: "3 counterexamples".into(),
                    arena: side,
                    reference: side,
                    fingerprint: Some(0xDEADBEEF),
                    cubes_learned: None,
                    cube_assignments: None,
                },
            ],
        };
        assert_eq!(suite.workloads[0].speedup_x100(), 200);
        assert_eq!(suite.propagation_speedup_x100(), 200);
        // Conflict headline is the geometric mean: 2.0× and 0.5×
        // cancel to exactly 1.0×.
        assert_eq!(suite.conflict_speedup_x100(), 100);
        let text = suite.to_json().to_json();
        let parsed = jsonio::parse(&text).expect("suite JSON parses");
        suite
            .check_against(&parsed)
            .expect("a run checks against its own output");
        // A tampered fingerprint must be caught.
        let tampered = text.replace("00000000deadbeef", "0000000000000000");
        let tampered = jsonio::parse(&tampered).expect("still valid JSON");
        assert!(suite.check_against(&tampered).is_err());
        // A changed verdict must be caught too.
        let flipped = jsonio::parse(&text.replace("\"sat\"", "\"unsat\"")).unwrap();
        assert!(suite.check_against(&flipped).is_err());
        // Enumeration workloads are mode-invariant and must be present
        // in the committed file; timing workloads are sized per mode
        // and only compared when the names line up.
        let only_prop = SuiteResult {
            mode: "full",
            workloads: vec![suite.workloads[0].clone()],
        };
        let committed = jsonio::parse(&only_prop.to_json().to_json()).unwrap();
        assert!(suite.check_against(&committed).is_err());
        let only_enum = SuiteResult {
            mode: "full",
            workloads: vec![suite.workloads[3].clone()],
        };
        let committed = jsonio::parse(&only_enum.to_json().to_json()).unwrap();
        suite
            .check_against(&committed)
            .expect("timing workloads are matched by name only");
    }

    #[test]
    fn enumeration_matches_reference_on_small_program() {
        let ai = ai_of(&branchy_program(3));
        let (_, a_count, a_fp) = time_enumeration::<sat::Solver>(&ai);
        let (_, r_count, r_fp) = time_enumeration::<sat::reference::Solver>(&ai);
        assert_eq!(a_count, 7); // 2^3 - 1 violating branch patterns
        assert_eq!(a_count, r_count);
        assert_eq!(a_fp, r_fp);
    }

    #[test]
    fn cube_enumeration_matches_per_model_on_small_program() {
        let ai = ai_of(&branchy_program(5));
        let (_, c_count, c_fp, cubes) = time_cube_enumeration(&ai);
        let (_, m_count, m_fp) = time_enumeration::<sat::Solver>(&ai);
        assert_eq!(c_count, 31); // 2^5 - 1 violating branch patterns
        assert_eq!(c_count, m_count);
        assert_eq!(c_fp, m_fp);
        // Generalization must actually bite: far fewer cubes than
        // expanded assignments.
        assert!(
            cubes < c_count as u64,
            "{cubes} cubes for {c_count} assignments"
        );
    }

    #[test]
    fn vacuity_guard_rejects_full_width_cubes_and_conflictless_runs() {
        let side = Side {
            wall: Duration::from_micros(100),
            propagations: 1,
            conflicts: 0,
            decisions: 0,
            restarts: 0,
            binary_propagations: 0,
            glue_core: 0,
            glue_mid: 0,
            glue_local: 0,
        };
        let conflictful = Side {
            conflicts: 5,
            ..side
        };
        let conflict_workload = |arena: Side, reference: Side| WorkloadResult {
            name: "pigeonhole_2x1".into(),
            kind: "conflict",
            verdict: "unsat".into(),
            arena,
            reference,
            fingerprint: None,
            cubes_learned: None,
            cube_assignments: None,
        };
        let workload = |cubes, assignments| WorkloadResult {
            name: "enumeration_cubes_branchy_2".into(),
            kind: "enumeration",
            verdict: format!("{assignments} counterexamples"),
            arena: side,
            reference: side,
            fingerprint: Some(1),
            cubes_learned: Some(cubes),
            cube_assignments: Some(assignments),
        };
        let good = SuiteResult {
            mode: "fast",
            workloads: vec![workload(2, 3), conflict_workload(conflictful, conflictful)],
        };
        good.vacuity_guard()
            .expect("2 cubes over 3 assignments generalized");
        assert_eq!(good.mean_assignments_per_cube_x100(), 150);
        let vacuous = SuiteResult {
            mode: "fast",
            workloads: vec![workload(3, 3), conflict_workload(conflictful, conflictful)],
        };
        assert!(
            vacuous.vacuity_guard().is_err(),
            "full-width cubes must be rejected"
        );
        let missing = SuiteResult {
            mode: "fast",
            workloads: Vec::new(),
        };
        assert!(
            missing.vacuity_guard().is_err(),
            "cube workloads must be present"
        );
        // A conflict workload where either solver never conflicted is
        // measuring nothing and must fail the run.
        for (a, r) in [(side, conflictful), (conflictful, side)] {
            let conflictless = SuiteResult {
                mode: "fast",
                workloads: vec![workload(2, 3), conflict_workload(a, r)],
            };
            assert!(
                conflictless.vacuity_guard().is_err(),
                "zero-conflict conflict workload must be rejected"
            );
        }
        // And a run with no conflict workload at all is equally vacuous.
        let no_conflicts = SuiteResult {
            mode: "fast",
            workloads: vec![workload(2, 3)],
        };
        assert!(no_conflicts.vacuity_guard().is_err());
    }
}
