//! Shared workload generators and harness utilities for the benchmark
//! suite that regenerates the paper's evaluation.
//!
//! Binaries (run with `cargo run --release -p webssari-bench --bin …`):
//!
//! * `fig10_table` — regenerates Figure 10 (E1/E3): per-project TS vs
//!   BMC error counts over the 38 acknowledged projects, with totals
//!   and the instrumentation-reduction headline.
//! * `corpus_stats` — regenerates the §5 corpus statistics (E2):
//!   projects, files, statements, vulnerable files/projects.
//! * `encoding_blowup` — regenerates the §3.3.1-vs-§3.3.2 comparison
//!   (E7): CNF sizes and solve times of the auxiliary-variable encoding
//!   against variable renaming.
//! * `solver_core` — runs the [`solver_core`] suite (arena solver vs
//!   the frozen pre-refactor solver) and writes `BENCH_sat.json` at the
//!   repo root; `--fast --check BENCH_sat.json` is the CI smoke mode.
//! * `bench_screening` — runs the [`screening`] suite (tiered
//!   TS→slice→BMC pipeline vs the raw check) over the Figure 10 corpus
//!   and writes `BENCH_screen.json` at the repo root;
//!   `--fast --check BENCH_screen.json` is the CI smoke mode.
//!
//! Criterion benches (`cargo bench -p webssari-bench`) cover the SAT
//! substrate, both encodings, the fixing-set solvers, the Figure 10
//! pipeline, end-to-end scaling, and the policy ablations (two-point vs
//! multi-class lattice, certification overhead, loop unrolling,
//! incremental vs per-assertion solving).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod screening;
pub mod solver_core;

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use cnf::{Clause, CnfFormula, Lit, Var};
use corpus::{Corpus, GeneratedProject};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webssari_core::Verifier;

/// The pigeonhole principle PHP(m, n): m pigeons into n holes.
/// Unsatisfiable iff `pigeons > holes`; classically hard for resolution.
pub fn pigeonhole(pigeons: usize, holes: usize) -> CnfFormula {
    let mut f = CnfFormula::new();
    let var = |p: usize, h: usize| Var::new(p * holes + h);
    for p in 0..pigeons {
        f.add_lits((0..holes).map(|h| var(p, h).positive()));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                f.add_lits([var(p1, h).negative(), var(p2, h).negative()]);
            }
        }
    }
    f
}

/// Random 3-SAT with the given clause count (ratio ≈ 4.26 · vars puts
/// instances at the satisfiability phase transition).
pub fn random_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> CnfFormula {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut f = CnfFormula::new();
    for _ in 0..num_clauses {
        let mut lits = Vec::with_capacity(3);
        for _ in 0..3 {
            let v = rng.random_range(0..num_vars);
            lits.push(Lit::new(Var::new(v), rng.random_bool(0.5)));
        }
        f.add_clause(Clause::new(lits));
    }
    f.ensure_var(Var::new(num_vars - 1));
    f
}

/// An unrolled nondeterministic counter — the BMC-shaped deep-chain
/// unsat family: `steps` transitions `s_{i+1} = s_i + 1 + c_i` (each
/// step nondeterministically adds 1 or 2) through Tseitin ripple-carry
/// adders, with the final state asserted equal to `2·steps + 1` — one
/// more than the reachable maximum. Refuting the target forces the
/// solver back through every unrolled transition, the conflict shape
/// xBMC produces on safe programs with long data-flow chains.
pub fn bmc_counter(steps: usize) -> CnfFormula {
    let target = 2 * steps + 1;
    let width = usize::BITS as usize - target.leading_zeros() as usize;
    let mut f = CnfFormula::new();
    let mut next_var = 0usize;
    let mut fresh = || {
        let v = Var::new(next_var);
        next_var += 1;
        v
    };
    // A shared constant-false literal for zero-valued adder inputs.
    let zero = fresh().positive();
    f.add_lits([!zero]);
    // t ↔ a ⊕ b.
    let xor2 = |f: &mut CnfFormula, a: Lit, b: Lit, t: Lit| {
        f.add_lits([!a, !b, !t]);
        f.add_lits([a, b, !t]);
        f.add_lits([!a, b, t]);
        f.add_lits([a, !b, t]);
    };
    // co ↔ maj(a, b, cin).
    let maj = |f: &mut CnfFormula, a: Lit, b: Lit, cin: Lit, co: Lit| {
        f.add_lits([!a, !b, co]);
        f.add_lits([!a, !cin, co]);
        f.add_lits([!b, !cin, co]);
        f.add_lits([a, b, !co]);
        f.add_lits([a, cin, !co]);
        f.add_lits([b, cin, !co]);
    };
    // s_0 = 0.
    let mut state: Vec<Lit> = vec![zero; width];
    for _ in 0..steps {
        // The addend 1 + cᵢ is 01 (cᵢ false) or 10 (cᵢ true).
        let choice = fresh().positive();
        let mut carry = zero;
        let mut next_state = Vec::with_capacity(width);
        for (j, &a) in state.iter().enumerate() {
            let b = match j {
                0 => !choice,
                1 => choice,
                _ => zero,
            };
            let half = fresh().positive();
            xor2(&mut f, a, b, half);
            let sum = fresh().positive();
            xor2(&mut f, half, carry, sum);
            let co = fresh().positive();
            maj(&mut f, a, b, carry, co);
            next_state.push(sum);
            carry = co;
        }
        // The width holds 2·steps + 1, so the top carry is never set on
        // a reachable path; leaving it unconstrained changes nothing.
        state = next_state;
    }
    for (j, &bit) in state.iter().enumerate() {
        f.add_lits([if target >> j & 1 == 1 { bit } else { !bit }]);
    }
    f
}

/// A straight-line PHP program with an `n`-step copy chain from an
/// untrusted read to a sink — the minimal workload where the
/// auxiliary-variable encoding's `2·|X|`-per-step cost shows.
pub fn chain_program(n: usize) -> String {
    let mut src = String::from("<?php\n$v0 = $_GET['p'];\n");
    for i in 1..n {
        let _ = writeln!(src, "$v{i} = $v{};", i - 1);
    }
    let _ = writeln!(src, "echo $v{};", n.saturating_sub(1));
    src
}

/// A PHP program with `k` independent branches guarding one shared
/// sink — exercises counterexample enumeration.
pub fn branchy_program(k: usize) -> String {
    let mut src = String::from("<?php\n$x = 'safe';\n");
    for i in 0..k {
        let _ = writeln!(src, "if ($c{i}) {{ $x = $x . $_GET['p{i}']; }}");
    }
    src.push_str("echo $x;\n");
    src
}

/// The PHP Surveyor shape (Figure 7): one root cause fanning out to
/// `k` vulnerable statements.
pub fn surveyor_like(k: usize) -> String {
    let mut src = String::from("<?php\n$sid = $_GET['sid'];\n");
    for i in 0..k {
        let _ = writeln!(
            src,
            "$q{i} = \"SELECT * FROM t{i} WHERE sid=$sid\";\nDoSQL($q{i});"
        );
    }
    src
}

/// One row of the regenerated Figure 10.
#[derive(Clone, Debug)]
pub struct Fig10Row {
    /// Project name.
    pub name: String,
    /// SourceForge activity percentile.
    pub activity: u8,
    /// Measured TS-reported errors.
    pub ts: usize,
    /// Measured BMC-reported groups.
    pub bmc: usize,
    /// Expected (paper) TS count.
    pub expected_ts: usize,
    /// Expected (paper) BMC count.
    pub expected_bmc: usize,
    /// Statements analyzed.
    pub statements: usize,
    /// Wall-clock verification time.
    pub elapsed: Duration,
}

/// Verifies every project of a corpus (in parallel across worker
/// threads) and returns the measured per-project rows.
pub fn verify_corpus(corpus: &Corpus, threads: usize) -> Vec<Fig10Row> {
    let queue = parking_lot::Mutex::new(corpus.projects.iter().collect::<Vec<_>>());
    let results = parking_lot::Mutex::new(Vec::<Fig10Row>::new());
    crossbeam::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|_| {
                let verifier = Verifier::new();
                loop {
                    let project: &GeneratedProject = {
                        let mut q = queue.lock();
                        match q.pop() {
                            Some(p) => p,
                            None => break,
                        }
                    };
                    let start = Instant::now();
                    let report = verifier.verify_project(&project.sources);
                    let elapsed = start.elapsed();
                    results.lock().push(Fig10Row {
                        name: project.name.clone(),
                        activity: project.profile.activity,
                        ts: report.ts_errors(),
                        bmc: report.bmc_groups(),
                        expected_ts: project.expected_ts,
                        expected_bmc: project.expected_bmc,
                        statements: project.num_statements,
                        elapsed,
                    });
                }
            });
        }
    })
    .expect("verification workers must not panic");
    let mut rows = results.into_inner();
    rows.sort_by(|a, b| a.name.cmp(&b.name));
    rows
}

/// Formats rows as the Figure 10 table with totals and the reduction
/// headline.
pub fn render_fig10(rows: &[Fig10Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<40} {:>3} {:>6} {:>6} {:>9} {:>9}",
        "Project", "A", "TS", "BMC", "paper-TS", "paper-BMC"
    );
    let _ = writeln!(out, "{}", "-".repeat(80));
    let (mut ts, mut bmc, mut ets, mut ebmc) = (0usize, 0usize, 0usize, 0usize);
    for r in rows {
        let _ = writeln!(
            out,
            "{:<40} {:>3} {:>6} {:>6} {:>9} {:>9}",
            r.name, r.activity, r.ts, r.bmc, r.expected_ts, r.expected_bmc
        );
        ts += r.ts;
        bmc += r.bmc;
        ets += r.expected_ts;
        ebmc += r.expected_bmc;
    }
    let _ = writeln!(out, "{}", "-".repeat(80));
    let _ = writeln!(
        out,
        "{:<40} {:>3} {:>6} {:>6} {:>9} {:>9}",
        "Total", "", ts, bmc, ets, ebmc
    );
    if ts > 0 {
        let _ = writeln!(
            out,
            "Instrumentation reduction: {:.1}% (paper: 41.0%)",
            (1.0 - bmc as f64 / ts as f64) * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_front::parse_source;

    #[test]
    fn workload_programs_parse() {
        for src in [chain_program(5), branchy_program(3), surveyor_like(4)] {
            parse_source(&src).expect("workload must parse");
        }
    }

    #[test]
    fn pigeonhole_shapes() {
        let f = pigeonhole(4, 3);
        assert_eq!(f.num_vars(), 12);
        assert!(f.num_clauses() > 4);
    }

    #[test]
    fn bmc_counter_is_unsat_and_conflict_bound() {
        // The target 2·steps + 1 is one past the reachable maximum, so
        // the family is unsat at every depth — and refuting it takes
        // real search, not root propagation.
        let f = bmc_counter(8);
        let mut s = sat::Solver::from_formula(&f);
        assert_eq!(s.solve(), sat::SatResult::Unsat);
        assert!(s.stats().conflicts > 0, "refutation must require search");
        // The reachable maximum itself is attainable: lowering the
        // final state constraint by one flips the verdict.
        let mut reachable = CnfFormula::new();
        let width = usize::BITS as usize - (2usize * 8 + 1).leading_zeros() as usize;
        let target_clauses = f.num_clauses() - width;
        for (i, c) in f.clauses().iter().enumerate() {
            if i < target_clauses {
                reachable.add_clause(c.clone());
            }
        }
        let mut s = sat::Solver::from_formula(&reachable);
        assert!(s.solve().is_sat(), "dropping the target makes it sat");
    }

    #[test]
    fn random_3sat_is_deterministic() {
        let a = random_3sat(20, 85, 1);
        let b = random_3sat(20, 85, 1);
        assert_eq!(a.num_clauses(), b.num_clauses());
        assert_eq!(a.clauses(), b.clauses());
    }

    #[test]
    fn surveyor_like_reduces_to_one_patch() {
        let src = surveyor_like(16);
        let report = Verifier::new().verify_source(&src, "surveyor.php").unwrap();
        assert_eq!(report.ts_instrumentations(), 16);
        assert_eq!(report.bmc_instrumentations(), 1);
    }

    #[test]
    fn verify_corpus_parallel_matches_expectations() {
        // A small slice of Figure 10, three worker threads.
        let corpus = Corpus {
            projects: corpus::figure10_profiles()
                .iter()
                .take(4)
                .map(corpus::generate_project)
                .collect(),
        };
        let rows = verify_corpus(&corpus, 3);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.ts, r.expected_ts, "{}", r.name);
            assert_eq!(r.bmc, r.expected_bmc, "{}", r.name);
        }
        let table = render_fig10(&rows);
        assert!(table.contains("Total"));
    }
}
