//! E1 — the Figure 10 pipeline benchmark: full verification of
//! calibrated projects from the paper's table (TS analysis, BMC with
//! all-counterexample enumeration, and minimal-fixing-set grouping).

use corpus::{figure10_profiles, generate_project};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use webssari_core::Verifier;

fn bench_single_projects(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10/project");
    group.sample_size(10);
    for name in [
        "PHP Helpdesk",
        "GBook MX",
        "phpLDAPadmin",
        "PHP Support Tickets",
    ] {
        let profile = figure10_profiles()
            .into_iter()
            .find(|p| p.name == name)
            .expect("profile exists");
        let project = generate_project(&profile);
        group.bench_with_input(
            BenchmarkId::from_parameter(name.replace(' ', "_")),
            &project,
            |b, project| {
                let verifier = Verifier::new();
                b.iter(|| {
                    let report = verifier.verify_project(&project.sources);
                    assert_eq!(report.ts_errors(), project.expected_ts);
                    assert_eq!(report.bmc_groups(), project.expected_bmc);
                })
            },
        );
    }
    group.finish();
}

fn bench_table_slice(c: &mut Criterion) {
    // Ten projects end to end — a representative slice of the table
    // (the full 38 run in the fig10_table binary).
    let mut group = c.benchmark_group("fig10/slice");
    group.sample_size(10);
    let projects: Vec<_> = figure10_profiles()
        .iter()
        .take(10)
        .map(generate_project)
        .collect();
    group.bench_function("first_10_projects", |b| {
        let verifier = Verifier::new();
        b.iter(|| {
            let mut ts = 0usize;
            let mut bmc = 0usize;
            for p in &projects {
                let report = verifier.verify_project(&p.sources);
                ts += report.ts_errors();
                bmc += report.bmc_groups();
            }
            assert!(ts >= bmc);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single_projects, bench_table_slice);
criterion_main!(benches);
