//! Solver-core microbenchmarks: the arena solver against the frozen
//! pre-refactor solver on the `BENCH_sat.json` workload families. The
//! tracked before/after numbers come from the `solver_core` binary;
//! these criterion benches are for interactive profiling of the same
//! workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use webssari_bench::solver_core::propagation_chains;
use webssari_bench::{branchy_program, pigeonhole};

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_core/propagation");
    for len in [5_000usize, 20_000] {
        let (f, assumptions) = propagation_chains(4, len);
        group.bench_with_input(
            BenchmarkId::new("arena", len),
            &(&f, &assumptions),
            |b, (f, a)| {
                b.iter(|| {
                    let mut s = sat::Solver::from_formula(f);
                    assert!(s.solve_with_assumptions(a).is_sat());
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reference", len),
            &(&f, &assumptions),
            |b, (f, a)| {
                b.iter(|| {
                    let mut s = sat::reference::Solver::from_formula(f);
                    assert!(s.solve_with_assumptions(a).is_sat());
                })
            },
        );
    }
    group.finish();
}

fn bench_conflict(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_core/conflict");
    let f = pigeonhole(6, 5);
    group.bench_function("arena/php6x5", |b| {
        b.iter(|| {
            let mut s = sat::Solver::from_formula(&f);
            assert!(s.solve().is_unsat());
        })
    });
    group.bench_function("reference/php6x5", |b| {
        b.iter(|| {
            let mut s = sat::reference::Solver::from_formula(&f);
            assert!(s.solve().is_unsat());
        })
    });
    group.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_core/enumeration");
    let src = branchy_program(8);
    let ast = php_front::parse_source(&src).expect("workload parses");
    let filtered = webssari_ir::filter_program(
        &ast,
        &src,
        "bench.php",
        &webssari_ir::Prelude::standard(),
        &webssari_ir::FilterOptions::default(),
    );
    let ai = webssari_ir::abstract_interpret(&filtered);
    group.bench_function("check_all/branchy8", |b| {
        b.iter(|| {
            let r = xbmc::Xbmc::new(&ai).check_all();
            assert_eq!(r.counterexamples.len(), 255);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_propagation,
    bench_conflict,
    bench_enumeration
);
criterion_main!(benches);
