//! E7 — encoding ablation (§3.3.1 vs §3.3.2): variable renaming
//! (xBMC 1.0) against the auxiliary-location-variable encoding
//! (xBMC 0.1) on copy chains and branchy programs. The aux encoding's
//! per-step full-state copy is the blowup the paper abandoned it for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use php_front::parse_source;
use webssari_bench::{branchy_program, chain_program};
use webssari_ir::{abstract_interpret, filter_program, AiProgram, FilterOptions, Prelude};
use xbmc::{CheckOptions, EncoderKind, Xbmc};

fn ai_of(src: &str) -> AiProgram {
    let ast = parse_source(src).expect("workload parses");
    let f = filter_program(
        &ast,
        src,
        "bench.php",
        &Prelude::standard(),
        &FilterOptions::default(),
    );
    abstract_interpret(&f)
}

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("encodings/chain");
    for n in [8usize, 16, 32] {
        let ai = ai_of(&chain_program(n));
        group.bench_with_input(BenchmarkId::new("renaming", n), &ai, |b, ai| {
            b.iter(|| {
                let r = Xbmc::new(ai).check_all();
                assert_eq!(r.violated_assertions, 1);
            })
        });
        group.bench_with_input(BenchmarkId::new("aux_variable", n), &ai, |b, ai| {
            b.iter(|| {
                let r = Xbmc::with_options(
                    ai,
                    CheckOptions {
                        encoder: EncoderKind::AuxVariable,
                        ..CheckOptions::default()
                    },
                )
                .check_all();
                assert_eq!(r.violated_assertions, 1);
            })
        });
    }
    group.finish();
}

fn bench_branchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("encodings/branchy");
    for k in [4usize, 8] {
        let ai = ai_of(&branchy_program(k));
        group.bench_with_input(BenchmarkId::new("renaming", k), &ai, |b, ai| {
            b.iter(|| {
                let r = Xbmc::new(ai).check_all();
                // All paths with at least one tainting branch violate.
                assert_eq!(r.counterexamples.len(), (1 << k) - 1);
            })
        });
        group.bench_with_input(BenchmarkId::new("aux_variable", k), &ai, |b, ai| {
            b.iter(|| {
                let r = Xbmc::with_options(
                    ai,
                    CheckOptions {
                        encoder: EncoderKind::AuxVariable,
                        ..CheckOptions::default()
                    },
                )
                .check_all();
                assert_eq!(r.violated_assertions, 1);
            })
        });
    }
    group.finish();
}

fn bench_encode_only(c: &mut Criterion) {
    // Isolate formula construction cost (no solving).
    let mut group = c.benchmark_group("encodings/encode_only");
    let lattice = taint_lattice::TwoPoint::new();
    for n in [16usize, 64] {
        let ai = ai_of(&chain_program(n));
        group.bench_with_input(BenchmarkId::new("renaming", n), &ai, |b, ai| {
            b.iter(|| xbmc::renaming::encode(ai, &lattice).formula.num_clauses())
        });
        group.bench_with_input(BenchmarkId::new("aux_variable", n), &ai, |b, ai| {
            b.iter(|| {
                xbmc::aux_encoding::encode(ai, &lattice)
                    .formula
                    .num_clauses()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chain, bench_branchy, bench_encode_only);
criterion_main!(benches);
