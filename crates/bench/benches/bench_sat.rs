//! E9 — SAT substrate benchmarks: the CDCL solver (the reproduction's
//! ZChaff stand-in) on standard hard and easy instance families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sat::Solver;
use webssari_bench::{pigeonhole, random_3sat};

fn bench_pigeonhole(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat/pigeonhole");
    for (m, n) in [(5usize, 4usize), (6, 5), (7, 6)] {
        let f = pigeonhole(m, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &f,
            |b, f| {
                b.iter(|| {
                    let mut s = Solver::from_formula(f);
                    assert!(s.solve().is_unsat());
                })
            },
        );
    }
    group.finish();
}

fn bench_random_3sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat/random3sat");
    for n in [50usize, 100, 150] {
        let clauses = (n as f64 * 4.26) as usize;
        let f = random_3sat(n, clauses, 0xBEEF + n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &f, |b, f| {
            b.iter(|| {
                let mut s = Solver::from_formula(f);
                let _ = s.solve();
            })
        });
    }
    group.finish();
}

fn bench_unit_heavy(c: &mut Criterion) {
    // BMC formulas are dominated by unit propagation through guarded
    // equalities; an implication ladder models that profile.
    let mut group = c.benchmark_group("sat/implication_ladder");
    for n in [1_000usize, 10_000] {
        let mut f = cnf::CnfFormula::new();
        f.add_lits([cnf::Var::new(0).positive()]);
        for i in 0..n {
            f.add_lits([cnf::Var::new(i).negative(), cnf::Var::new(i + 1).positive()]);
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &f, |b, f| {
            b.iter(|| {
                let mut s = Solver::from_formula(f);
                assert!(s.solve().is_sat());
            })
        });
    }
    group.finish();
}

fn bench_incremental_enumeration(c: &mut Criterion) {
    // The xBMC loop: repeated solve + blocking clause.
    let mut group = c.benchmark_group("sat/enumerate_models");
    for n in [8usize, 12] {
        let mut f = cnf::CnfFormula::new();
        // n free variables: 2^n models over an always-true formula with
        // one clause to declare them.
        let lits: Vec<cnf::Lit> = (0..n).map(|i| cnf::Var::new(i).positive()).collect();
        f.add_lits(lits.clone());
        group.bench_with_input(BenchmarkId::from_parameter(n), &f, |b, f| {
            b.iter(|| {
                let mut s = Solver::from_formula(f);
                let mut count = 0usize;
                while let sat::SatResult::Sat(m) = s.solve() {
                    count += 1;
                    let blocking: Vec<cnf::Lit> = (0..n)
                        .map(|v| {
                            let var = cnf::Var::new(v);
                            cnf::Lit::new(var, !m.value(var))
                        })
                        .collect();
                    s.add_clause(blocking);
                }
                assert_eq!(count, (1usize << n) - 1);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pigeonhole,
    bench_random_3sat,
    bench_unit_heavy,
    bench_incremental_enumeration
);
criterion_main!(benches);
