//! E10 — end-to-end scaling: verification wall time as a function of
//! program size, for the web-application program shapes the corpus is
//! made of. The paper's implicit claim is that BMC is practical at
//! 1.14M-statement scale; the series here show near-linear growth for
//! corpus-shaped files.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use webssari_bench::{chain_program, surveyor_like};
use webssari_core::Verifier;

fn bench_chain_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/copy_chain");
    for n in [16usize, 64, 256] {
        let src = chain_program(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &src, |b, src| {
            let verifier = Verifier::new();
            b.iter(|| {
                let report = verifier.verify_source(src, "chain.php").unwrap();
                assert!(!report.is_safe());
            })
        });
    }
    group.finish();
}

fn bench_fanout_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/fanout");
    for k in [8usize, 32, 128] {
        let src = surveyor_like(k);
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &src, |b, src| {
            let verifier = Verifier::new();
            b.iter(|| {
                let report = verifier.verify_source(src, "fanout.php").unwrap();
                assert_eq!(report.bmc_instrumentations(), 1);
            })
        });
    }
    group.finish();
}

fn bench_safe_bulk(c: &mut Criterion) {
    // Mostly-clean files: the common case across the 230-project
    // corpus (161 projects have nothing to report).
    let mut group = c.benchmark_group("scaling/safe_bulk");
    for n in [200usize, 1000] {
        let mut src = String::from("<?php\n");
        for i in 0..n {
            src.push_str(&format!("$a{i} = 'v{i}';\necho $a{i};\n"));
        }
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &src, |b, src| {
            let verifier = Verifier::new();
            b.iter(|| {
                let report = verifier.verify_source(src, "bulk.php").unwrap();
                assert!(report.is_safe());
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_chain_scaling,
    bench_fanout_scaling,
    bench_safe_bulk
);
criterion_main!(benches);
