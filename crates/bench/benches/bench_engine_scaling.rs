//! Engine scaling: batch verification wall time as a function of the
//! worker-pool size, over a corpus of mixed-shape files. Per-file
//! verification is embarrassingly parallel, so the series should show
//! near-linear speedup until the pool outgrows the machine — the
//! property that makes the paper's 1.14M-statement corpus practical to
//! audit repeatedly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use php_front::SourceSet;
use webssari_bench::{branchy_program, chain_program, surveyor_like};
use webssari_engine::EngineBuilder;

/// A corpus of `n` files cycling through the three program shapes the
/// synthetic SourceForge corpus is made of.
fn corpus(n: usize) -> SourceSet {
    let mut set = SourceSet::new();
    for i in 0..n {
        let src = match i % 3 {
            0 => chain_program(8 + i % 5),
            1 => branchy_program(3 + i % 3),
            _ => surveyor_like(4 + i % 4),
        };
        set.add_file(format!("file{i:03}.php"), src);
    }
    set
}

fn bench_worker_scaling(c: &mut Criterion) {
    let set = corpus(24);
    let mut group = c.benchmark_group("engine/workers");
    group.throughput(Throughput::Elements(set.len() as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                let engine = EngineBuilder::new().workers(workers).build();
                b.iter(|| {
                    let report = engine.run(&set);
                    assert_eq!(report.files.len(), 24);
                    assert!(report.is_vulnerable());
                })
            },
        );
    }
    group.finish();
}

fn bench_cache_effect(c: &mut Criterion) {
    // Warm-cache rerun vs cold run at a fixed pool size: the
    // incremental path should be bounded by hashing, not solving.
    let set = corpus(24);
    let mut group = c.benchmark_group("engine/cache");
    group.throughput(Throughput::Elements(set.len() as u64));
    group.bench_function("cold", |b| {
        let engine = EngineBuilder::new().workers(4).build();
        b.iter(|| {
            let report = engine.run(&set);
            assert_eq!(report.metrics.cache_misses, 24);
        })
    });
    let dir = std::env::temp_dir().join(format!("webssari-bench-cache-{}", std::process::id()));
    let engine = EngineBuilder::new().workers(4).cache_dir(&dir).build();
    engine.run(&set); // warm it
    group.bench_function("warm", |b| {
        b.iter(|| {
            let report = engine.run(&set);
            assert_eq!(report.metrics.cache_hits, 24);
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(benches, bench_worker_scaling, bench_cache_effect);
criterion_main!(benches);
