//! E6/E8 — counterexample-analysis benchmarks: replacement-set
//! construction, the greedy set-cover heuristic vs the exact
//! branch-and-bound minimum, and the end-to-end Figure 7 (PHP
//! Surveyor) fan-out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fixes::MisInstance;
use php_front::parse_source;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use webssari_bench::surveyor_like;
use webssari_core::Verifier;
use webssari_ir::{abstract_interpret, filter_program, FilterOptions, Prelude};
use xbmc::Xbmc;

fn random_mis(num_sets: usize, universe: usize, max_len: usize, seed: u64) -> MisInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    MisInstance::from_sets((0..num_sets).map(|_| {
        let len = rng.random_range(1..=max_len);
        (0..len)
            .map(|_| rng.random_range(0..universe))
            .collect::<Vec<_>>()
    }))
}

fn bench_greedy_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixes/mis");
    for (sets, universe) in [(20usize, 12usize), (60, 20), (200, 40)] {
        let inst = random_mis(sets, universe, 4, 0x515 + sets as u64);
        group.bench_with_input(
            BenchmarkId::new("greedy", format!("{sets}sets")),
            &inst,
            |b, inst| b.iter(|| inst.greedy().len()),
        );
        if sets <= 60 {
            group.bench_with_input(
                BenchmarkId::new("exact", format!("{sets}sets")),
                &inst,
                |b, inst| b.iter(|| inst.exact().len()),
            );
        }
    }
    group.finish();
}

fn bench_surveyor_fanout(c: &mut Criterion) {
    // Figure 7 / §3.3.3: one root cause, k symptoms. TS inserts k
    // guards; the BMC plan always reduces to 1.
    let mut group = c.benchmark_group("fixes/surveyor_fanout");
    for k in [4usize, 16, 64] {
        let src = surveyor_like(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &src, |b, src| {
            b.iter(|| {
                let report = Verifier::new().verify_source(src, "surveyor.php").unwrap();
                assert_eq!(report.ts_instrumentations(), k);
                assert_eq!(report.bmc_instrumentations(), 1);
            })
        });
    }
    group.finish();
}

fn bench_plan_from_counterexamples(c: &mut Criterion) {
    // Isolate the counterexample-analysis stage: reuse one BMC result.
    let mut group = c.benchmark_group("fixes/plan_only");
    for k in [16usize, 64] {
        let src = surveyor_like(k);
        let ast = parse_source(&src).unwrap();
        let f = filter_program(
            &ast,
            &src,
            "s.php",
            &Prelude::standard(),
            &FilterOptions::default(),
        );
        let ai = abstract_interpret(&f);
        let result = Xbmc::new(&ai).check_all();
        group.bench_with_input(
            BenchmarkId::from_parameter(k),
            &result.counterexamples,
            |b, cxs| {
                b.iter(|| {
                    let plan = fixes::minimal_fixing_set(cxs);
                    assert_eq!(plan.num_patches(), 1);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_greedy_vs_exact,
    bench_surveyor_fanout,
    bench_plan_from_counterexamples
);
criterion_main!(benches);
