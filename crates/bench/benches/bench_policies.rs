//! Policy ablations (extensions): the cost of the multi-class powerset
//! lattice (3-bit type vectors, table-driven join/meet circuits) versus
//! the paper's two-point lattice, and the cost of emitting + checking
//! DRAT certificates for holding assertions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use webssari_bench::surveyor_like;
use webssari_core::{Verifier, VerifierBuilder};

fn mixed_workload(k: usize) -> String {
    // Half vulnerable fan-out, half correctly sanitized flows: both
    // policies do real work on both halves.
    let mut src = surveyor_like(k);
    for i in 0..k {
        src.push_str(&format!(
            "$safe{i} = addslashes($_GET['s{i}']);\n$sq{i} = \"SELECT * FROM t WHERE k='$safe{i}'\";\nmysql_query($sq{i});\n"
        ));
    }
    src
}

fn bench_two_point_vs_multiclass(c: &mut Criterion) {
    let mut group = c.benchmark_group("policies/lattice");
    for k in [4usize, 16] {
        let src = mixed_workload(k);
        group.bench_with_input(BenchmarkId::new("two_point", k), &src, |b, src| {
            let v = Verifier::new();
            b.iter(|| {
                let r = v.verify_source(src, "w.php").unwrap();
                assert!(!r.is_safe());
            })
        });
        group.bench_with_input(BenchmarkId::new("multiclass", k), &src, |b, src| {
            let v = VerifierBuilder::new().multiclass().build();
            b.iter(|| {
                let r = v.verify_source(src, "w.php").unwrap();
                assert!(!r.is_safe());
            })
        });
    }
    group.finish();
}

fn bench_certification_overhead(c: &mut Criterion) {
    // An all-clean file: every assertion gets certified.
    let mut src = String::from("<?php\n");
    for i in 0..12 {
        src.push_str(&format!(
            "$v{i} = intval($_GET['p{i}']);\nmysql_query(\"LIMIT $v{i}\");\n"
        ));
    }
    let mut group = c.benchmark_group("policies/certify");
    group.bench_with_input(BenchmarkId::new("plain", 12), &src, |b, src| {
        let v = Verifier::new();
        b.iter(|| {
            let r = v.verify_source(src, "c.php").unwrap();
            assert!(r.is_safe());
        })
    });
    group.bench_with_input(BenchmarkId::new("certified", 12), &src, |b, src| {
        let v = VerifierBuilder::new().certify(true).build();
        b.iter(|| {
            let r = v.verify_source(src, "c.php").unwrap();
            assert_eq!(r.bmc.certificates.len(), 12);
        })
    });
    group.bench_with_input(
        BenchmarkId::new("certified_and_rechecked", 12),
        &src,
        |b, src| {
            let v = VerifierBuilder::new().certify(true).build();
            b.iter(|| {
                let r = v.verify_source(src, "c.php").unwrap();
                assert_eq!(r.bmc.verify_certificates().unwrap(), 12);
            })
        },
    );
    group.finish();
}

fn bench_loop_unroll(c: &mut Criterion) {
    let src = "<?php\n$t = $_GET['x'];\nwhile ($c) { $a = $b; $b = $cc; $cc = $t; }\necho $a;\n";
    let mut group = c.benchmark_group("policies/loop_unroll");
    for unroll in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(unroll), &src, |b, src| {
            let v = VerifierBuilder::new().loop_unroll(unroll).build();
            b.iter(|| {
                let r = v.verify_source(src, "l.php").unwrap();
                // 1 unfolding misses the 3-step relay; ≥3 find it.
                assert_eq!(!r.is_safe(), unroll >= 3);
            })
        });
    }
    group.finish();
}

fn bench_fresh_vs_incremental(c: &mut Criterion) {
    // The paper formulates one formula Bᵢ per assertion, solved by a
    // fresh solver; the reproduction defaults to one incremental solver
    // with assumption-scoped blocking clauses. Same semantics
    // (property-tested); this measures the performance gap.
    use webssari_ir::{abstract_interpret, filter_program, FilterOptions, Prelude};
    use xbmc::{CheckOptions, Xbmc};
    let src = mixed_workload(12);
    let ast = php_front::parse_source(&src).unwrap();
    let f = filter_program(
        &ast,
        &src,
        "w.php",
        &Prelude::standard(),
        &FilterOptions::default(),
    );
    let ai = abstract_interpret(&f);
    let mut group = c.benchmark_group("policies/solver_mode");
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let r = Xbmc::new(&ai).check_all();
            assert_eq!(r.violated_assertions, 12);
        })
    });
    group.bench_function("fresh_per_assert", |b| {
        b.iter(|| {
            let r = Xbmc::with_options(
                &ai,
                CheckOptions {
                    fresh_solver_per_assert: true,
                    ..CheckOptions::default()
                },
            )
            .check_all();
            assert_eq!(r.violated_assertions, 12);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_two_point_vs_multiclass,
    bench_certification_overhead,
    bench_loop_unroll,
    bench_fresh_vs_incremental
);
criterion_main!(benches);
