//! The MINIMUM-INTERSECTING-SET problem and its solvers.

use std::collections::{BTreeMap, BTreeSet};

/// A MINIMUM-INTERSECTING-SET instance: given a collection of sets
/// `S = {S₁, …, Sₙ}` over a universe `V`, find a minimum `M ⊆ V` with
/// `Sᵢ ∩ M ≠ ∅` for every `i` (Definition 2 of the paper).
///
/// Elements are `usize` ids; callers map their domain (program
/// variables, graph vertices) onto ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MisInstance {
    sets: Vec<BTreeSet<usize>>,
}

impl MisInstance {
    /// Builds an instance from element lists. Empty input sets are
    /// rejected (an empty set can never be intersected).
    ///
    /// # Panics
    ///
    /// Panics if any set is empty.
    pub fn from_sets<I, S>(sets: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: IntoIterator<Item = usize>,
    {
        let sets: Vec<BTreeSet<usize>> = sets
            .into_iter()
            .map(|s| s.into_iter().collect::<BTreeSet<usize>>())
            .collect();
        assert!(
            sets.iter().all(|s| !s.is_empty()),
            "MIS constraint sets must be nonempty"
        );
        MisInstance { sets }
    }

    /// The constraint sets.
    pub fn sets(&self) -> &[BTreeSet<usize>] {
        &self.sets
    }

    /// Number of constraint sets (`|S|`).
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether there are no constraints (the empty set is a solution).
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// All distinct elements mentioned by the constraints.
    pub fn universe(&self) -> BTreeSet<usize> {
        self.sets.iter().flatten().copied().collect()
    }

    /// Whether `candidate` intersects every constraint set.
    pub fn is_intersecting(&self, candidate: &[usize]) -> bool {
        let c: BTreeSet<usize> = candidate.iter().copied().collect();
        self.sets.iter().all(|s| !s.is_disjoint(&c))
    }

    /// Chvátal's greedy SET-COVER heuristic through the paper's
    /// reduction (§3.3.4): each constraint set `Sᵢ` becomes a universe
    /// element, each candidate variable `v` covers `{Sᵢ | v ∈ Sᵢ}`, and
    /// the greedy rule repeatedly picks the variable covering the most
    /// uncovered constraints. Guarantees a `1 + ln |S|` approximation.
    ///
    /// Returns the chosen elements in selection order; ties break toward
    /// the smallest element id (deterministic).
    pub fn greedy(&self) -> Vec<usize> {
        let mut covers: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for (i, s) in self.sets.iter().enumerate() {
            for &v in s {
                covers.entry(v).or_default().insert(i);
            }
        }
        let mut uncovered: BTreeSet<usize> = (0..self.sets.len()).collect();
        let mut chosen = Vec::new();
        while !uncovered.is_empty() {
            let (&best, _) = covers
                .iter()
                .max_by_key(|(v, c)| (c.intersection(&uncovered).count(), std::cmp::Reverse(**v)))
                .expect("uncovered nonempty implies a candidate exists");
            chosen.push(best);
            let newly: Vec<usize> = covers[&best].intersection(&uncovered).copied().collect();
            for i in newly {
                uncovered.remove(&i);
            }
        }
        chosen.sort_unstable();
        chosen
    }

    /// Exact minimum intersecting set by branch-and-bound on the
    /// hitting-set formulation: pick an uncovered constraint, branch on
    /// each of its elements, prune when the current size reaches the
    /// best known. Exponential in the worst case — MIS is NP-complete —
    /// but fine at the sizes the tests and benchmarks use.
    pub fn exact(&self) -> Vec<usize> {
        let mut best: Vec<usize> = self.greedy(); // upper bound
        let mut current: Vec<usize> = Vec::new();
        self.branch(&mut current, &mut best);
        best.sort_unstable();
        best
    }

    fn branch(&self, current: &mut Vec<usize>, best: &mut Vec<usize>) {
        if current.len() >= best.len() {
            return; // cannot improve
        }
        // First constraint not hit by `current`.
        let chosen: BTreeSet<usize> = current.iter().copied().collect();
        let Some(unhit) = self.sets.iter().find(|s| s.is_disjoint(&chosen)) else {
            *best = current.clone();
            return;
        };
        for &v in unhit {
            current.push(v);
            self.branch(current, best);
            current.pop();
        }
    }

    /// Weighted greedy: Chvátal's rule with per-element costs, picking
    /// the element with the best cost-effectiveness (newly covered
    /// constraints per unit cost) each round. With unit costs this is
    /// exactly [`MisInstance::greedy`]; the `Hₙ` approximation
    /// guarantee carries over to the weighted case.
    ///
    /// The paper reduces MIS "to the SET-COVER problem where all sets
    /// have an equal cost"; the weighted generalization lets the patch
    /// planner minimize real deployment cost (e.g. the number of guard
    /// lines a variable needs) instead of the variable count.
    ///
    /// # Panics
    ///
    /// Panics if `cost` returns a non-positive or non-finite value.
    pub fn greedy_weighted(&self, cost: impl Fn(usize) -> f64) -> Vec<usize> {
        let mut covers: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for (i, s) in self.sets.iter().enumerate() {
            for &v in s {
                covers.entry(v).or_default().insert(i);
            }
        }
        for &v in covers.keys() {
            let c = cost(v);
            assert!(
                c.is_finite() && c > 0.0,
                "element costs must be positive and finite (got {c} for {v})"
            );
        }
        let mut uncovered: BTreeSet<usize> = (0..self.sets.len()).collect();
        let mut chosen = Vec::new();
        while !uncovered.is_empty() {
            let (&best, _) = covers
                .iter()
                .filter(|(_, c)| c.intersection(&uncovered).count() > 0)
                .max_by(|(va, ca), (vb, cb)| {
                    let ea = ca.intersection(&uncovered).count() as f64 / cost(**va);
                    let eb = cb.intersection(&uncovered).count() as f64 / cost(**vb);
                    ea.partial_cmp(&eb)
                        .expect("finite effectiveness")
                        .then(vb.cmp(va)) // tie-break toward smaller id
                })
                .expect("uncovered nonempty implies a candidate exists");
            chosen.push(best);
            let newly: Vec<usize> = covers[&best].intersection(&uncovered).copied().collect();
            for i in newly {
                uncovered.remove(&i);
            }
        }
        chosen.sort_unstable();
        chosen
    }

    /// Exact minimum-*cost* intersecting set by branch-and-bound.
    ///
    /// # Panics
    ///
    /// Panics if `cost` returns a non-positive or non-finite value.
    pub fn exact_weighted(&self, cost: impl Fn(usize) -> f64) -> Vec<usize> {
        let mut best: Vec<usize> = self.greedy_weighted(&cost);
        let mut best_cost: f64 = best.iter().map(|&v| cost(v)).sum();
        let mut current: Vec<usize> = Vec::new();
        self.branch_weighted(&cost, &mut current, 0.0, &mut best, &mut best_cost);
        best.sort_unstable();
        best
    }

    fn branch_weighted(
        &self,
        cost: &impl Fn(usize) -> f64,
        current: &mut Vec<usize>,
        current_cost: f64,
        best: &mut Vec<usize>,
        best_cost: &mut f64,
    ) {
        if current_cost >= *best_cost {
            return;
        }
        let chosen: BTreeSet<usize> = current.iter().copied().collect();
        let Some(unhit) = self.sets.iter().find(|s| s.is_disjoint(&chosen)) else {
            *best = current.clone();
            *best_cost = current_cost;
            return;
        };
        for &v in unhit {
            current.push(v);
            self.branch_weighted(cost, current, current_cost + cost(v), best, best_cost);
            current.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_instance_needs_nothing() {
        let inst = MisInstance::from_sets(Vec::<Vec<usize>>::new());
        assert!(inst.is_empty());
        assert!(inst.greedy().is_empty());
        assert!(inst.exact().is_empty());
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_constraint_set_panics() {
        let _ = MisInstance::from_sets(vec![vec![1], vec![]]);
    }

    #[test]
    fn single_shared_element_wins() {
        let inst = MisInstance::from_sets(vec![vec![0, 1], vec![0, 2], vec![0, 3]]);
        assert_eq!(inst.greedy(), vec![0]);
        assert_eq!(inst.exact(), vec![0]);
    }

    #[test]
    fn disjoint_sets_need_one_each() {
        let inst = MisInstance::from_sets(vec![vec![0], vec![1], vec![2]]);
        assert_eq!(inst.greedy().len(), 3);
        assert_eq!(inst.exact().len(), 3);
    }

    #[test]
    fn greedy_result_is_always_intersecting() {
        let inst = MisInstance::from_sets(vec![
            vec![1, 2],
            vec![2, 3],
            vec![3, 4],
            vec![4, 5],
            vec![1, 5],
        ]);
        let g = inst.greedy();
        assert!(inst.is_intersecting(&g));
        let e = inst.exact();
        assert!(inst.is_intersecting(&e));
        assert!(e.len() <= g.len());
    }

    #[test]
    fn classic_greedy_suboptimal_instance() {
        // The standard set-cover trap: greedy may pick the big set
        // first; exact finds the 2-element solution.
        // Constraints are "columns": {a, x}, {a, y}, {b, x}, {b, y},
        // plus a decoy element c in three of them.
        let (a, b, c, x, y) = (0, 1, 2, 3, 4);
        let inst = MisInstance::from_sets(vec![
            vec![a, x, c],
            vec![a, y, c],
            vec![b, x, c],
            vec![b, y],
        ]);
        let e = inst.exact();
        assert!(inst.is_intersecting(&e));
        assert_eq!(e.len(), 2); // {a,b} or {x,y}
        let g = inst.greedy();
        assert!(inst.is_intersecting(&g));
        assert!(g.len() >= 2);
    }

    #[test]
    fn exact_is_never_worse_than_greedy_randomized() {
        // Deterministic xorshift instance generator.
        let mut seed = 0xDEADBEEFCAFEu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let n_sets = (next() % 6 + 1) as usize;
            let sets: Vec<Vec<usize>> = (0..n_sets)
                .map(|_| {
                    let len = (next() % 4 + 1) as usize;
                    (0..len).map(|_| (next() % 8) as usize).collect()
                })
                .collect();
            let inst = MisInstance::from_sets(sets);
            let g = inst.greedy();
            let e = inst.exact();
            assert!(inst.is_intersecting(&g));
            assert!(inst.is_intersecting(&e));
            assert!(e.len() <= g.len());
            // Chvátal bound: |greedy| ≤ (1 + ln|S|) · |opt|.
            let bound = (1.0 + (inst.len() as f64).ln()) * e.len() as f64;
            assert!(g.len() as f64 <= bound + 1e-9);
        }
    }

    #[test]
    fn weighted_greedy_with_unit_costs_matches_unweighted() {
        let insts = [
            MisInstance::from_sets(vec![vec![0, 1], vec![0, 2], vec![0, 3]]),
            MisInstance::from_sets(vec![vec![0], vec![1], vec![2]]),
            MisInstance::from_sets(vec![vec![1, 2], vec![2, 3], vec![3, 4], vec![1, 4]]),
        ];
        for inst in insts {
            assert_eq!(inst.greedy_weighted(|_| 1.0), inst.greedy());
        }
    }

    #[test]
    fn weights_steer_the_choice() {
        // {0} covers everything, but is expensive; {1, 2} is cheaper
        // in total cost.
        let inst = MisInstance::from_sets(vec![vec![0, 1], vec![0, 2]]);
        let cost = |v: usize| if v == 0 { 5.0 } else { 1.0 };
        let exact = inst.exact_weighted(cost);
        assert_eq!(exact, vec![1, 2], "total cost 2 beats cost 5");
        assert!(inst.is_intersecting(&exact));
        // Unweighted exact still prefers the single element.
        assert_eq!(inst.exact(), vec![0]);
    }

    #[test]
    fn weighted_exact_never_costs_more_than_weighted_greedy() {
        let mut seed = 0xFEED5EEDu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..40 {
            let n_sets = (next() % 5 + 1) as usize;
            let sets: Vec<Vec<usize>> = (0..n_sets)
                .map(|_| {
                    let len = (next() % 3 + 1) as usize;
                    (0..len).map(|_| (next() % 6) as usize).collect()
                })
                .collect();
            let inst = MisInstance::from_sets(sets);
            let cost = |v: usize| 1.0 + (v % 3) as f64;
            let g = inst.greedy_weighted(cost);
            let e = inst.exact_weighted(cost);
            assert!(inst.is_intersecting(&g));
            assert!(inst.is_intersecting(&e));
            let gc: f64 = g.iter().map(|&v| cost(v)).sum();
            let ec: f64 = e.iter().map(|&v| cost(v)).sum();
            assert!(ec <= gc + 1e-9, "exact {ec} vs greedy {gc}");
        }
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_costs_are_rejected() {
        let inst = MisInstance::from_sets(vec![vec![0]]);
        let _ = inst.greedy_weighted(|_| 0.0);
    }

    #[test]
    fn universe_collects_all_elements() {
        let inst = MisInstance::from_sets(vec![vec![5, 1], vec![2]]);
        let u: Vec<usize> = inst.universe().into_iter().collect();
        assert_eq!(u, vec![1, 2, 5]);
        assert_eq!(inst.len(), 2);
    }
}
