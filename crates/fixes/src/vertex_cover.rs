//! The VERTEX-COVER → MINIMUM-INTERSECTING-SET reduction.
//!
//! The paper's NP-completeness proof (§3.3.4, Theorem) maps each edge
//! `eᵢ = (v, v')` of a graph to the constraint set `Sᵢ = {v, v'}`: a
//! minimum intersecting set of `{S₁, …, Sₙ}` is exactly a minimum vertex
//! cover. This module implements the reduction and a brute-force vertex
//! cover, used in tests to cross-validate the MIS solvers (and as the
//! executable witness of the hardness construction).

use crate::mis::MisInstance;

/// An undirected graph given by its edge list over vertices `0..n`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Undirected edges `(u, v)` with `u, v < num_vertices`.
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Creates a graph, validating the edge endpoints.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range or a self-loop.
    pub fn new(num_vertices: usize, edges: Vec<(usize, usize)>) -> Self {
        for &(u, v) in &edges {
            assert!(
                u < num_vertices && v < num_vertices,
                "edge endpoint out of range"
            );
            assert_ne!(u, v, "self-loops have no 2-element constraint set");
        }
        Graph {
            num_vertices,
            edges,
        }
    }

    /// The paper's reduction: one 2-element constraint set per edge.
    pub fn to_mis(&self) -> MisInstance {
        MisInstance::from_sets(self.edges.iter().map(|&(u, v)| vec![u, v]))
    }

    /// Brute-force minimum vertex cover (exponential; test sizes only).
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 20 vertices.
    pub fn min_vertex_cover(&self) -> Vec<usize> {
        assert!(
            self.num_vertices <= 20,
            "brute force limited to 20 vertices"
        );
        let n = self.num_vertices;
        let mut best: Vec<usize> = (0..n).collect();
        for mask in 0u32..(1 << n) {
            let cover: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            if cover.len() >= best.len() {
                continue;
            }
            if self
                .edges
                .iter()
                .all(|&(u, v)| mask >> u & 1 == 1 || mask >> v & 1 == 1)
            {
                best = cover;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_needs_two_vertices() {
        let g = Graph::new(3, vec![(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.min_vertex_cover().len(), 2);
        assert_eq!(g.to_mis().exact().len(), 2);
    }

    #[test]
    fn star_needs_only_the_center() {
        let g = Graph::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(g.min_vertex_cover(), vec![0]);
        assert_eq!(g.to_mis().exact(), vec![0]);
        assert_eq!(g.to_mis().greedy(), vec![0]);
    }

    #[test]
    fn reduction_preserves_optimum_on_random_graphs() {
        let mut seed = 0x1234ABCDu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..30 {
            let n = (next() % 7 + 2) as usize;
            let mut edges = Vec::new();
            for u in 0..n {
                for v in u + 1..n {
                    if next() % 3 == 0 {
                        edges.push((u, v));
                    }
                }
            }
            if edges.is_empty() {
                continue;
            }
            let g = Graph::new(n, edges);
            let vc = g.min_vertex_cover();
            let mis = g.to_mis().exact();
            assert_eq!(
                vc.len(),
                mis.len(),
                "reduction must preserve the optimum size"
            );
            // The MIS solution must itself be a vertex cover.
            let m: std::collections::BTreeSet<usize> = mis.into_iter().collect();
            assert!(g
                .edges
                .iter()
                .all(|&(u, v)| m.contains(&u) || m.contains(&v)));
        }
    }

    #[test]
    fn empty_graph_has_empty_cover() {
        let g = Graph::new(4, vec![]);
        assert!(g.min_vertex_cover().is_empty());
        assert!(g.to_mis().exact().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let _ = Graph::new(2, vec![(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let _ = Graph::new(2, vec![(1, 1)]);
    }
}
