//! Counterexample analysis: from error traces to a minimal set of
//! patch locations (paper §3.3.3–§3.3.4).
//!
//! For an error trace `r`, the *violating variables* `V_r` are the
//! variables that appeared in the violated assertion. For each
//! violating variable a *replacement set* `s_vα` is built by tracing
//! backwards along the trace through single assignments with unique
//! r-values (`vα = vβ` chains): by Lemma 1, sanitizing any variable in
//! `s_vα` fixes `vα`'s contribution to the trace.
//!
//! Finding the smallest set of variables that intersects every
//! replacement set is the **MINIMUM-INTERSECTING-SET** problem, which
//! the paper proves NP-complete by reduction from VERTEX-COVER, and
//! solves with Chvátal's greedy SET-COVER heuristic (approximation
//! ratio `1 + ln |S|`). This crate implements the instance builder, the
//! greedy solver, an exact branch-and-bound solver (used to validate
//! the approximation bound in tests and benchmarks), and the
//! vertex-cover reduction itself.
//!
//! # Examples
//!
//! ```
//! use fixes::MisInstance;
//!
//! // Three sinks all reachable only through the chain from element 0
//! // (the PHP Surveyor `$sid` pattern): one patch suffices.
//! let inst = MisInstance::from_sets(vec![
//!     vec![0, 1], // s_{iquery}  = {sid, iquery}
//!     vec![0, 2], // s_{i2query} = {sid, i2query}
//!     vec![0, 3], // s_{fnquery} = {sid, fnquery}
//! ]);
//! assert_eq!(inst.greedy(), vec![0]);
//! assert_eq!(inst.exact(), vec![0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mis;
mod plan;
pub mod vertex_cover;

pub use mis::MisInstance;
pub use plan::{
    minimal_fixing_set, minimal_fixing_set_exact, minimal_fixing_set_weighted,
    minimal_fixing_set_with, replacement_set, replacement_set_excluding, FixPlan,
};
