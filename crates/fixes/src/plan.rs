//! From counterexample traces to patch plans.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use webssari_ir::{AssertId, VarId};
use xbmc::{Counterexample, TraceStep};

use crate::mis::MisInstance;

/// Builds the replacement set `s_vα` of a violating variable by tracing
/// backwards along the error trace, recursively adding variables that
/// serve as unique r-values of single assignments (paper §3.3.3,
/// Lemma 1).
///
/// The returned set always contains `v` itself and is ordered from the
/// violating variable back to the root of the copy chain.
pub fn replacement_set(trace: &[TraceStep], v: VarId) -> Vec<VarId> {
    replacement_set_excluding(trace, v, &BTreeSet::new())
}

/// Like [`replacement_set`], but the chain is not *extended* with
/// variables in `excluded` — used to keep patch points out of channel
/// variables like `$_GET` (you sanitize the program variable that read
/// the channel, not the channel itself). The violating variable `v`
/// stays in the set even if excluded.
pub fn replacement_set_excluding(
    trace: &[TraceStep],
    v: VarId,
    excluded: &BTreeSet<VarId>,
) -> Vec<VarId> {
    let mut set = vec![v];
    let mut current = v;
    for step in trace.iter().rev() {
        if step.var != current {
            continue;
        }
        match step.copy_of {
            Some(w) if !set.contains(&w) && !excluded.contains(&w) => {
                set.push(w);
                current = w;
            }
            _ => break,
        }
    }
    set
}

/// A computed patch plan for a set of error traces.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FixPlan {
    /// The chosen fixing set `V_R^m`: sanitize these variables (at
    /// their introduction points) and every error trace is removed.
    pub fix_vars: Vec<VarId>,
    /// The naive fixing set `V_R^n` (all violating variables) — what
    /// the TS algorithm would instrument.
    pub naive_vars: Vec<VarId>,
    /// Number of `(trace, violating variable)` constraints.
    pub num_constraints: usize,
    /// For each chosen variable, the assertions (symptoms) whose error
    /// traces it repairs — the paper's error *groups*.
    pub groups: BTreeMap<VarId, BTreeSet<AssertId>>,
    /// Fix variables whose every repaired symptom is a SQL-structured
    /// sink: binding the value at a parameterized position (`?`) fixes
    /// the flaw structurally, a better patch shape than sanitizing.
    /// Populated by `webssari-core` (assert kinds live in the AI);
    /// always empty for a bare plan.
    pub parameterize: BTreeSet<VarId>,
}

impl FixPlan {
    /// Number of runtime guards the plan inserts (`|V_R^m|`) — the
    /// paper's "BMC-reported errors" column of Figure 10.
    pub fn num_patches(&self) -> usize {
        self.fix_vars.len()
    }

    /// Size of the naive fixing set (`|V_R^n|`).
    pub fn num_naive(&self) -> usize {
        self.naive_vars.len()
    }
}

/// Computes a minimal fixing set with the greedy heuristic (the
/// production configuration, §3.3.4).
pub fn minimal_fixing_set(counterexamples: &[Counterexample]) -> FixPlan {
    minimal_fixing_set_with(counterexamples, &BTreeSet::new(), false)
}

/// Computes the exact minimum fixing set by branch and bound — viable
/// for small trace sets; used to measure the greedy gap.
pub fn minimal_fixing_set_exact(counterexamples: &[Counterexample]) -> FixPlan {
    minimal_fixing_set_with(counterexamples, &BTreeSet::new(), true)
}

/// Computes a fixing set with explicit chain-exclusion (channel
/// variables) and solver choice.
pub fn minimal_fixing_set_with(
    counterexamples: &[Counterexample],
    excluded: &BTreeSet<VarId>,
    exact: bool,
) -> FixPlan {
    build_plan(counterexamples, excluded, move |inst, _| {
        if exact {
            inst.exact()
        } else {
            inst.greedy()
        }
    })
}

/// Computes a fixing set minimizing total *cost* instead of variable
/// count, with the weighted greedy heuristic (an extension of the
/// paper's equal-cost SET-COVER reduction, §3.3.4). The verifier uses
/// this to minimize the number of inserted guard lines: a variable's
/// cost is its number of tainting introduction points.
pub fn minimal_fixing_set_weighted(
    counterexamples: &[Counterexample],
    excluded: &BTreeSet<VarId>,
    cost: impl Fn(VarId) -> f64,
) -> FixPlan {
    build_plan(counterexamples, excluded, move |inst, vars| {
        inst.greedy_weighted(|dense| cost(vars[dense]))
    })
}

fn build_plan(
    counterexamples: &[Counterexample],
    excluded: &BTreeSet<VarId>,
    choose: impl Fn(&MisInstance, &[VarId]) -> Vec<usize>,
) -> FixPlan {
    // One constraint per (trace, violating variable): its replacement
    // set. Duplicate constraints collapse.
    let mut constraints: Vec<(AssertId, Vec<VarId>)> = Vec::new();
    let mut naive: BTreeSet<VarId> = BTreeSet::new();
    for cx in counterexamples {
        for &v in &cx.violating_vars {
            naive.insert(v);
            constraints.push((
                cx.assert_id,
                replacement_set_excluding(&cx.trace, v, excluded),
            ));
        }
    }
    if constraints.is_empty() {
        return FixPlan::default();
    }
    // Intern VarIds densely for the MIS instance.
    let mut ids: HashMap<VarId, usize> = HashMap::new();
    let mut vars: Vec<VarId> = Vec::new();
    let intern = |v: VarId, ids: &mut HashMap<VarId, usize>, vars: &mut Vec<VarId>| {
        *ids.entry(v).or_insert_with(|| {
            vars.push(v);
            vars.len() - 1
        })
    };
    // Intern each chain root-first: the greedy solver breaks ties
    // toward smaller ids, which biases patches toward the introduction
    // point ("repair where errors are initially introduced") rather
    // than the symptom end of the chain.
    let dense: Vec<(AssertId, Vec<usize>)> = constraints
        .iter()
        .map(|(a, s)| {
            (
                *a,
                s.iter()
                    .rev()
                    .map(|&v| intern(v, &mut ids, &mut vars))
                    .collect(),
            )
        })
        .collect();
    let instance = MisInstance::from_sets(dense.iter().map(|(_, s)| s.clone()));
    let chosen = choose(&instance, &vars);
    let chosen_vars: Vec<VarId> = chosen.iter().map(|&i| vars[i]).collect();
    // Group symptoms under the fixing variables that repair them.
    let chosen_set: BTreeSet<usize> = chosen.iter().copied().collect();
    let mut groups: BTreeMap<VarId, BTreeSet<AssertId>> = BTreeMap::new();
    for (assert_id, s) in &dense {
        for &e in s {
            if chosen_set.contains(&e) {
                groups.entry(vars[e]).or_default().insert(*assert_id);
            }
        }
    }
    FixPlan {
        fix_vars: chosen_vars,
        naive_vars: naive.into_iter().collect(),
        num_constraints: instance.len(),
        groups,
        parameterize: BTreeSet::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use php_front::parse_source;
    use taint_lattice::{Lattice, TwoPoint};
    use webssari_ir::ai::reference;
    use webssari_ir::{
        abstract_interpret, filter_program, AiCmd, AiProgram, FilterOptions, Prelude,
    };
    use xbmc::Xbmc;

    fn ai_of(src: &str) -> AiProgram {
        let ast = parse_source(src).expect("parse");
        let f = filter_program(
            &ast,
            src,
            "t.php",
            &Prelude::standard(),
            &FilterOptions::default(),
        );
        abstract_interpret(&f)
    }

    /// Channel variables (superglobals) excluded from chain expansion,
    /// mirroring the production verifier.
    fn channels(ai: &AiProgram) -> BTreeSet<webssari_ir::VarId> {
        let prelude = Prelude::standard();
        ai.vars
            .iter()
            .filter(|v| prelude.is_superglobal(ai.vars.name(*v)))
            .collect()
    }

    fn plan_of(ai: &AiProgram, cxs: &[xbmc::Counterexample], exact: bool) -> FixPlan {
        minimal_fixing_set_with(cxs, &channels(ai), exact)
    }

    /// The paper's Figure 7 (PHP Surveyor): one root cause, three
    /// vulnerable statements — TS inserts 3 guards, BMC needs 1.
    #[test]
    fn php_surveyor_single_root_cause() {
        let src = r#"<?php
$sid = $_GET['sid'];
$iq = "SELECT * FROM groups WHERE sid=$sid";
DoSQL($iq);
$i2q = "SELECT * FROM ans WHERE sid=$sid";
DoSQL($i2q);
$fnquery = "SELECT * FROM questions WHERE sid='$sid'";
DoSQL($fnquery);
"#;
        let ai = ai_of(src);
        let result = Xbmc::new(&ai).check_all();
        assert_eq!(result.counterexamples.len(), 3);
        let plan = plan_of(&ai, &result.counterexamples, false);
        assert_eq!(plan.num_naive(), 3, "naive set = {{iq, i2q, fnquery}}");
        assert_eq!(plan.num_patches(), 1, "one sanitization of $sid suffices");
        assert_eq!(ai.vars.name(plan.fix_vars[0]), "sid");
        // The single group repairs all three symptoms.
        assert_eq!(plan.groups[&plan.fix_vars[0]].len(), 3);
        // TS would have inserted 3.
        let ts = typestate::analyze(&ai, &TwoPoint::new());
        assert_eq!(ts.num_instrumentations(), 3);
    }

    #[test]
    fn independent_sources_need_independent_patches() {
        let src = r#"<?php
$a = $_GET['a']; echo $a;
$b = $_GET['b']; echo $b;
"#;
        let ai = ai_of(src);
        let result = Xbmc::new(&ai).check_all();
        let plan = plan_of(&ai, &result.counterexamples, false);
        assert_eq!(plan.num_patches(), 2);
    }

    #[test]
    fn empty_counterexamples_yield_empty_plan() {
        let plan = minimal_fixing_set(&[]);
        assert_eq!(plan.num_patches(), 0);
        assert_eq!(plan.num_naive(), 0);
    }

    #[test]
    fn replacement_set_follows_copy_chain() {
        let src = "<?php $sid = $_GET['sid']; $a = $sid; $b = $a; echo $b;";
        let ai = ai_of(src);
        let result = Xbmc::new(&ai).check_all();
        let cx = &result.counterexamples[0];
        let b = ai.vars.lookup("b").unwrap();
        let set = replacement_set_excluding(&cx.trace, b, &channels(&ai));
        let names: Vec<&str> = set.iter().map(|v| ai.vars.name(*v)).collect();
        assert_eq!(names, vec!["b", "a", "sid"]);
        // Without exclusion the chain reaches the channel itself.
        let full = replacement_set(&cx.trace, b);
        let full_names: Vec<&str> = full.iter().map(|v| ai.vars.name(*v)).collect();
        assert_eq!(full_names, vec!["b", "a", "sid", "_GET[sid]"]);
    }

    #[test]
    fn replacement_chain_stops_at_join_assignments() {
        // $b = $a . $x is not a single-unique-r-value assignment, so the
        // chain must stop at $b.
        let src = "<?php $a = $_GET['p']; $x = $_GET['q']; $b = $a . $x; echo $b;";
        let ai = ai_of(src);
        let result = Xbmc::new(&ai).check_all();
        let b = ai.vars.lookup("b").unwrap();
        let set = replacement_set(&result.counterexamples[0].trace, b);
        assert_eq!(set, vec![b]);
    }

    #[test]
    fn exact_is_never_larger_than_greedy() {
        let src = r#"<?php
$sid = $_GET['sid'];
$q1 = $sid; DoSQL($q1);
$q2 = $sid; DoSQL($q2);
$other = $_GET['o']; echo $other;
"#;
        let ai = ai_of(src);
        let result = Xbmc::new(&ai).check_all();
        let greedy = plan_of(&ai, &result.counterexamples, false);
        let exact = plan_of(&ai, &result.counterexamples, true);
        assert!(exact.num_patches() <= greedy.num_patches());
        assert_eq!(exact.num_patches(), 2); // $sid and $other
    }

    /// Lemma 2, executed: sanitizing the fixing set removes *every*
    /// error trace. Sanitization is modeled by forcing every assignment
    /// to a fix variable down to ⊥ and re-running all paths.
    #[test]
    fn fix_plan_is_semantically_effective() {
        let srcs = [
            "<?php $sid = $_GET['sid']; $a = $sid; DoSQL($a); $b = $sid; DoSQL($b);",
            "<?php if ($c) { $x = $_GET['p']; } else { $x = $_GET['q']; } echo $x;",
            "<?php $a = $_GET['p']; $b = $a . 'x'; echo $b; mysql_query($b);",
            "<?php while ($r = mysql_fetch_array($h)) { echo $r; }",
        ];
        let l = TwoPoint::new();
        for src in srcs {
            let ai = ai_of(src);
            let result = Xbmc::new(&ai).check_all();
            assert!(!result.counterexamples.is_empty(), "{src}");
            let plan = plan_of(&ai, &result.counterexamples, false);
            let patched = sanitize(&ai, &plan.fix_vars, &l);
            let remaining = reference::all_violating_paths(&patched, &l);
            assert!(
                remaining.is_empty(),
                "fix plan must remove every trace for {src}"
            );
        }
    }

    /// Models the runtime guard: every assignment to a fix variable is
    /// followed by sanitization, i.e. its result type becomes ⊥.
    fn sanitize(ai: &AiProgram, fix_vars: &[VarId], lattice: &impl Lattice) -> AiProgram {
        fn rewrite(
            cmds: &[AiCmd],
            fix: &BTreeSet<VarId>,
            bottom: taint_lattice::Elem,
        ) -> Vec<AiCmd> {
            cmds.iter()
                .map(|c| match c {
                    AiCmd::Assign { var, site, .. } if fix.contains(var) => AiCmd::Assign {
                        var: *var,
                        base: bottom,
                        deps: Vec::new(),
                        mask: None,
                        site: site.clone(),
                    },
                    AiCmd::If {
                        branch,
                        then_cmds,
                        else_cmds,
                        site,
                    } => AiCmd::If {
                        branch: *branch,
                        then_cmds: rewrite(then_cmds, fix, bottom),
                        else_cmds: rewrite(else_cmds, fix, bottom),
                        site: site.clone(),
                    },
                    other => other.clone(),
                })
                .collect()
        }
        let fix: BTreeSet<VarId> = fix_vars.iter().copied().collect();
        AiProgram::from_parts(
            ai.vars.clone(),
            rewrite(&ai.cmds, &fix, lattice.bottom()),
            ai.num_branches,
        )
    }
}
