//! Robustness: the front end must never panic, whatever bytes arrive —
//! malformed input yields `ParseError`s, not crashes. (Failure
//! injection for the corpus pipeline.)

use php_front::{parse_source, Lexer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexer_never_panics(input in ".{0,200}") {
        let _ = Lexer::new(&input).tokenize();
    }

    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse_source(&input);
    }

    #[test]
    fn parser_never_panics_on_php_like_soup(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("<?php".to_owned()), Just("$x".to_owned()), Just("=".to_owned()),
                Just("echo".to_owned()), Just("if".to_owned()), Just("(".to_owned()),
                Just(")".to_owned()), Just("{".to_owned()), Just("}".to_owned()),
                Just(";".to_owned()), Just("'s'".to_owned()), Just("\"d\"".to_owned()),
                Just("while".to_owned()), Just("function".to_owned()), Just("f".to_owned()),
                Just(",".to_owned()), Just(".".to_owned()), Just("?>".to_owned()),
                Just("foreach".to_owned()), Just("as".to_owned()), Just("=>".to_owned()),
                Just("list".to_owned()), Just("do".to_owned()), Just(":".to_owned()),
                Just("endif".to_owned()), Just("42".to_owned()), Just("@".to_owned()),
            ],
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = parse_source(&src);
    }

    /// Valid programs still parse when whitespace is perturbed.
    #[test]
    fn whitespace_insensitivity(pad in "[ \t\n]{0,5}") {
        let src = format!("<?php{pad}$x{pad}={pad}$_GET['a'];{pad}echo{pad} $x;{pad}");
        let p = parse_source(&src).expect("whitespace must not matter");
        prop_assert_eq!(p.stmts.len(), 2);
    }
}

#[test]
fn pathological_inputs_error_gracefully() {
    for bad in [
        "<?php \"unterminated",
        "<?php /* forever",
        "<?php $",
        "<?php if ((((",
        "<?php function (",
        "<?php foreach ($a as ) {}",
        "<?php <<<",
        "<?php <<<EOT",
        "<?php list(1) = $x;",
        "<?php ]",
        "\u{0}\u{1}\u{2}",
    ] {
        // Must return (ok or error), never panic or hang.
        let _ = parse_source(bad);
    }
}

#[test]
fn deeply_nested_input_is_handled() {
    let nested = |depth: usize| {
        let mut src = String::from("<?php ");
        for _ in 0..depth {
            src.push_str("if ($c) { ");
        }
        src.push_str("echo 1; ");
        for _ in 0..depth {
            src.push_str("} ");
        }
        src
    };
    // Reasonable nesting parses…
    let p = parse_source(&nested(50)).expect("deep nesting parses");
    assert_eq!(p.num_statements(), 51);
    // …and absurd nesting errors gracefully instead of overflowing.
    let err = parse_source(&nested(5000)).unwrap_err();
    assert!(err.message.contains("nesting deeper"), "{}", err.message);
}

#[test]
fn deeply_nested_expressions_error_gracefully() {
    let mut src = String::from("<?php $x = ");
    for _ in 0..5000 {
        src.push('(');
    }
    src.push('1');
    for _ in 0..5000 {
        src.push(')');
    }
    src.push(';');
    let err = parse_source(&src).unwrap_err();
    assert!(err.message.contains("nesting deeper"), "{}", err.message);
}
