//! Tests for the 2003-era PHP constructs beyond the core subset:
//! heredocs/nowdocs, `do…while`, the alternative (`:`/`end…`) syntax,
//! and `list()` destructuring.

use php_front::ast::{Expr, LValue, Stmt, StrPart};
use php_front::{parse_source, print_program};

#[test]
fn heredoc_with_interpolation() {
    let src =
        "<?php\n$q = <<<EOT\nSELECT * FROM t WHERE sid=$sid AND n='$row[name]'\nEOT;\necho $q;\n";
    let p = parse_source(src).expect("heredoc parses");
    match &p.stmts[0] {
        Stmt::Expr(Expr::Assign { value, .. }, _) => match value.as_ref() {
            Expr::StringLit(parts) => {
                assert!(parts.contains(&StrPart::Var("sid".into())));
                assert!(parts.iter().any(|p| matches!(
                    p,
                    StrPart::ArrayVar { var, .. } if var == "row"
                )));
            }
            other => panic!("expected string, got {other:?}"),
        },
        other => panic!("unexpected {other:?}"),
    }
    assert!(matches!(p.stmts[1], Stmt::Echo(..)));
}

#[test]
fn nowdoc_has_no_interpolation() {
    let src = "<?php\n$t = <<<'RAW'\nliteral $notavar text\nRAW;\n";
    let p = parse_source(src).expect("nowdoc parses");
    match &p.stmts[0] {
        Stmt::Expr(Expr::Assign { value, .. }, _) => match value.as_ref() {
            Expr::StringLit(parts) => {
                assert_eq!(parts.len(), 1);
                assert!(matches!(&parts[0], StrPart::Lit(t) if t.contains("$notavar")));
            }
            other => panic!("expected string, got {other:?}"),
        },
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn heredoc_multiline_body_is_preserved() {
    let src = "<?php\n$m = <<<MSG\nline one\nline two\nMSG;\n";
    let p = parse_source(src).unwrap();
    match &p.stmts[0] {
        Stmt::Expr(Expr::Assign { value, .. }, _) => match value.as_ref() {
            Expr::StringLit(parts) => {
                assert!(matches!(&parts[0], StrPart::Lit(t) if t == "line one\nline two\n"));
            }
            other => panic!("expected string, got {other:?}"),
        },
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn unterminated_heredoc_errors() {
    let err = parse_source("<?php $x = <<<EOT\nno end").unwrap_err();
    assert!(err.message.contains("unterminated heredoc"));
}

#[test]
fn do_while_parses_and_prints() {
    let src = "<?php do { $i = $i + 1; } while ($i < 3);";
    let p = parse_source(src).unwrap();
    match &p.stmts[0] {
        Stmt::DoWhile { body, .. } => assert_eq!(body.len(), 1),
        other => panic!("unexpected {other:?}"),
    }
    let printed = print_program(&p);
    let reparsed = parse_source(&printed).unwrap();
    assert_eq!(p.num_statements(), reparsed.num_statements());
}

#[test]
fn alternative_if_syntax() {
    let src = "<?php if ($a): echo 1; elseif ($b): echo 2; else: echo 3; endif;";
    let p = parse_source(src).unwrap();
    match &p.stmts[0] {
        Stmt::If {
            then_branch,
            elseifs,
            else_branch,
            ..
        } => {
            assert_eq!(then_branch.len(), 1);
            assert_eq!(elseifs.len(), 1);
            assert!(else_branch.is_some());
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn alternative_loops() {
    let p = parse_source("<?php while ($c): echo 1; endwhile;").unwrap();
    assert!(matches!(p.stmts[0], Stmt::While { .. }));
    let p = parse_source("<?php for ($i = 0; $i < 3; $i++): echo $i; endfor;").unwrap();
    assert!(matches!(p.stmts[0], Stmt::For { .. }));
    let p = parse_source("<?php foreach ($rows as $r): echo $r; endforeach;").unwrap();
    assert!(matches!(p.stmts[0], Stmt::Foreach { .. }));
}

#[test]
fn alternative_if_interleaved_with_html() {
    // The classic template idiom: `if: ?>HTML<?php endif;`.
    let src = "<?php if ($show): ?><b>hello</b><?php endif;";
    let p = parse_source(src).unwrap();
    match &p.stmts[0] {
        Stmt::If { then_branch, .. } => {
            assert!(then_branch
                .iter()
                .any(|s| matches!(s, Stmt::InlineHtml(..) | Stmt::Nop(_))));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn list_destructuring() {
    let src = "<?php list($a, $b) = explode(':', $pair);";
    let p = parse_source(src).unwrap();
    match &p.stmts[0] {
        Stmt::Expr(Expr::Assign { target, .. }, _) => match target {
            LValue::List(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(target.root_vars(), vec!["a", "b"]);
                assert_eq!(target.root_var(), None);
            }
            other => panic!("expected list target, got {other:?}"),
        },
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn list_round_trips_through_printer() {
    let src = "<?php list($k, $v) = each($arr);";
    let p = parse_source(src).unwrap();
    let printed = print_program(&p);
    assert!(printed.contains("list($k, $v) ="));
    let p2 = parse_source(&printed).unwrap();
    assert_eq!(p, p2);
}

#[test]
fn unexpected_endif_is_an_error() {
    let err = parse_source("<?php if ($a): echo 1;").unwrap_err();
    assert!(err.message.contains("unexpected end of input"));
}

#[test]
fn alternative_switch_syntax() {
    let src = "<?php switch ($x): case 1: echo 1; break; default: echo 2; endswitch;";
    let p = parse_source(src).unwrap();
    match &p.stmts[0] {
        Stmt::Switch { cases, .. } => {
            assert_eq!(cases.len(), 2);
            assert!(cases[1].0.is_none());
        }
        other => panic!("unexpected {other:?}"),
    }
}
