//! Parser fixtures for the request superglobals: one example file per
//! entry point under `examples/php/`, each of which must parse into an
//! AST whose superglobal read is a literal-keyed array access.

use php_front::ast::{Expr, Stmt};
use php_front::parse_source;

fn fixture(name: &str) -> php_front::ast::Program {
    let path = format!("{}/../../examples/php/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    parse_source(&src).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

/// Every array access of `base` in the program, as `(base, literal key)`.
fn keyed_reads(program: &php_front::ast::Program) -> Vec<(String, String)> {
    fn walk_expr(e: &Expr, out: &mut Vec<(String, String)>) {
        if let Expr::ArrayAccess { base, index } = e {
            if let (Expr::Var(name), Some(i)) = (base.as_ref(), index.as_deref()) {
                if let Some(key) = i.literal_key() {
                    out.push((name.clone(), key));
                }
            }
        }
        match e {
            Expr::ArrayAccess { base, index } => {
                walk_expr(base, out);
                if let Some(i) = index {
                    walk_expr(i, out);
                }
            }
            Expr::Binary { left, right, .. } => {
                walk_expr(left, out);
                walk_expr(right, out);
            }
            Expr::Call { args, .. } => args.iter().for_each(|a| walk_expr(a, out)),
            Expr::Assign { value, .. } => walk_expr(value, out),
            _ => {}
        }
    }
    fn walk_stmt(s: &Stmt, out: &mut Vec<(String, String)>) {
        match s {
            Stmt::Expr(e, _) => walk_expr(e, out),
            Stmt::Echo(es, _) => es.iter().for_each(|e| walk_expr(e, out)),
            _ => {}
        }
    }
    let mut out = Vec::new();
    program.stmts.iter().for_each(|s| walk_stmt(s, &mut out));
    out
}

#[test]
fn get_fixture_reads_a_keyed_get_channel() {
    let reads = keyed_reads(&fixture("source_get.php"));
    assert!(reads.contains(&("_GET".into(), "sid".into())), "{reads:?}");
}

#[test]
fn post_fixture_reads_a_keyed_post_channel() {
    let reads = keyed_reads(&fixture("source_post.php"));
    assert!(
        reads.contains(&("_POST".into(), "message".into())),
        "{reads:?}"
    );
}

#[test]
fn cookie_fixture_reads_a_keyed_cookie_channel() {
    let reads = keyed_reads(&fixture("source_cookie.php"));
    assert!(
        reads.contains(&("_COOKIE".into(), "tracker".into())),
        "{reads:?}"
    );
}

#[test]
fn server_fixture_reads_a_keyed_server_channel() {
    let reads = keyed_reads(&fixture("source_server.php"));
    assert!(
        reads.contains(&("_SERVER".into(), "HTTP_USER_AGENT".into())),
        "{reads:?}"
    );
}
