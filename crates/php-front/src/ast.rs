//! Abstract syntax tree for the analyzed PHP subset.
//!
//! Statements carry the [`Span`] of their source text so downstream
//! stages (error reports, the runtime-guard instrumentor) can point back
//! at concrete lines.

use crate::span::Span;
pub use crate::token::StrPart;

/// A whole source file (after include resolution, possibly several).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Program {
    /// Top-level statements in source order.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Counts statements recursively — the paper's corpus size metric
    /// ("1,140,091 statements").
    pub fn num_statements(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| {
                    1 + match s {
                        Stmt::If {
                            then_branch,
                            elseifs,
                            else_branch,
                            ..
                        } => {
                            count(then_branch)
                                + elseifs.iter().map(|(_, b)| count(b)).sum::<usize>()
                                + else_branch.as_deref().map_or(0, count)
                        }
                        Stmt::While { body, .. }
                        | Stmt::DoWhile { body, .. }
                        | Stmt::For { body, .. }
                        | Stmt::Foreach { body, .. }
                        | Stmt::FuncDecl { body, .. } => count(body),
                        Stmt::Switch { cases, .. } => {
                            cases.iter().map(|(_, b)| count(b)).sum::<usize>()
                        }
                        Stmt::Block(body) => count(body),
                        _ => 0,
                    }
                })
                .sum()
        }
        count(&self.stmts)
    }
}

/// The kind of an `include`-family statement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IncludeKind {
    /// `include`
    Include,
    /// `include_once`
    IncludeOnce,
    /// `require`
    Require,
    /// `require_once`
    RequireOnce,
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// An expression evaluated for effect (`$x = f();`).
    Expr(Expr, Span),
    /// `echo e1, e2, …;`
    Echo(Vec<Expr>, Span),
    /// `if` with any number of `elseif` arms and an optional `else`.
    If {
        /// The `if` condition.
        cond: Expr,
        /// Statements of the `if` arm.
        then_branch: Vec<Stmt>,
        /// `(condition, body)` of each `elseif` arm.
        elseifs: Vec<(Expr, Vec<Stmt>)>,
        /// Statements of the `else` arm, if present.
        else_branch: Option<Vec<Stmt>>,
        /// Source span of the `if` keyword and condition.
        span: Span,
    },
    /// `do body while (cond);`
    DoWhile {
        /// Loop body (runs at least once).
        body: Vec<Stmt>,
        /// Loop condition, evaluated after the body.
        cond: Expr,
        /// Source span of the `do` keyword.
        span: Span,
    },
    /// `while (cond) body`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source span of the loop header.
        span: Span,
    },
    /// `for (init; cond; step) body`
    For {
        /// Initialization expressions.
        init: Vec<Expr>,
        /// Termination condition, if any.
        cond: Option<Expr>,
        /// Step expressions.
        step: Vec<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source span of the loop header.
        span: Span,
    },
    /// `foreach ($array as [$key =>] $value) body`
    Foreach {
        /// The iterated expression.
        array: Expr,
        /// Key variable, if the `$k => $v` form is used.
        key: Option<String>,
        /// Value variable name.
        value: String,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source span of the loop header.
        span: Span,
    },
    /// `switch (subject) { case c: …; default: … }`
    Switch {
        /// The switched-on expression.
        subject: Expr,
        /// `(case value, body)`; `None` value marks `default`.
        cases: Vec<(Option<Expr>, Vec<Stmt>)>,
        /// Source span of the switch header.
        span: Span,
    },
    /// `function name(params) { body }`
    FuncDecl {
        /// Function name.
        name: String,
        /// Formal parameters.
        params: Vec<Param>,
        /// Function body.
        body: Vec<Stmt>,
        /// Source span of the declaration header.
        span: Span,
    },
    /// `return e;`
    Return(Option<Expr>, Span),
    /// `include`/`require` with a path expression.
    Include {
        /// Which include-family keyword was used.
        kind: IncludeKind,
        /// The path expression (usually a string literal).
        path: Expr,
        /// Source span.
        span: Span,
    },
    /// `global $a, $b;`
    Global(Vec<String>, Span),
    /// `break;`
    Break(Span),
    /// `continue;`
    Continue(Span),
    /// `exit;` / `die(e);`
    Exit(Option<Expr>, Span),
    /// `{ … }`
    Block(Vec<Stmt>),
    /// Literal HTML between PHP regions (trusted constant output).
    InlineHtml(String, Span),
    /// An empty statement (`;`).
    Nop(Span),
}

impl Stmt {
    /// The source span of the statement (or of its header for compound
    /// statements).
    pub fn span(&self) -> Span {
        match self {
            Stmt::Expr(_, s)
            | Stmt::Echo(_, s)
            | Stmt::If { span: s, .. }
            | Stmt::While { span: s, .. }
            | Stmt::DoWhile { span: s, .. }
            | Stmt::For { span: s, .. }
            | Stmt::Foreach { span: s, .. }
            | Stmt::Switch { span: s, .. }
            | Stmt::FuncDecl { span: s, .. }
            | Stmt::Return(_, s)
            | Stmt::Include { span: s, .. }
            | Stmt::Global(_, s)
            | Stmt::Break(s)
            | Stmt::Continue(s)
            | Stmt::Exit(_, s)
            | Stmt::InlineHtml(_, s)
            | Stmt::Nop(s) => *s,
            Stmt::Block(stmts) => stmts
                .first()
                .map(|f| {
                    stmts
                        .last()
                        .map(|l| f.span().merge(l.span()))
                        .unwrap_or_else(|| f.span())
                })
                .unwrap_or_default(),
        }
    }
}

/// A formal parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Parameter name without `$`.
    pub name: String,
    /// Whether declared `&$name` (by reference).
    pub by_ref: bool,
    /// Default value, if any.
    pub default: Option<Expr>,
}

/// A compound-assignment operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
    /// `.=` — the workhorse of string-building web code.
    Concat,
}

/// A binary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // names mirror the operators
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Concat,
    Eq,
    StrictEq,
    NotEq,
    StrictNotEq,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
}

/// A unary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Not,
    Neg,
    Plus,
}

/// An assignable location.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// `$x`
    Var(String),
    /// `$x[i]` / `$x[]`
    ArrayElem {
        /// Array variable name.
        var: String,
        /// Index expression; `None` for the push form `$x[] = …`.
        index: Option<Box<Expr>>,
    },
    /// `$obj->prop` (tracked coarsely: taint lives on the whole object).
    Prop {
        /// Base expression.
        base: Box<Expr>,
        /// Property name.
        name: String,
    },
    /// `list($a, $b)` destructuring target.
    List(Vec<LValue>),
}

impl LValue {
    /// The root variable the lvalue stores into, when statically known.
    pub fn root_var(&self) -> Option<&str> {
        match self {
            LValue::Var(v) | LValue::ArrayElem { var: v, .. } => Some(v),
            LValue::Prop { base, .. } => match base.as_ref() {
                Expr::Var(v) => Some(v),
                _ => None,
            },
            LValue::List(_) => None,
        }
    }

    /// The root variables assigned by this lvalue (one for simple
    /// targets, several for `list(...)`).
    pub fn root_vars(&self) -> Vec<&str> {
        match self {
            LValue::List(items) => items.iter().flat_map(LValue::root_vars).collect(),
            other => other.root_var().into_iter().collect(),
        }
    }
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// `$x`
    Var(String),
    /// `$x[i]` — array reads are tracked at whole-variable granularity.
    ArrayAccess {
        /// The indexed expression (usually a variable).
        base: Box<Expr>,
        /// Index expression, absent for `$x[]`.
        index: Option<Box<Expr>>,
    },
    /// `$obj->prop`
    PropFetch {
        /// Base expression.
        base: Box<Expr>,
        /// Property name.
        name: String,
    },
    /// A string literal with interpolation parts.
    StringLit(Vec<StrPart>),
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// `true` / `false`
    BoolLit(bool),
    /// `null`
    NullLit,
    /// `array(k => v, …)` or `[v, …]`
    ArrayLit(Vec<(Option<Expr>, Expr)>),
    /// Binary operation, including `.` concatenation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `cond ? then : else` (and the `?:` short form).
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true; `None` for the `?:` form (condition reused).
        then: Option<Box<Expr>>,
        /// Value when false.
        otherwise: Box<Expr>,
    },
    /// A named function call: `f(args)`, `@f(args)`, `new C(args)`,
    /// `isset($x)`, `print e`, ….
    Call {
        /// Callee name (lowercased for builtins at analysis time).
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Whether the `@` error-suppression prefix was present.
        suppressed: bool,
        /// Source span of the call.
        span: Span,
    },
    /// `$obj->method(args)` — treated as an unknown callee.
    MethodCall {
        /// Receiver expression.
        base: Box<Expr>,
        /// Method name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Source span of the call.
        span: Span,
    },
    /// An assignment used as an expression (`while ($row = next())`).
    Assign {
        /// Assigned location.
        target: LValue,
        /// Plain or compound operator.
        op: AssignOp,
        /// Right-hand side.
        value: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// `$x++ / --$x` etc.; the distinction pre/post is irrelevant to
    /// information flow, so only the variable is kept.
    IncDec {
        /// The incremented lvalue.
        target: LValue,
    },
}

impl Expr {
    /// All variable names read by this expression, in syntactic order
    /// (duplicates preserved).
    pub fn read_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_read_vars(&mut out);
        out
    }

    fn collect_read_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => out.push(v.clone()),
            Expr::ArrayAccess { base, index } => {
                base.collect_read_vars(out);
                if let Some(i) = index {
                    i.collect_read_vars(out);
                }
            }
            Expr::PropFetch { base, .. } => base.collect_read_vars(out),
            Expr::StringLit(parts) => {
                for p in parts {
                    match p {
                        StrPart::Var(v) => out.push(v.clone()),
                        StrPart::ArrayVar { var, .. } => out.push(var.clone()),
                        StrPart::Lit(_) => {}
                    }
                }
            }
            Expr::ArrayLit(entries) => {
                for (k, v) in entries {
                    if let Some(k) = k {
                        k.collect_read_vars(out);
                    }
                    v.collect_read_vars(out);
                }
            }
            Expr::Binary { left, right, .. } => {
                left.collect_read_vars(out);
                right.collect_read_vars(out);
            }
            Expr::Unary { expr, .. } => expr.collect_read_vars(out),
            Expr::Ternary {
                cond,
                then,
                otherwise,
            } => {
                cond.collect_read_vars(out);
                if let Some(t) = then {
                    t.collect_read_vars(out);
                }
                otherwise.collect_read_vars(out);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_read_vars(out);
                }
            }
            Expr::MethodCall { base, args, .. } => {
                base.collect_read_vars(out);
                for a in args {
                    a.collect_read_vars(out);
                }
            }
            Expr::Assign { value, .. } => value.collect_read_vars(out),
            Expr::IncDec { target } => {
                if let Some(v) = target.root_var() {
                    out.push(v.to_owned());
                }
            }
            Expr::IntLit(_) | Expr::FloatLit(_) | Expr::BoolLit(_) | Expr::NullLit => {}
        }
    }

    /// The literal key text of an array index expression, when it is a
    /// compile-time constant — the cases where a keyed superglobal read
    /// (`$_GET['sid']`, `$argv[0]`) names one distinct request channel.
    /// Interpolated strings and computed indexes return `None`.
    pub fn literal_key(&self) -> Option<String> {
        match self {
            Expr::StringLit(parts) => {
                let mut text = String::new();
                for p in parts {
                    match p {
                        StrPart::Lit(s) => text.push_str(s),
                        StrPart::Var(_) | StrPart::ArrayVar { .. } => return None,
                    }
                }
                Some(text)
            }
            Expr::IntLit(n) => Some(n.to_string()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_vars_of_interpolated_string() {
        let e = Expr::StringLit(vec![
            StrPart::Lit("WHERE sid=".into()),
            StrPart::Var("sid".into()),
            StrPart::ArrayVar {
                var: "row".into(),
                index: "id".into(),
            },
        ]);
        assert_eq!(e.read_vars(), vec!["sid".to_owned(), "row".to_owned()]);
    }

    #[test]
    fn literal_keys_of_constant_indexes() {
        let lit = Expr::StringLit(vec![StrPart::Lit("sid".into())]);
        assert_eq!(lit.literal_key(), Some("sid".to_owned()));
        assert_eq!(Expr::IntLit(0).literal_key(), Some("0".to_owned()));
        let interpolated = Expr::StringLit(vec![StrPart::Var("k".into())]);
        assert_eq!(interpolated.literal_key(), None);
        assert_eq!(Expr::Var("k".into()).literal_key(), None);
    }

    #[test]
    fn read_vars_of_nested_expression() {
        let e = Expr::Binary {
            op: BinOp::Concat,
            left: Box::new(Expr::Var("a".into())),
            right: Box::new(Expr::Call {
                name: "f".into(),
                args: vec![Expr::Var("b".into())],
                suppressed: false,
                span: Span::default(),
            }),
        };
        assert_eq!(e.read_vars(), vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn assignment_expression_reads_only_rhs() {
        let e = Expr::Assign {
            target: LValue::Var("x".into()),
            op: AssignOp::Assign,
            value: Box::new(Expr::Var("y".into())),
            span: Span::default(),
        };
        assert_eq!(e.read_vars(), vec!["y".to_owned()]);
    }

    #[test]
    fn lvalue_root_var() {
        assert_eq!(LValue::Var("x".into()).root_var(), Some("x"));
        assert_eq!(
            LValue::ArrayElem {
                var: "a".into(),
                index: None
            }
            .root_var(),
            Some("a")
        );
        assert_eq!(
            LValue::Prop {
                base: Box::new(Expr::Var("o".into())),
                name: "p".into()
            }
            .root_var(),
            Some("o")
        );
    }

    #[test]
    fn num_statements_counts_recursively() {
        let inner = Stmt::Echo(vec![], Span::default());
        let p = Program {
            stmts: vec![
                Stmt::If {
                    cond: Expr::BoolLit(true),
                    then_branch: vec![inner.clone(), inner.clone()],
                    elseifs: vec![(Expr::BoolLit(false), vec![inner.clone()])],
                    else_branch: Some(vec![inner.clone()]),
                    span: Span::default(),
                },
                inner,
            ],
        };
        // if + 2 + 1 + 1 + trailing echo
        assert_eq!(p.num_statements(), 6);
    }

    #[test]
    fn stmt_span_of_block_merges_children() {
        let b = Stmt::Block(vec![Stmt::Nop(Span::new(2, 3)), Stmt::Nop(Span::new(7, 9))]);
        assert_eq!(b.span(), Span::new(2, 9));
        assert_eq!(Stmt::Block(vec![]).span(), Span::default());
    }
}
