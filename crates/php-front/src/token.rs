use std::fmt;

use crate::span::Span;

/// One piece of a (possibly interpolated) PHP string literal.
#[derive(Clone, Debug, PartialEq)]
pub enum StrPart {
    /// Literal text.
    Lit(String),
    /// An interpolated scalar variable, e.g. `$sid` in `"sid=$sid"`.
    Var(String),
    /// An interpolated array element, e.g. `$row[name]`.
    ArrayVar {
        /// Variable name without `$`.
        var: String,
        /// The literal index text.
        index: String,
    },
}

/// The kind (and payload) of a lexical token.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // variant names mirror PHP's lexical grammar
pub enum TokenKind {
    /// Raw HTML outside `<?php … ?>` — modeled as output of trusted text.
    InlineHtml(String),
    /// A `$name` variable; payload excludes the `$`.
    Variable(String),
    /// An identifier or keyword.
    Ident(String),
    IntLit(i64),
    FloatLit(f64),
    /// A single- or double-quoted string, already split into
    /// interpolation parts (single-quoted strings have one `Lit` part).
    StringLit(Vec<StrPart>),

    Assign,
    PlusAssign,
    MinusAssign,
    MulAssign,
    DivAssign,
    DotAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Dot,
    EqEq,
    EqEqEq,
    NotEq,
    NotEqEq,
    Lt,
    Gt,
    Le,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Question,
    Colon,
    Semicolon,
    Comma,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    At,
    Arrow,
    DoubleArrow,
    Inc,
    Dec,
    Amp,
    Eof,
}

impl TokenKind {
    /// Whether this is an `Ident` with the given (case-insensitive) text.
    pub fn is_ident(&self, text: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s.eq_ignore_ascii_case(text))
    }

    /// A short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::InlineHtml(_) => "inline HTML".to_owned(),
            TokenKind::Variable(v) => format!("variable ${v}"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::IntLit(n) => format!("integer {n}"),
            TokenKind::FloatLit(x) => format!("float {x}"),
            TokenKind::StringLit(_) => "string literal".to_owned(),
            TokenKind::Eof => "end of input".to_owned(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::Assign => "=",
            TokenKind::PlusAssign => "+=",
            TokenKind::MinusAssign => "-=",
            TokenKind::MulAssign => "*=",
            TokenKind::DivAssign => "/=",
            TokenKind::DotAssign => ".=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Dot => ".",
            TokenKind::EqEq => "==",
            TokenKind::EqEqEq => "===",
            TokenKind::NotEq => "!=",
            TokenKind::NotEqEq => "!==",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::Le => "<=",
            TokenKind::Ge => ">=",
            TokenKind::AndAnd => "&&",
            TokenKind::OrOr => "||",
            TokenKind::Not => "!",
            TokenKind::Question => "?",
            TokenKind::Colon => ":",
            TokenKind::Semicolon => ";",
            TokenKind::Comma => ",",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::At => "@",
            TokenKind::Arrow => "->",
            TokenKind::DoubleArrow => "=>",
            TokenKind::Inc => "++",
            TokenKind::Dec => "--",
            TokenKind::Amp => "&",
            _ => unreachable!("non-symbol token"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind.describe(), self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_ident_is_case_insensitive() {
        let k = TokenKind::Ident("Echo".into());
        assert!(k.is_ident("echo"));
        assert!(k.is_ident("ECHO"));
        assert!(!k.is_ident("print"));
        assert!(!TokenKind::Semicolon.is_ident("echo"));
    }

    #[test]
    fn describe_is_nonempty_for_all_kinds() {
        let kinds = vec![
            TokenKind::InlineHtml("x".into()),
            TokenKind::Variable("v".into()),
            TokenKind::Ident("f".into()),
            TokenKind::IntLit(1),
            TokenKind::FloatLit(1.5),
            TokenKind::StringLit(vec![]),
            TokenKind::Assign,
            TokenKind::DotAssign,
            TokenKind::EqEqEq,
            TokenKind::DoubleArrow,
            TokenKind::Eof,
        ];
        for k in kinds {
            assert!(!k.describe().is_empty());
        }
    }

    #[test]
    fn token_display_includes_span() {
        let t = Token::new(TokenKind::Semicolon, Span::new(3, 4));
        assert_eq!(t.to_string(), "`;` at bytes 3..4");
    }
}
