//! Lexer, parser, and AST for the PHP subset analyzed by WebSSARI.
//!
//! The paper's "code walker" (§4, Figure 8) consists of a lexer, a
//! parser, an AST maker, and a program abstractor, with include
//! resolution handled while the AST is built. This crate provides the
//! first three stages plus include resolution; the abstractor lives in
//! the `webssari-ir` crate.
//!
//! The subset covers what the information-flow analysis consumes:
//! assignments (including compound `.=`-style ones), `echo`/`print`,
//! function declarations and calls, `if`/`elseif`/`else`, `while`,
//! `for`, `foreach`, `return`, `global`, `include`/`require` (resolved
//! statically), superglobal array accesses (`$_GET['x']`), string
//! interpolation (`"WHERE sid=$sid"`), concatenation, and the usual
//! operators. Constructs outside the subset produce parse errors with
//! source locations, which the pipeline reports per file.
//!
//! # Examples
//!
//! ```
//! use php_front::{parse_source, ast::Stmt};
//!
//! let src = r#"<?php $x = $_GET['q']; echo $x;"#;
//! let program = parse_source(src)?;
//! assert_eq!(program.stmts.len(), 2);
//! assert!(matches!(program.stmts[1], Stmt::Echo { .. }));
//! # Ok::<(), php_front::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod error;
mod includes;
mod lexer;
mod parser;
mod printer;
mod span;
mod token;

pub use error::ParseError;
pub use includes::{resolve_includes, IncludeError, SourceSet};
pub use lexer::Lexer;
pub use parser::{parse_source, Parser};
pub use printer::print_program;
pub use span::{LineIndex, Span};
pub use token::{Token, TokenKind};
