use std::fmt;

use crate::span::Span;

/// A lexing or parsing failure, with the source span it points at.
///
/// # Examples
///
/// ```
/// use php_front::parse_source;
///
/// let err = parse_source("<?php if (").unwrap_err();
/// assert!(!err.message.is_empty());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
}

impl ParseError {
    /// Creates an error at a span.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_message_and_span() {
        let e = ParseError::new("unexpected token", Span::new(3, 4));
        assert_eq!(e.to_string(), "unexpected token at bytes 3..4");
    }
}
