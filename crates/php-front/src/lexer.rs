use crate::error::ParseError;
use crate::span::Span;
use crate::token::{StrPart, Token, TokenKind};

/// Tokenizes PHP source text.
///
/// The lexer starts in HTML mode, emitting [`TokenKind::InlineHtml`] for
/// text outside `<?php … ?>` regions. Inside PHP mode it produces the
/// token stream the [`Parser`](crate::Parser) consumes; a closing `?>`
/// tag is emitted as an implicit semicolon (matching PHP, where `?>`
/// terminates the current statement).
///
/// # Examples
///
/// ```
/// use php_front::{Lexer, TokenKind};
///
/// let tokens = Lexer::new("<?php echo $x; ?>").tokenize()?;
/// assert!(matches!(tokens[0].kind, TokenKind::Ident(_)));
/// assert!(matches!(tokens[1].kind, TokenKind::Variable(_)));
/// # Ok::<(), php_front::ParseError>(())
/// ```
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'a str) -> Self {
        Lexer {
            src: source,
            bytes: source.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenizes the whole input, ending with a [`TokenKind::Eof`] token.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input (unterminated string
    /// or comment, stray characters).
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut tokens = Vec::new();
        // HTML mode until the first open tag, alternating afterwards.
        loop {
            self.lex_html(&mut tokens);
            if self.at_end() {
                break;
            }
            // We are just past an open tag; lex PHP until `?>` or EOF.
            let reentered_html = self.lex_php(&mut tokens)?;
            if !reentered_html {
                break;
            }
        }
        tokens.push(Token::new(TokenKind::Eof, Span::point(self.pos as u32)));
        Ok(tokens)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> u8 {
        self.bytes.get(self.pos).copied().unwrap_or(0)
    }

    fn peek_at(&self, off: usize) -> u8 {
        self.bytes.get(self.pos + off).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn starts_with(&self, s: &str) -> bool {
        // Byte-based: `self.pos` may sit inside a multibyte character
        // while skipping comments or strings.
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    /// Consumes HTML text until an opening tag (which is also consumed)
    /// or end of input.
    fn lex_html(&mut self, tokens: &mut Vec<Token>) {
        let start = self.pos;
        let mut html_end = self.bytes.len();
        let mut open_len = 0usize;
        let mut emit_echo = false;
        let rest = &self.bytes[self.pos..];
        if let Some(i) = rest.windows(2).position(|w| w == b"<?") {
            html_end = self.pos + i;
            let after = &rest[i..];
            if after.starts_with(b"<?php") {
                open_len = 5;
            } else if after.starts_with(b"<?=") {
                open_len = 3;
                emit_echo = true;
            } else {
                open_len = 2;
            }
        }
        if html_end > start {
            tokens.push(Token::new(
                TokenKind::InlineHtml(
                    String::from_utf8_lossy(&self.bytes[start..html_end]).into_owned(),
                ),
                Span::new(start as u32, html_end as u32),
            ));
        }
        self.pos = html_end + open_len;
        if emit_echo {
            tokens.push(Token::new(
                TokenKind::Ident("echo".to_owned()),
                Span::new(html_end as u32, self.pos as u32),
            ));
        }
        if open_len == 0 {
            self.pos = self.bytes.len();
        }
    }

    /// Lexes PHP tokens until `?>` (returns `true`) or EOF (`false`).
    fn lex_php(&mut self, tokens: &mut Vec<Token>) -> Result<bool, ParseError> {
        loop {
            self.skip_whitespace_and_comments()?;
            if self.at_end() {
                return Ok(false);
            }
            if self.starts_with("?>") {
                let span = Span::new(self.pos as u32, self.pos as u32 + 2);
                self.pos += 2;
                // PHP treats `?>` as a statement terminator; skip one
                // newline directly after it, as PHP does.
                if self.peek() == b'\n' {
                    self.pos += 1;
                }
                tokens.push(Token::new(TokenKind::Semicolon, span));
                return Ok(true);
            }
            let start = self.pos;
            let b = self.peek();
            let kind = match b {
                b'$' => self.lex_variable()?,
                b'\'' => self.lex_single_quoted()?,
                b'"' => self.lex_double_quoted()?,
                b'<' if self.starts_with("<<<") => self.lex_heredoc()?,
                b'0'..=b'9' => self.lex_number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(),
                _ => self.lex_operator()?,
            };
            tokens.push(Token::new(kind, Span::new(start as u32, self.pos as u32)));
        }
    }

    fn skip_whitespace_and_comments(&mut self) -> Result<(), ParseError> {
        loop {
            while !self.at_end() && (self.peek() as char).is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.starts_with("//") || self.peek() == b'#' {
                while !self.at_end() && self.peek() != b'\n' && !self.starts_with("?>") {
                    self.pos += 1;
                }
                continue;
            }
            if self.starts_with("/*") {
                let start = self.pos;
                self.pos += 2;
                match self.bytes[self.pos..].windows(2).position(|w| w == b"*/") {
                    Some(i) => self.pos += i + 2,
                    None => {
                        return Err(ParseError::new(
                            "unterminated block comment",
                            Span::new(start as u32, self.bytes.len() as u32),
                        ))
                    }
                }
                continue;
            }
            return Ok(());
        }
    }

    fn lex_variable(&mut self) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        self.bump(); // $
        let name = self.take_ident_text();
        if name.is_empty() {
            return Err(ParseError::new(
                "expected variable name after `$`",
                Span::new(start as u32, self.pos as u32),
            ));
        }
        Ok(TokenKind::Variable(name))
    }

    fn take_ident_text(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.pos += 1;
        }
        self.src[start..self.pos].to_owned()
    }

    fn lex_ident(&mut self) -> TokenKind {
        TokenKind::Ident(self.take_ident_text())
    }

    fn lex_number(&mut self) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        if self.starts_with("0x") || self.starts_with("0X") {
            self.pos += 2;
            while self.peek().is_ascii_hexdigit() {
                self.pos += 1;
            }
            let text = &self.src[start + 2..self.pos];
            let value = i64::from_str_radix(text, 16).map_err(|_| {
                ParseError::new(
                    "invalid hexadecimal literal",
                    Span::new(start as u32, self.pos as u32),
                )
            })?;
            return Ok(TokenKind::IntLit(value));
        }
        while self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == b'.' && self.peek_at(1).is_ascii_digit() {
            is_float = true;
            self.pos += 1;
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), b'e' | b'E')
            && (self.peek_at(1).is_ascii_digit()
                || (matches!(self.peek_at(1), b'+' | b'-') && self.peek_at(2).is_ascii_digit()))
        {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), b'+' | b'-') {
                self.pos += 1;
            }
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            let value: f64 = text.parse().map_err(|_| {
                ParseError::new(
                    "invalid float literal",
                    Span::new(start as u32, self.pos as u32),
                )
            })?;
            Ok(TokenKind::FloatLit(value))
        } else {
            let value: i64 = text.parse().map_err(|_| {
                ParseError::new(
                    "integer literal out of range",
                    Span::new(start as u32, self.pos as u32),
                )
            })?;
            Ok(TokenKind::IntLit(value))
        }
    }

    fn lex_single_quoted(&mut self) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        self.bump(); // '
        let mut text = String::new();
        loop {
            if self.at_end() {
                return Err(ParseError::new(
                    "unterminated string literal",
                    Span::new(start as u32, self.pos as u32),
                ));
            }
            match self.bump() {
                b'\'' => break,
                b'\\' => match self.bump() {
                    b'\'' => text.push('\''),
                    b'\\' => text.push('\\'),
                    other => {
                        // PHP keeps unknown escapes verbatim in
                        // single-quoted strings.
                        text.push('\\');
                        text.push(other as char);
                    }
                },
                other => text.push(other as char),
            }
        }
        Ok(TokenKind::StringLit(vec![StrPart::Lit(text)]))
    }

    fn lex_double_quoted(&mut self) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        self.bump(); // "
        let mut parts: Vec<StrPart> = Vec::new();
        let mut text = String::new();
        let flush = |text: &mut String, parts: &mut Vec<StrPart>| {
            if !text.is_empty() {
                parts.push(StrPart::Lit(std::mem::take(text)));
            }
        };
        loop {
            if self.at_end() {
                return Err(ParseError::new(
                    "unterminated string literal",
                    Span::new(start as u32, self.pos as u32),
                ));
            }
            match self.peek() {
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.bump();
                    match esc {
                        b'n' => text.push('\n'),
                        b't' => text.push('\t'),
                        b'r' => text.push('\r'),
                        b'"' => text.push('"'),
                        b'\\' => text.push('\\'),
                        b'$' => text.push('$'),
                        b'0' => text.push('\0'),
                        other => {
                            text.push('\\');
                            text.push(other as char);
                        }
                    }
                }
                b'$' if matches!(self.peek_at(1), b'a'..=b'z' | b'A'..=b'Z' | b'_') => {
                    flush(&mut text, &mut parts);
                    self.pos += 1;
                    let name = self.take_ident_text();
                    // Simple `$arr[index]` interpolation.
                    if self.peek() == b'[' {
                        let save = self.pos;
                        self.pos += 1;
                        let idx_start = self.pos;
                        while !self.at_end() && self.peek() != b']' && self.peek() != b'"' {
                            self.pos += 1;
                        }
                        if self.peek() == b']' {
                            let index = self.src[idx_start..self.pos].trim_matches('\'').to_owned();
                            self.pos += 1;
                            parts.push(StrPart::ArrayVar { var: name, index });
                            continue;
                        }
                        self.pos = save;
                    }
                    parts.push(StrPart::Var(name));
                }
                b'$' if self.peek_at(1) == b'{' => {
                    // `${name}` interpolation.
                    flush(&mut text, &mut parts);
                    self.pos += 2;
                    let name = self.take_ident_text();
                    if self.peek() == b'}' {
                        self.pos += 1;
                    }
                    parts.push(StrPart::Var(name));
                }
                b'{' if self.peek_at(1) == b'$' => {
                    // `{$name}` or `{$arr['k']}` interpolation.
                    flush(&mut text, &mut parts);
                    self.pos += 2;
                    let name = self.take_ident_text();
                    if self.peek() == b'[' {
                        self.pos += 1;
                        let idx_start = self.pos;
                        while !self.at_end() && self.peek() != b']' {
                            self.pos += 1;
                        }
                        let index = self.src[idx_start..self.pos].trim_matches('\'').to_owned();
                        if self.peek() == b']' {
                            self.pos += 1;
                        }
                        parts.push(StrPart::ArrayVar { var: name, index });
                    } else {
                        parts.push(StrPart::Var(name));
                    }
                    if self.peek() == b'}' {
                        self.pos += 1;
                    }
                }
                other => {
                    text.push(other as char);
                    self.pos += 1;
                }
            }
        }
        if !text.is_empty() {
            parts.push(StrPart::Lit(text));
        }
        Ok(TokenKind::StringLit(parts))
    }

    /// Heredoc strings: `<<<EOT … EOT;` (interpolating) and the
    /// single-quoted nowdoc form `<<<'EOT'` (literal).
    fn lex_heredoc(&mut self) -> Result<TokenKind, ParseError> {
        let start = self.pos;
        self.pos += 3; // <<<
        let nowdoc = self.peek() == b'\'';
        if nowdoc {
            self.pos += 1;
        }
        let tag = self.take_ident_text();
        if tag.is_empty() {
            return Err(ParseError::new(
                "expected heredoc identifier after `<<<`",
                Span::new(start as u32, self.pos as u32),
            ));
        }
        if nowdoc {
            if self.peek() != b'\'' {
                return Err(ParseError::new(
                    "unterminated nowdoc identifier quote",
                    Span::new(start as u32, self.pos as u32),
                ));
            }
            self.pos += 1;
        }
        // Skip to end of the opener line.
        while !self.at_end() && self.peek() != b'\n' {
            self.pos += 1;
        }
        if !self.at_end() {
            self.pos += 1;
        }
        // Collect body lines until a line that starts with the tag.
        let mut body = String::new();
        loop {
            if self.at_end() {
                return Err(ParseError::new(
                    format!("unterminated heredoc (expected closing {tag})"),
                    Span::new(start as u32, self.pos as u32),
                ));
            }
            let line_start = self.pos;
            while !self.at_end() && self.peek() != b'\n' {
                self.pos += 1;
            }
            let line = &self.src[line_start..self.pos];
            if !self.at_end() {
                self.pos += 1; // newline
            }
            let trimmed = line.trim_start();
            if let Some(rest) = trimmed.strip_prefix(tag.as_str()) {
                if rest.is_empty() || rest == ";" {
                    if rest == ";" {
                        // Rewind onto the `;` so it is lexed as the
                        // statement terminator.
                        self.pos = line_start + line.len() - 1;
                    }
                    break;
                }
            }
            body.push_str(line);
            body.push('\n');
        }
        if nowdoc {
            return Ok(TokenKind::StringLit(vec![StrPart::Lit(body)]));
        }
        Ok(TokenKind::StringLit(Self::interpolate_text(&body)))
    }

    /// Splits heredoc/double-quote-style text into interpolation parts
    /// (`$var`, `$arr[key]`, `{$var}`).
    fn interpolate_text(text: &str) -> Vec<StrPart> {
        let bytes = text.as_bytes();
        let mut parts = Vec::new();
        let mut lit = String::new();
        let mut i = 0usize;
        let ident_start = |b: u8| matches!(b, b'a'..=b'z' | b'A'..=b'Z' | b'_');
        let ident_char = |b: u8| matches!(b, b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_');
        let take_ident = |bytes: &[u8], mut j: usize| -> (String, usize) {
            let s = j;
            while j < bytes.len() && ident_char(bytes[j]) {
                j += 1;
            }
            (String::from_utf8_lossy(&bytes[s..j]).into_owned(), j)
        };
        while i < bytes.len() {
            let b = bytes[i];
            if b == b'\\' && i + 1 < bytes.len() {
                match bytes[i + 1] {
                    b'n' => lit.push('\n'),
                    b't' => lit.push('\t'),
                    b'$' => lit.push('$'),
                    b'\\' => lit.push('\\'),
                    other => {
                        lit.push('\\');
                        lit.push(other as char);
                    }
                }
                i += 2;
                continue;
            }
            if b == b'$' && i + 1 < bytes.len() && ident_start(bytes[i + 1]) {
                if !lit.is_empty() {
                    parts.push(StrPart::Lit(std::mem::take(&mut lit)));
                }
                let (name, j) = take_ident(bytes, i + 1);
                i = j;
                if i < bytes.len() && bytes[i] == b'[' {
                    if let Some(close) = text[i..].find(']') {
                        let index = text[i + 1..i + close].trim_matches('\'').to_owned();
                        parts.push(StrPart::ArrayVar { var: name, index });
                        i += close + 1;
                        continue;
                    }
                }
                parts.push(StrPart::Var(name));
                continue;
            }
            if b == b'{' && i + 1 < bytes.len() && bytes[i + 1] == b'$' {
                if !lit.is_empty() {
                    parts.push(StrPart::Lit(std::mem::take(&mut lit)));
                }
                let (name, j) = take_ident(bytes, i + 2);
                i = j;
                if let Some(close) = text[i..].find('}') {
                    i += close + 1;
                }
                parts.push(StrPart::Var(name));
                continue;
            }
            lit.push(b as char);
            i += 1;
        }
        if !lit.is_empty() {
            parts.push(StrPart::Lit(lit));
        }
        parts
    }

    fn lex_operator(&mut self) -> Result<TokenKind, ParseError> {
        // Longest match first.
        const TABLE: &[(&str, TokenKind)] = &[
            ("===", TokenKind::EqEqEq),
            ("!==", TokenKind::NotEqEq),
            ("<>", TokenKind::NotEq),
            ("==", TokenKind::EqEq),
            ("!=", TokenKind::NotEq),
            ("<=", TokenKind::Le),
            (">=", TokenKind::Ge),
            ("&&", TokenKind::AndAnd),
            ("||", TokenKind::OrOr),
            ("++", TokenKind::Inc),
            ("--", TokenKind::Dec),
            ("+=", TokenKind::PlusAssign),
            ("-=", TokenKind::MinusAssign),
            ("*=", TokenKind::MulAssign),
            ("/=", TokenKind::DivAssign),
            (".=", TokenKind::DotAssign),
            ("=>", TokenKind::DoubleArrow),
            ("->", TokenKind::Arrow),
            ("=", TokenKind::Assign),
            ("+", TokenKind::Plus),
            ("-", TokenKind::Minus),
            ("*", TokenKind::Star),
            ("/", TokenKind::Slash),
            ("%", TokenKind::Percent),
            (".", TokenKind::Dot),
            ("<", TokenKind::Lt),
            (">", TokenKind::Gt),
            ("!", TokenKind::Not),
            ("?", TokenKind::Question),
            (":", TokenKind::Colon),
            (";", TokenKind::Semicolon),
            (",", TokenKind::Comma),
            ("(", TokenKind::LParen),
            (")", TokenKind::RParen),
            ("{", TokenKind::LBrace),
            ("}", TokenKind::RBrace),
            ("[", TokenKind::LBracket),
            ("]", TokenKind::RBracket),
            ("@", TokenKind::At),
            ("&", TokenKind::Amp),
        ];
        for (text, kind) in TABLE {
            if self.starts_with(text) {
                self.pos += text.len();
                return Ok(kind.clone());
            }
        }
        Err(ParseError::new(
            format!("unexpected character `{}`", self.peek() as char),
            Span::new(self.pos as u32, self.pos as u32 + 1),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .expect("lex ok")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn html_only_input() {
        let ks = kinds("<html><body>hi</body></html>");
        assert_eq!(ks.len(), 2);
        assert!(matches!(&ks[0], TokenKind::InlineHtml(h) if h.contains("hi")));
        assert_eq!(ks[1], TokenKind::Eof);
    }

    #[test]
    fn php_basic_tokens() {
        let ks = kinds("<?php $x = 42; ?>");
        assert_eq!(
            ks,
            vec![
                TokenKind::Variable("x".into()),
                TokenKind::Assign,
                TokenKind::IntLit(42),
                TokenKind::Semicolon,
                TokenKind::Semicolon, // from ?>
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn html_php_html_alternation() {
        let ks = kinds("<p><?php echo 1; ?></p>");
        assert!(matches!(&ks[0], TokenKind::InlineHtml(_)));
        assert!(ks.iter().any(|k| k.is_ident("echo")));
        assert!(matches!(ks[ks.len() - 2], TokenKind::InlineHtml(_)));
    }

    #[test]
    fn echo_shorthand_tag() {
        let ks = kinds("<?= $x ?>");
        assert!(ks[0].is_ident("echo"));
        assert_eq!(ks[1], TokenKind::Variable("x".into()));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("<?php // line\n# hash\n/* block\nstill */ $x;");
        assert_eq!(ks[0], TokenKind::Variable("x".into()));
    }

    #[test]
    fn unterminated_block_comment_errors() {
        let err = Lexer::new("<?php /* oops").tokenize().unwrap_err();
        assert!(err.message.contains("unterminated block comment"));
    }

    #[test]
    fn single_quoted_string_has_no_interpolation() {
        let ks = kinds(r#"<?php $q = 'sid=$sid';"#);
        match &ks[2] {
            TokenKind::StringLit(parts) => {
                assert_eq!(parts, &vec![StrPart::Lit("sid=$sid".into())]);
            }
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn double_quoted_string_interpolates_variables() {
        let ks = kinds(r#"<?php $q = "SELECT * FROM g WHERE sid=$sid";"#);
        match &ks[2] {
            TokenKind::StringLit(parts) => {
                assert_eq!(
                    parts,
                    &vec![
                        StrPart::Lit("SELECT * FROM g WHERE sid=".into()),
                        StrPart::Var("sid".into()),
                    ]
                );
            }
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn braced_and_array_interpolation() {
        let ks = kinds(r#"<?php $q = "a{$x}b${y}c$row[name]d";"#);
        match &ks[2] {
            TokenKind::StringLit(parts) => {
                assert_eq!(
                    parts,
                    &vec![
                        StrPart::Lit("a".into()),
                        StrPart::Var("x".into()),
                        StrPart::Lit("b".into()),
                        StrPart::Var("y".into()),
                        StrPart::Lit("c".into()),
                        StrPart::ArrayVar {
                            var: "row".into(),
                            index: "name".into()
                        },
                        StrPart::Lit("d".into()),
                    ]
                );
            }
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn escapes_in_double_quoted_strings() {
        let ks = kinds(r#"<?php $s = "a\n\t\"\$b";"#);
        match &ks[2] {
            TokenKind::StringLit(parts) => {
                assert_eq!(parts, &vec![StrPart::Lit("a\n\t\"$b".into())]);
            }
            other => panic!("expected string, got {other:?}"),
        }
    }

    #[test]
    fn unterminated_string_errors() {
        let err = Lexer::new("<?php $x = \"abc").tokenize().unwrap_err();
        assert!(err.message.contains("unterminated string"));
    }

    #[test]
    fn numbers_int_float_hex() {
        let ks = kinds("<?php 1 23 4.5 1e3 2.5e-1 0xFF;");
        assert_eq!(ks[0], TokenKind::IntLit(1));
        assert_eq!(ks[1], TokenKind::IntLit(23));
        assert_eq!(ks[2], TokenKind::FloatLit(4.5));
        assert_eq!(ks[3], TokenKind::FloatLit(1000.0));
        assert_eq!(ks[4], TokenKind::FloatLit(0.25));
        assert_eq!(ks[5], TokenKind::IntLit(255));
    }

    #[test]
    fn operators_longest_match() {
        let ks = kinds("<?php === == = != !== <= < .= . -> =>;");
        assert_eq!(
            &ks[..10],
            &[
                TokenKind::EqEqEq,
                TokenKind::EqEq,
                TokenKind::Assign,
                TokenKind::NotEq,
                TokenKind::NotEqEq,
                TokenKind::Le,
                TokenKind::Lt,
                TokenKind::DotAssign,
                TokenKind::Dot,
                TokenKind::Arrow,
            ]
        );
    }

    #[test]
    fn variable_requires_name() {
        let err = Lexer::new("<?php $ = 3;").tokenize().unwrap_err();
        assert!(err.message.contains("variable name"));
    }

    #[test]
    fn stray_character_errors() {
        let err = Lexer::new("<?php ^;").tokenize().unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn spans_are_accurate() {
        let src = "<?php $abc;";
        let tokens = Lexer::new(src).tokenize().unwrap();
        assert_eq!(tokens[0].span.slice(src), "$abc");
        assert_eq!(tokens[1].span.slice(src), ";");
    }

    #[test]
    fn superglobal_tokens() {
        let ks = kinds("<?php $_GET['sid'];");
        assert_eq!(ks[0], TokenKind::Variable("_GET".into()));
        assert_eq!(ks[1], TokenKind::LBracket);
        assert!(
            matches!(&ks[2], TokenKind::StringLit(p) if p == &vec![StrPart::Lit("sid".into())])
        );
    }

    #[test]
    fn hash_comment_stops_at_close_tag() {
        let ks = kinds("<?php # note ?>after");
        // The close tag terminates the comment and PHP mode.
        assert!(matches!(&ks[1], TokenKind::InlineHtml(h) if h == "after"));
    }
}
