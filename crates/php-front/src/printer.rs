//! Pretty-printer from AST back to PHP source.
//!
//! Used for debugging, corpus inspection, and the parse→print→parse
//! round-trip property tests. The output is canonical PHP (always-braced
//! bodies, double-quoted strings) rather than a byte-exact echo of the
//! input.

use std::fmt::Write as _;

use crate::ast::{AssignOp, BinOp, Expr, IncludeKind, LValue, Program, Stmt, StrPart, UnOp};

/// Renders a program as PHP source.
///
/// # Examples
///
/// ```
/// use php_front::{parse_source, print_program};
///
/// let p = parse_source("<?php $x = 1 + 2;")?;
/// let src = print_program(&p);
/// assert!(src.contains("$x = (1 + 2);"));
/// // Round trip: printing then parsing yields the same AST.
/// assert_eq!(parse_source(&src)?.stmts.len(), p.stmts.len());
/// # Ok::<(), php_front::ParseError>(())
/// ```
pub fn print_program(program: &Program) -> String {
    let mut out = String::from("<?php\n");
    for s in &program.stmts {
        print_stmt(&mut out, s, 0);
    }
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_body(out: &mut String, body: &[Stmt], depth: usize) {
    out.push_str(" {\n");
    for s in body {
        print_stmt(out, s, depth + 1);
    }
    indent(out, depth);
    out.push('}');
}

fn print_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    indent(out, depth);
    match stmt {
        Stmt::Expr(e, _) => {
            print_expr(out, e);
            out.push_str(";\n");
        }
        Stmt::Echo(args, _) => {
            out.push_str("echo ");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(out, a);
            }
            out.push_str(";\n");
        }
        Stmt::If {
            cond,
            then_branch,
            elseifs,
            else_branch,
            ..
        } => {
            out.push_str("if (");
            print_expr(out, cond);
            out.push(')');
            print_body(out, then_branch, depth);
            for (c, b) in elseifs {
                out.push_str(" elseif (");
                print_expr(out, c);
                out.push(')');
                print_body(out, b, depth);
            }
            if let Some(b) = else_branch {
                out.push_str(" else");
                print_body(out, b, depth);
            }
            out.push('\n');
        }
        Stmt::While { cond, body, .. } => {
            out.push_str("while (");
            print_expr(out, cond);
            out.push(')');
            print_body(out, body, depth);
            out.push('\n');
        }
        Stmt::DoWhile { body, cond, .. } => {
            out.push_str("do");
            print_body(out, body, depth);
            out.push_str(" while (");
            print_expr(out, cond);
            out.push_str(");\n");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
            ..
        } => {
            out.push_str("for (");
            for (i, e) in init.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(out, e);
            }
            out.push_str("; ");
            if let Some(c) = cond {
                print_expr(out, c);
            }
            out.push_str("; ");
            for (i, e) in step.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(out, e);
            }
            out.push(')');
            print_body(out, body, depth);
            out.push('\n');
        }
        Stmt::Foreach {
            array,
            key,
            value,
            body,
            ..
        } => {
            out.push_str("foreach (");
            print_expr(out, array);
            out.push_str(" as ");
            if let Some(k) = key {
                let _ = write!(out, "${k} => ");
            }
            let _ = write!(out, "${value})");
            print_body(out, body, depth);
            out.push('\n');
        }
        Stmt::Switch { subject, cases, .. } => {
            out.push_str("switch (");
            print_expr(out, subject);
            out.push_str(") {\n");
            for (label, body) in cases {
                indent(out, depth + 1);
                match label {
                    Some(v) => {
                        out.push_str("case ");
                        print_expr(out, v);
                        out.push_str(":\n");
                    }
                    None => out.push_str("default:\n"),
                }
                for s in body {
                    print_stmt(out, s, depth + 2);
                }
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::FuncDecl {
            name, params, body, ..
        } => {
            let _ = write!(out, "function {name}(");
            for (i, p) in params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                if p.by_ref {
                    out.push('&');
                }
                let _ = write!(out, "${}", p.name);
                if let Some(d) = &p.default {
                    out.push_str(" = ");
                    print_expr(out, d);
                }
            }
            out.push(')');
            print_body(out, body, depth);
            out.push('\n');
        }
        Stmt::Return(v, _) => {
            out.push_str("return");
            if let Some(v) = v {
                out.push(' ');
                print_expr(out, v);
            }
            out.push_str(";\n");
        }
        Stmt::Include { kind, path, .. } => {
            let kw = match kind {
                IncludeKind::Include => "include",
                IncludeKind::IncludeOnce => "include_once",
                IncludeKind::Require => "require",
                IncludeKind::RequireOnce => "require_once",
            };
            let _ = write!(out, "{kw} ");
            print_expr(out, path);
            out.push_str(";\n");
        }
        Stmt::Global(names, _) => {
            out.push_str("global ");
            for (i, n) in names.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "${n}");
            }
            out.push_str(";\n");
        }
        Stmt::Break(_) => out.push_str("break;\n"),
        Stmt::Continue(_) => out.push_str("continue;\n"),
        Stmt::Exit(v, _) => {
            out.push_str("exit");
            if let Some(v) = v {
                out.push('(');
                print_expr(out, v);
                out.push(')');
            }
            out.push_str(";\n");
        }
        Stmt::Block(body) => {
            out.push('{');
            out.push('\n');
            for s in body {
                print_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::InlineHtml(h, _) => {
            let _ = writeln!(out, "echo \"{}\";", escape(h));
        }
        Stmt::Nop(_) => out.push_str(";\n"),
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '$' => vec!['\\', '$'],
            '\n' => vec!['\\', 'n'],
            other => vec![other],
        })
        .collect()
}

fn print_lvalue(out: &mut String, lv: &LValue) {
    match lv {
        LValue::Var(v) => {
            let _ = write!(out, "${v}");
        }
        LValue::ArrayElem { var, index } => {
            let _ = write!(out, "${var}[");
            if let Some(i) = index {
                print_expr(out, i);
            }
            out.push(']');
        }
        LValue::Prop { base, name } => {
            print_expr(out, base);
            let _ = write!(out, "->{name}");
        }
        LValue::List(items) => {
            out.push_str("list(");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_lvalue(out, item);
            }
            out.push(')');
        }
    }
}

fn bin_op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Concat => ".",
        BinOp::Eq => "==",
        BinOp::StrictEq => "===",
        BinOp::NotEq => "!=",
        BinOp::StrictNotEq => "!==",
        BinOp::Lt => "<",
        BinOp::Gt => ">",
        BinOp::Le => "<=",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn print_expr(out: &mut String, e: &Expr) {
    match e {
        Expr::Var(v) => {
            let _ = write!(out, "${v}");
        }
        Expr::ArrayAccess { base, index } => {
            print_expr(out, base);
            out.push('[');
            if let Some(i) = index {
                print_expr(out, i);
            }
            out.push(']');
        }
        Expr::PropFetch { base, name } => {
            print_expr(out, base);
            let _ = write!(out, "->{name}");
        }
        Expr::StringLit(parts) => {
            out.push('"');
            for p in parts {
                match p {
                    StrPart::Lit(t) => out.push_str(&escape(t)),
                    StrPart::Var(v) => {
                        let _ = write!(out, "{{${v}}}");
                    }
                    StrPart::ArrayVar { var, index } => {
                        let _ = write!(out, "{{${var}['{index}']}}");
                    }
                }
            }
            out.push('"');
        }
        Expr::IntLit(n) => {
            let _ = write!(out, "{n}");
        }
        Expr::FloatLit(x) => {
            let _ = write!(out, "{x:?}");
        }
        Expr::BoolLit(b) => out.push_str(if *b { "true" } else { "false" }),
        Expr::NullLit => out.push_str("null"),
        Expr::ArrayLit(entries) => {
            out.push_str("array(");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                if let Some(k) = k {
                    print_expr(out, k);
                    out.push_str(" => ");
                }
                print_expr(out, v);
            }
            out.push(')');
        }
        Expr::Binary { op, left, right } => {
            out.push('(');
            print_expr(out, left);
            let _ = write!(out, " {} ", bin_op_str(*op));
            print_expr(out, right);
            out.push(')');
        }
        Expr::Unary { op, expr } => {
            out.push_str(match op {
                UnOp::Not => "!",
                UnOp::Neg => "-",
                UnOp::Plus => "+",
            });
            out.push('(');
            print_expr(out, expr);
            out.push(')');
        }
        Expr::Ternary {
            cond,
            then,
            otherwise,
        } => {
            out.push('(');
            print_expr(out, cond);
            match then {
                Some(t) => {
                    out.push_str(" ? ");
                    print_expr(out, t);
                    out.push_str(" : ");
                }
                None => out.push_str(" ?: "),
            }
            print_expr(out, otherwise);
            out.push(')');
        }
        Expr::Call {
            name,
            args,
            suppressed,
            ..
        } => {
            if *suppressed {
                out.push('@');
            }
            if name == "print" {
                out.push_str("print ");
                print_expr(out, &args[0]);
                return;
            }
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(out, a);
            }
            out.push(')');
        }
        Expr::MethodCall {
            base, name, args, ..
        } => {
            print_expr(out, base);
            let _ = write!(out, "->{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(out, a);
            }
            out.push(')');
        }
        Expr::Assign {
            target, op, value, ..
        } => {
            print_lvalue(out, target);
            out.push_str(match op {
                AssignOp::Assign => " = ",
                AssignOp::Add => " += ",
                AssignOp::Sub => " -= ",
                AssignOp::Mul => " *= ",
                AssignOp::Div => " /= ",
                AssignOp::Concat => " .= ",
            });
            print_expr(out, value);
        }
        Expr::IncDec { target } => {
            print_lvalue(out, target);
            out.push_str("++");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_source;

    fn round_trip(src: &str) {
        let p1 = parse_source(src).expect("first parse");
        let printed = print_program(&p1);
        let p2 = parse_source(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted:\n{printed}"));
        // Statement shapes must survive; exact spans won't.
        assert_eq!(
            p1.num_statements(),
            p2.num_statements(),
            "printed:\n{printed}"
        );
    }

    #[test]
    fn round_trips_basic_constructs() {
        round_trip("<?php $x = 1; echo $x;");
        round_trip("<?php if ($a) { echo 1; } else { echo 2; }");
        round_trip("<?php while ($r = f($x)) { echo $r; }");
        round_trip("<?php for ($i = 0; $i < 3; $i++) echo $i;");
        round_trip("<?php foreach ($rows as $k => $v) echo $v;");
        round_trip("<?php function g($a, &$b) { return $a . $b; }");
        round_trip("<?php $q = \"WHERE sid=$sid\"; DoSQL($q);");
        round_trip("<?php switch ($x) { case 1: echo 1; break; default: echo 2; }");
        round_trip("<?php global $db; include 'x.php'; exit('done');");
        round_trip("<?php $a = array(1, 'k' => $v); $o->m($a); $p = $o->f;");
    }

    #[test]
    fn string_interpolation_survives() {
        let p = parse_source("<?php $q = \"id=$id and n=$row[name]\";").unwrap();
        let printed = print_program(&p);
        let p2 = parse_source(&printed).unwrap();
        assert_eq!(p.stmts.len(), p2.stmts.len());
        // The interpolated variables must still be read.
        match (&p.stmts[0], &p2.stmts[0]) {
            (Stmt::Expr(e1, _), Stmt::Expr(e2, _)) => {
                assert_eq!(e1.read_vars(), e2.read_vars());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inline_html_becomes_echo() {
        let p = parse_source("<html><?php echo 1; ?></html>").unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("echo \"<html>\""));
    }
}
