//! Static include resolution.
//!
//! The paper's AST maker "handl[es] external file inclusions along the
//! way" (§4). [`resolve_includes`] takes a [`SourceSet`] of file name →
//! source text, parses the entry file, and splices the parsed bodies of
//! `include`/`require` statements in place, recursively. `*_once`
//! variants are spliced only on first inclusion; cycles through plain
//! `include` are detected and reported.

use std::collections::{BTreeMap, HashSet};

use crate::ast::{Expr, IncludeKind, Program, Stmt, StrPart};
use crate::error::ParseError;
use crate::parser::parse_source;

/// An in-memory set of PHP source files for one project.
///
/// # Examples
///
/// ```
/// use php_front::{resolve_includes, SourceSet};
///
/// let mut set = SourceSet::new();
/// set.add_file("lib.php", "<?php $safe = 1;");
/// set.add_file("index.php", "<?php include 'lib.php'; echo $safe;");
/// let program = resolve_includes(&set, "index.php")?;
/// assert_eq!(program.stmts.len(), 2);
/// # Ok::<(), php_front::IncludeError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct SourceSet {
    files: BTreeMap<String, String>,
}

impl SourceSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SourceSet::default()
    }

    /// Adds (or replaces) a file.
    pub fn add_file(&mut self, name: impl Into<String>, source: impl Into<String>) {
        self.files.insert(name.into(), source.into());
    }

    /// Looks up a file's source.
    pub fn file(&self, name: &str) -> Option<&str> {
        self.files.get(name).map(String::as_str)
    }

    /// Iterates over `(name, source)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.files.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the set has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

impl FromIterator<(String, String)> for SourceSet {
    fn from_iter<I: IntoIterator<Item = (String, String)>>(iter: I) -> Self {
        SourceSet {
            files: iter.into_iter().collect(),
        }
    }
}

/// Errors from include resolution.
#[derive(Clone, Debug, PartialEq)]
pub enum IncludeError {
    /// The entry (or an included) file is not in the set.
    MissingFile {
        /// The missing file's name.
        name: String,
        /// The file that included it, if any.
        included_from: Option<String>,
    },
    /// A file (transitively) includes itself via non-`_once` includes.
    IncludeCycle(Vec<String>),
    /// A file failed to parse.
    Parse {
        /// The failing file.
        file: String,
        /// The underlying parse error.
        error: ParseError,
    },
    /// An include path is not a constant string, so it cannot be
    /// resolved statically.
    DynamicIncludePath {
        /// The file containing the dynamic include.
        file: String,
    },
}

impl std::fmt::Display for IncludeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncludeError::MissingFile {
                name,
                included_from,
            } => match included_from {
                Some(from) => write!(f, "included file {name:?} (from {from:?}) not found"),
                None => write!(f, "entry file {name:?} not found"),
            },
            IncludeError::IncludeCycle(chain) => {
                write!(f, "include cycle: {}", chain.join(" -> "))
            }
            IncludeError::Parse { file, error } => write!(f, "parse error in {file:?}: {error}"),
            IncludeError::DynamicIncludePath { file } => {
                write!(
                    f,
                    "dynamic include path in {file:?} cannot be resolved statically"
                )
            }
        }
    }
}

impl std::error::Error for IncludeError {}

/// Parses `entry` and splices included files' statements in place.
///
/// # Errors
///
/// See [`IncludeError`].
pub fn resolve_includes(set: &SourceSet, entry: &str) -> Result<Program, IncludeError> {
    let mut resolver = Resolver {
        set,
        once_done: HashSet::new(),
        stack: Vec::new(),
    };
    let stmts = resolver.resolve_file(entry, None)?;
    Ok(Program { stmts })
}

struct Resolver<'a> {
    set: &'a SourceSet,
    once_done: HashSet<String>,
    stack: Vec<String>,
}

impl Resolver<'_> {
    fn resolve_file(
        &mut self,
        name: &str,
        included_from: Option<&str>,
    ) -> Result<Vec<Stmt>, IncludeError> {
        let source = self
            .set
            .file(name)
            .ok_or_else(|| IncludeError::MissingFile {
                name: name.to_owned(),
                included_from: included_from.map(str::to_owned),
            })?;
        if self.stack.iter().any(|f| f == name) {
            let mut chain = self.stack.clone();
            chain.push(name.to_owned());
            return Err(IncludeError::IncludeCycle(chain));
        }
        let program = parse_source(source).map_err(|error| IncludeError::Parse {
            file: name.to_owned(),
            error,
        })?;
        self.stack.push(name.to_owned());
        let out = self.resolve_stmts(program.stmts, name);
        self.stack.pop();
        out
    }

    fn resolve_stmts(&mut self, stmts: Vec<Stmt>, file: &str) -> Result<Vec<Stmt>, IncludeError> {
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            match stmt {
                Stmt::Include { kind, path, span } => {
                    let target = match const_string(&path) {
                        Some(t) => t,
                        None => {
                            return Err(IncludeError::DynamicIncludePath {
                                file: file.to_owned(),
                            })
                        }
                    };
                    let once = matches!(kind, IncludeKind::IncludeOnce | IncludeKind::RequireOnce);
                    // PHP marks a file as included as soon as it starts
                    // executing, so an `_once` include of a file that is
                    // currently being processed is a no-op.
                    if once
                        && (self.once_done.contains(&target)
                            || self.stack.iter().any(|f| f == &target))
                    {
                        out.push(Stmt::Nop(span));
                        continue;
                    }
                    if once {
                        self.once_done.insert(target.clone());
                    }
                    out.extend(self.resolve_file(&target, Some(file))?);
                }
                Stmt::If {
                    cond,
                    then_branch,
                    elseifs,
                    else_branch,
                    span,
                } => out.push(Stmt::If {
                    cond,
                    then_branch: self.resolve_stmts(then_branch, file)?,
                    elseifs: elseifs
                        .into_iter()
                        .map(|(c, b)| Ok((c, self.resolve_stmts(b, file)?)))
                        .collect::<Result<_, IncludeError>>()?,
                    else_branch: match else_branch {
                        Some(b) => Some(self.resolve_stmts(b, file)?),
                        None => None,
                    },
                    span,
                }),
                Stmt::While { cond, body, span } => out.push(Stmt::While {
                    cond,
                    body: self.resolve_stmts(body, file)?,
                    span,
                }),
                Stmt::DoWhile { body, cond, span } => out.push(Stmt::DoWhile {
                    body: self.resolve_stmts(body, file)?,
                    cond,
                    span,
                }),
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    span,
                } => out.push(Stmt::For {
                    init,
                    cond,
                    step,
                    body: self.resolve_stmts(body, file)?,
                    span,
                }),
                Stmt::Foreach {
                    array,
                    key,
                    value,
                    body,
                    span,
                } => out.push(Stmt::Foreach {
                    array,
                    key,
                    value,
                    body: self.resolve_stmts(body, file)?,
                    span,
                }),
                Stmt::Switch {
                    subject,
                    cases,
                    span,
                } => out.push(Stmt::Switch {
                    subject,
                    cases: cases
                        .into_iter()
                        .map(|(l, b)| Ok((l, self.resolve_stmts(b, file)?)))
                        .collect::<Result<_, IncludeError>>()?,
                    span,
                }),
                Stmt::FuncDecl {
                    name,
                    params,
                    body,
                    span,
                } => out.push(Stmt::FuncDecl {
                    name,
                    params,
                    body: self.resolve_stmts(body, file)?,
                    span,
                }),
                Stmt::Block(body) => out.push(Stmt::Block(self.resolve_stmts(body, file)?)),
                other => out.push(other),
            }
        }
        Ok(out)
    }
}

/// Extracts the constant value of a pure-literal string expression.
fn const_string(e: &Expr) -> Option<String> {
    match e {
        Expr::StringLit(parts) => {
            let mut s = String::new();
            for p in parts {
                match p {
                    StrPart::Lit(t) => s.push_str(t),
                    _ => return None,
                }
            }
            Some(s)
        }
        Expr::Binary {
            op: crate::ast::BinOp::Concat,
            left,
            right,
        } => Some(format!("{}{}", const_string(left)?, const_string(right)?)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(files: &[(&str, &str)]) -> SourceSet {
        files
            .iter()
            .map(|(n, s)| (n.to_string(), s.to_string()))
            .collect()
    }

    #[test]
    fn splices_simple_include() {
        let s = set(&[
            ("a.php", "<?php include 'b.php'; echo $x;"),
            ("b.php", "<?php $x = 1;"),
        ]);
        let p = resolve_includes(&s, "a.php").unwrap();
        assert_eq!(p.stmts.len(), 2);
        assert!(matches!(p.stmts[0], Stmt::Expr(..)));
        assert!(matches!(p.stmts[1], Stmt::Echo(..)));
    }

    #[test]
    fn include_inside_if_branch() {
        let s = set(&[
            ("a.php", "<?php if ($c) { include 'b.php'; }"),
            ("b.php", "<?php echo 1;"),
        ]);
        let p = resolve_includes(&s, "a.php").unwrap();
        match &p.stmts[0] {
            Stmt::If { then_branch, .. } => {
                assert!(matches!(then_branch[0], Stmt::Echo(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn once_is_included_once() {
        let s = set(&[
            ("a.php", "<?php include_once 'b.php'; include_once 'b.php';"),
            ("b.php", "<?php $x = 1;"),
        ]);
        let p = resolve_includes(&s, "a.php").unwrap();
        let assigns = p
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Expr(Expr::Assign { .. }, _)))
            .count();
        assert_eq!(assigns, 1);
    }

    #[test]
    fn plain_include_repeats() {
        let s = set(&[
            ("a.php", "<?php include 'b.php'; include 'b.php';"),
            ("b.php", "<?php $x = 1;"),
        ]);
        let p = resolve_includes(&s, "a.php").unwrap();
        assert_eq!(p.stmts.len(), 2);
    }

    #[test]
    fn cycle_is_detected() {
        let s = set(&[
            ("a.php", "<?php include 'b.php';"),
            ("b.php", "<?php include 'a.php';"),
        ]);
        let err = resolve_includes(&s, "a.php").unwrap_err();
        match err {
            IncludeError::IncludeCycle(chain) => {
                assert_eq!(chain, vec!["a.php", "b.php", "a.php"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn once_self_include_is_allowed() {
        let s = set(&[("a.php", "<?php include_once 'a.php'; $x = 1;")]);
        // `include_once` of the file currently executing is a no-op, as
        // in PHP, so this must resolve rather than report a cycle.
        let p = resolve_includes(&s, "a.php").unwrap();
        assert!(matches!(p.stmts[0], Stmt::Nop(_)));
        assert_eq!(p.stmts.len(), 2);
    }

    #[test]
    fn missing_file_reports_includer() {
        let s = set(&[("a.php", "<?php include 'nope.php';")]);
        let err = resolve_includes(&s, "a.php").unwrap_err();
        match err {
            IncludeError::MissingFile {
                name,
                included_from,
            } => {
                assert_eq!(name, "nope.php");
                assert_eq!(included_from.as_deref(), Some("a.php"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_entry_file() {
        let err = resolve_includes(&SourceSet::new(), "a.php").unwrap_err();
        assert!(matches!(
            err,
            IncludeError::MissingFile {
                included_from: None,
                ..
            }
        ));
    }

    #[test]
    fn parse_error_names_the_file() {
        let s = set(&[
            ("a.php", "<?php include 'bad.php';"),
            ("bad.php", "<?php if ("),
        ]);
        let err = resolve_includes(&s, "a.php").unwrap_err();
        match err {
            IncludeError::Parse { file, .. } => assert_eq!(file, "bad.php"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dynamic_include_path_is_rejected() {
        let s = set(&[("a.php", "<?php include $page;")]);
        let err = resolve_includes(&s, "a.php").unwrap_err();
        assert!(matches!(err, IncludeError::DynamicIncludePath { .. }));
    }

    #[test]
    fn concatenated_constant_path_resolves() {
        let s = set(&[
            ("a.php", "<?php include 'lib' . '.php';"),
            ("lib.php", "<?php $x = 1;"),
        ]);
        let p = resolve_includes(&s, "a.php").unwrap();
        assert_eq!(p.stmts.len(), 1);
    }

    #[test]
    fn errors_display_nonempty() {
        let errs = [
            IncludeError::MissingFile {
                name: "x".into(),
                included_from: None,
            },
            IncludeError::IncludeCycle(vec!["a".into(), "a".into()]),
            IncludeError::DynamicIncludePath { file: "f".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn source_set_api() {
        let mut s = SourceSet::new();
        assert!(s.is_empty());
        s.add_file("x.php", "<?php");
        assert_eq!(s.len(), 1);
        assert_eq!(s.file("x.php"), Some("<?php"));
        assert_eq!(s.iter().count(), 1);
    }
}
