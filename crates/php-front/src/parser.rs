use crate::ast::{AssignOp, BinOp, Expr, IncludeKind, LValue, Param, Program, Stmt, UnOp};
use crate::error::ParseError;
use crate::lexer::Lexer;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a PHP source string into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] if lexing or parsing fails.
///
/// # Examples
///
/// ```
/// use php_front::parse_source;
///
/// let p = parse_source("<?php $q = \"id=$id\"; mysql_query($q);")?;
/// assert_eq!(p.stmts.len(), 2);
/// # Ok::<(), php_front::ParseError>(())
/// ```
pub fn parse_source(source: &str) -> Result<Program, ParseError> {
    let tokens = Lexer::new(source).tokenize()?;
    Parser::new(tokens).parse_program()
}

/// Recursive-descent parser over a token stream.
///
/// Use [`parse_source`] unless you already have tokens.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

/// Maximum combined statement/expression nesting depth. Deeper input
/// is rejected with a parse error instead of overflowing the stack.
const MAX_DEPTH: usize = 64;

impl Parser {
    /// Creates a parser over tokens (which must end with `Eof`).
    pub fn new(tokens: Vec<Token>) -> Self {
        assert!(
            matches!(tokens.last().map(|t| &t.kind), Some(TokenKind::Eof)),
            "token stream must end with Eof"
        );
        Parser {
            tokens,
            pos: 0,
            depth: 0,
        }
    }

    /// Parses a whole program.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on any construct outside the subset.
    pub fn parse_program(mut self) -> Result<Program, ParseError> {
        let mut stmts = Vec::new();
        while !self.at(TokenKind::Eof) {
            stmts.push(self.parse_stmt()?);
        }
        Ok(Program { stmts })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn at(&self, kind: TokenKind) -> bool {
        *self.peek_kind() == kind
    }

    fn at_ident(&self, text: &str) -> bool {
        self.peek_kind().is_ident(text)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.at(kind.clone()) {
            Ok(self.bump())
        } else {
            Err(self.error_here(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek_kind().describe()
            )))
        }
    }

    fn expect_semicolon(&mut self) -> Result<Span, ParseError> {
        if self.at(TokenKind::Semicolon) {
            Ok(self.bump().span)
        } else if self.at(TokenKind::Eof) {
            // PHP permits a missing `;` before EOF / close tag.
            Ok(self.peek().span)
        } else {
            Err(self.error_here(format!(
                "expected `;`, found {}",
                self.peek_kind().describe()
            )))
        }
    }

    fn error_here(&self, message: String) -> ParseError {
        ParseError::new(message, self.peek().span)
    }

    // ---- statements ------------------------------------------------

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.depth += 1;
        let result = if self.depth > MAX_DEPTH {
            Err(self.error_here(format!("nesting deeper than {MAX_DEPTH} levels")))
        } else {
            self.parse_stmt_inner()
        };
        self.depth -= 1;
        result
    }

    fn parse_stmt_inner(&mut self) -> Result<Stmt, ParseError> {
        let tok = self.peek().clone();
        match &tok.kind {
            TokenKind::InlineHtml(h) => {
                self.bump();
                Ok(Stmt::InlineHtml(h.clone(), tok.span))
            }
            TokenKind::Semicolon => {
                self.bump();
                Ok(Stmt::Nop(tok.span))
            }
            TokenKind::LBrace => {
                self.bump();
                let body = self.parse_block_until_rbrace()?;
                Ok(Stmt::Block(body))
            }
            TokenKind::Ident(name) => {
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "if" => self.parse_if(),
                    "while" => self.parse_while(),
                    "do" => self.parse_do_while(),
                    "for" => self.parse_for(),
                    "foreach" => self.parse_foreach(),
                    "switch" => self.parse_switch(),
                    "function" => self.parse_func_decl(),
                    "return" => self.parse_return(),
                    "echo" => self.parse_echo(),
                    "global" => self.parse_global(),
                    "break" => {
                        self.bump();
                        // Optional break level (ignored).
                        if matches!(self.peek_kind(), TokenKind::IntLit(_)) {
                            self.bump();
                        }
                        let end = self.expect_semicolon()?;
                        Ok(Stmt::Break(tok.span.merge(end)))
                    }
                    "continue" => {
                        self.bump();
                        if matches!(self.peek_kind(), TokenKind::IntLit(_)) {
                            self.bump();
                        }
                        let end = self.expect_semicolon()?;
                        Ok(Stmt::Continue(tok.span.merge(end)))
                    }
                    "exit" | "die" => {
                        self.bump();
                        let arg = if self.at(TokenKind::LParen) {
                            self.bump();
                            let a = if self.at(TokenKind::RParen) {
                                None
                            } else {
                                Some(self.parse_expr()?)
                            };
                            self.expect(TokenKind::RParen)?;
                            a
                        } else {
                            None
                        };
                        let end = self.expect_semicolon()?;
                        Ok(Stmt::Exit(arg, tok.span.merge(end)))
                    }
                    "include" | "include_once" | "require" | "require_once" => {
                        self.bump();
                        let kind = match lower.as_str() {
                            "include" => IncludeKind::Include,
                            "include_once" => IncludeKind::IncludeOnce,
                            "require" => IncludeKind::Require,
                            _ => IncludeKind::RequireOnce,
                        };
                        let path = self.parse_expr()?;
                        let end = self.expect_semicolon()?;
                        Ok(Stmt::Include {
                            kind,
                            path,
                            span: tok.span.merge(end),
                        })
                    }
                    _ => self.parse_expr_stmt(),
                }
            }
            _ => self.parse_expr_stmt(),
        }
    }

    fn parse_expr_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.peek().span;
        let expr = self.parse_expr()?;
        let end = self.expect_semicolon()?;
        Ok(Stmt::Expr(expr, start.merge(end)))
    }

    fn parse_block_until_rbrace(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        while !self.at(TokenKind::RBrace) {
            if self.at(TokenKind::Eof) {
                return Err(self.error_here("unexpected end of input, expected `}`".into()));
            }
            stmts.push(self.parse_stmt()?);
        }
        self.bump(); // }
        Ok(stmts)
    }

    /// A loop/branch body: either `{ … }` or a single statement.
    fn parse_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.at(TokenKind::LBrace) {
            self.bump();
            self.parse_block_until_rbrace()
        } else {
            Ok(vec![self.parse_stmt()?])
        }
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span; // if
        self.expect(TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        let close = self.expect(TokenKind::RParen)?.span;
        if self.at(TokenKind::Colon) {
            return self.parse_if_alternative(cond, start.merge(close));
        }
        let then_branch = self.parse_body()?;
        let mut elseifs = Vec::new();
        let mut else_branch = None;
        loop {
            if self.at_ident("elseif") {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let c = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                elseifs.push((c, self.parse_body()?));
            } else if self.at_ident("else") {
                self.bump();
                if self.at_ident("if") {
                    self.bump();
                    self.expect(TokenKind::LParen)?;
                    let c = self.parse_expr()?;
                    self.expect(TokenKind::RParen)?;
                    elseifs.push((c, self.parse_body()?));
                } else {
                    else_branch = Some(self.parse_body()?);
                    break;
                }
            } else {
                break;
            }
        }
        Ok(Stmt::If {
            cond,
            then_branch,
            elseifs,
            else_branch,
            span: start.merge(close),
        })
    }

    /// PHP's alternative syntax: `if (c): … elseif (c): … else: … endif;`
    fn parse_if_alternative(&mut self, cond: Expr, span: Span) -> Result<Stmt, ParseError> {
        self.expect(TokenKind::Colon)?;
        let stop = ["elseif", "else", "endif"];
        let then_branch = self.parse_alt_body(&stop)?;
        let mut elseifs = Vec::new();
        let mut else_branch = None;
        loop {
            if self.at_ident("elseif") {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let c = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Colon)?;
                elseifs.push((c, self.parse_alt_body(&stop)?));
            } else if self.at_ident("else") {
                self.bump();
                self.expect(TokenKind::Colon)?;
                else_branch = Some(self.parse_alt_body(&["endif"])?);
            } else if self.at_ident("endif") {
                self.bump();
                let _ = self.expect_semicolon()?;
                break;
            } else {
                return Err(self.error_here("expected `elseif`, `else`, or `endif`".into()));
            }
        }
        Ok(Stmt::If {
            cond,
            then_branch,
            elseifs,
            else_branch,
            span,
        })
    }

    /// Statements until one of the given closing keywords (not consumed).
    fn parse_alt_body(&mut self, stop: &[&str]) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        loop {
            if self.at(TokenKind::Eof) {
                return Err(
                    self.error_here(format!("unexpected end of input, expected one of {stop:?}"))
                );
            }
            if stop.iter().any(|k| self.at_ident(k)) {
                return Ok(out);
            }
            out.push(self.parse_stmt()?);
        }
    }

    fn parse_do_while(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span; // do
        let body = self.parse_body()?;
        if !self.at_ident("while") {
            return Err(self.error_here("expected `while` after do-block".into()));
        }
        self.bump();
        self.expect(TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        let close = self.expect(TokenKind::RParen)?.span;
        let _ = self.expect_semicolon()?;
        Ok(Stmt::DoWhile {
            body,
            cond,
            span: start.merge(close),
        })
    }

    fn parse_while(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span;
        self.expect(TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        let close = self.expect(TokenKind::RParen)?.span;
        let body = if self.at(TokenKind::Colon) {
            self.bump();
            let b = self.parse_alt_body(&["endwhile"])?;
            self.bump(); // endwhile
            let _ = self.expect_semicolon()?;
            b
        } else {
            self.parse_body()?
        };
        Ok(Stmt::While {
            cond,
            body,
            span: start.merge(close),
        })
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span;
        self.expect(TokenKind::LParen)?;
        let init = self.parse_expr_list_until(TokenKind::Semicolon)?;
        self.expect(TokenKind::Semicolon)?;
        let cond = if self.at(TokenKind::Semicolon) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect(TokenKind::Semicolon)?;
        let step = self.parse_expr_list_until(TokenKind::RParen)?;
        let close = self.expect(TokenKind::RParen)?.span;
        let body = if self.at(TokenKind::Colon) {
            self.bump();
            let b = self.parse_alt_body(&["endfor"])?;
            self.bump();
            let _ = self.expect_semicolon()?;
            b
        } else {
            self.parse_body()?
        };
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
            span: start.merge(close),
        })
    }

    fn parse_expr_list_until(&mut self, terminator: TokenKind) -> Result<Vec<Expr>, ParseError> {
        let mut out = Vec::new();
        if self.at(terminator.clone()) {
            return Ok(out);
        }
        out.push(self.parse_expr()?);
        while self.at(TokenKind::Comma) {
            self.bump();
            out.push(self.parse_expr()?);
        }
        Ok(out)
    }

    fn parse_foreach(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span;
        self.expect(TokenKind::LParen)?;
        let array = self.parse_expr()?;
        if !self.at_ident("as") {
            return Err(self.error_here("expected `as` in foreach".into()));
        }
        self.bump();
        if self.at(TokenKind::Amp) {
            self.bump();
        }
        let first = match self.bump() {
            Token {
                kind: TokenKind::Variable(v),
                ..
            } => v,
            t => return Err(ParseError::new("expected variable after `as`", t.span)),
        };
        let (key, value) = if self.at(TokenKind::DoubleArrow) {
            self.bump();
            if self.at(TokenKind::Amp) {
                self.bump();
            }
            match self.bump() {
                Token {
                    kind: TokenKind::Variable(v),
                    ..
                } => (Some(first), v),
                t => return Err(ParseError::new("expected variable after `=>`", t.span)),
            }
        } else {
            (None, first)
        };
        let close = self.expect(TokenKind::RParen)?.span;
        let body = if self.at(TokenKind::Colon) {
            self.bump();
            let b = self.parse_alt_body(&["endforeach"])?;
            self.bump();
            let _ = self.expect_semicolon()?;
            b
        } else {
            self.parse_body()?
        };
        Ok(Stmt::Foreach {
            array,
            key,
            value,
            body,
            span: start.merge(close),
        })
    }

    fn parse_switch(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span;
        self.expect(TokenKind::LParen)?;
        let subject = self.parse_expr()?;
        let close = self.expect(TokenKind::RParen)?.span;
        // `switch (e): case …: endswitch;` alternative form.
        let alternative = self.at(TokenKind::Colon);
        if alternative {
            self.bump();
        } else {
            self.expect(TokenKind::LBrace)?;
        }
        let at_end = |p: &Self| {
            if alternative {
                p.at_ident("endswitch")
            } else {
                p.at(TokenKind::RBrace)
            }
        };
        let mut cases = Vec::new();
        while !at_end(self) {
            let label = if self.at_ident("case") {
                self.bump();
                let v = self.parse_expr()?;
                Some(v)
            } else if self.at_ident("default") {
                self.bump();
                None
            } else {
                return Err(self.error_here("expected `case`, `default`, or `}`".into()));
            };
            // `case x:` or `case x;` (PHP allows both).
            if self.at(TokenKind::Colon) || self.at(TokenKind::Semicolon) {
                self.bump();
            }
            let mut body = Vec::new();
            while !at_end(self) && !self.at_ident("case") && !self.at_ident("default") {
                if self.at(TokenKind::Eof) {
                    return Err(self.error_here("unexpected end of input in switch".into()));
                }
                body.push(self.parse_stmt()?);
            }
            cases.push((label, body));
        }
        self.bump(); // } or endswitch
        if alternative {
            let _ = self.expect_semicolon()?;
        }
        Ok(Stmt::Switch {
            subject,
            cases,
            span: start.merge(close),
        })
    }

    fn parse_func_decl(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span; // function
        if self.at(TokenKind::Amp) {
            self.bump(); // return-by-reference marker
        }
        let name = match self.bump() {
            Token {
                kind: TokenKind::Ident(n),
                ..
            } => n,
            t => return Err(ParseError::new("expected function name", t.span)),
        };
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        while !self.at(TokenKind::RParen) {
            let by_ref = if self.at(TokenKind::Amp) {
                self.bump();
                true
            } else {
                false
            };
            let pname = match self.bump() {
                Token {
                    kind: TokenKind::Variable(v),
                    ..
                } => v,
                t => return Err(ParseError::new("expected parameter variable", t.span)),
            };
            let default = if self.at(TokenKind::Assign) {
                self.bump();
                Some(self.parse_expr()?)
            } else {
                None
            };
            params.push(Param {
                name: pname,
                by_ref,
                default,
            });
            if self.at(TokenKind::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        let close = self.expect(TokenKind::RParen)?.span;
        self.expect(TokenKind::LBrace)?;
        let body = self.parse_block_until_rbrace()?;
        Ok(Stmt::FuncDecl {
            name,
            params,
            body,
            span: start.merge(close),
        })
    }

    fn parse_return(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span;
        let value = if self.at(TokenKind::Semicolon) || self.at(TokenKind::Eof) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        let end = self.expect_semicolon()?;
        Ok(Stmt::Return(value, start.merge(end)))
    }

    fn parse_echo(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span;
        let mut args = vec![self.parse_expr()?];
        while self.at(TokenKind::Comma) {
            self.bump();
            args.push(self.parse_expr()?);
        }
        let end = self.expect_semicolon()?;
        Ok(Stmt::Echo(args, start.merge(end)))
    }

    fn parse_global(&mut self) -> Result<Stmt, ParseError> {
        let start = self.bump().span;
        let mut names = Vec::new();
        loop {
            match self.bump() {
                Token {
                    kind: TokenKind::Variable(v),
                    ..
                } => names.push(v),
                t => return Err(ParseError::new("expected variable in global", t.span)),
            }
            if self.at(TokenKind::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        let end = self.expect_semicolon()?;
        Ok(Stmt::Global(names, start.merge(end)))
    }

    // ---- expressions -----------------------------------------------

    /// Entry point: lowest precedence (`or` / `xor` / `and` keywords).
    pub(crate) fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.depth += 1;
        let result = if self.depth > MAX_DEPTH {
            Err(self.error_here(format!("nesting deeper than {MAX_DEPTH} levels")))
        } else {
            self.parse_expr_inner()
        };
        self.depth -= 1;
        result
    }

    fn parse_expr_inner(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_assignment()?;
        loop {
            let op = if self.at_ident("or") {
                BinOp::Or
            } else if self.at_ident("and") {
                BinOp::And
            } else if self.at_ident("xor") {
                BinOp::NotEq
            } else {
                break;
            };
            self.bump();
            let right = self.parse_assignment()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_assignment(&mut self) -> Result<Expr, ParseError> {
        let start = self.peek().span;
        let target = self.parse_ternary()?;
        let op = match self.peek_kind() {
            TokenKind::Assign => AssignOp::Assign,
            TokenKind::PlusAssign => AssignOp::Add,
            TokenKind::MinusAssign => AssignOp::Sub,
            TokenKind::MulAssign => AssignOp::Mul,
            TokenKind::DivAssign => AssignOp::Div,
            TokenKind::DotAssign => AssignOp::Concat,
            _ => return Ok(target),
        };
        let op_span = self.bump().span;
        let lvalue = Self::expr_to_lvalue(target)
            .ok_or_else(|| ParseError::new("invalid assignment target", op_span))?;
        // `$a = &$b;` reference assignment — modeled as a copy.
        if self.at(TokenKind::Amp) {
            self.bump();
        }
        let value = self.parse_assignment()?; // right-associative
        let end = self.prev_span();
        Ok(Expr::Assign {
            target: lvalue,
            op,
            value: Box::new(value),
            span: start.merge(end),
        })
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn expr_to_lvalue(e: Expr) -> Option<LValue> {
        match e {
            Expr::Var(v) => Some(LValue::Var(v)),
            Expr::ArrayAccess { base, index } => match *base {
                Expr::Var(v) => Some(LValue::ArrayElem { var: v, index }),
                // Nested `$a[i][j]` — taint tracked on the root array.
                Expr::ArrayAccess { .. } => Self::expr_to_lvalue(*base).map(|lv| match lv {
                    LValue::ArrayElem { var, .. } | LValue::Var(var) => {
                        LValue::ArrayElem { var, index: None }
                    }
                    other => other,
                }),
                _ => None,
            },
            Expr::PropFetch { base, name } => Some(LValue::Prop { base, name }),
            Expr::Call { name, args, .. } if name == "list" => {
                let items: Option<Vec<LValue>> =
                    args.into_iter().map(Self::expr_to_lvalue).collect();
                items.map(LValue::List)
            }
            _ => None,
        }
    }

    fn parse_ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.parse_or()?;
        if !self.at(TokenKind::Question) {
            return Ok(cond);
        }
        self.bump();
        if self.at(TokenKind::Colon) {
            // `?:` short ternary.
            self.bump();
            let otherwise = self.parse_assignment()?;
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then: None,
                otherwise: Box::new(otherwise),
            });
        }
        let then = self.parse_assignment()?;
        self.expect(TokenKind::Colon)?;
        let otherwise = self.parse_assignment()?;
        Ok(Expr::Ternary {
            cond: Box::new(cond),
            then: Some(Box::new(then)),
            otherwise: Box::new(otherwise),
        })
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.at(TokenKind::OrOr) {
            self.bump();
            let right = self.parse_and()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_equality()?;
        while self.at(TokenKind::AndAnd) {
            self.bump();
            let right = self.parse_equality()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_equality(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_relational()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::EqEqEq => BinOp::StrictEq,
                TokenKind::NotEq => BinOp::NotEq,
                TokenKind::NotEqEq => BinOp::StrictNotEq,
                _ => break,
            };
            self.bump();
            let right = self.parse_relational()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_relational(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_additive()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let right = self.parse_additive()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Dot => BinOp::Concat,
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek_kind() {
            TokenKind::Not => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e),
                })
            }
            TokenKind::Minus => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                })
            }
            TokenKind::Plus => {
                self.bump();
                let e = self.parse_unary()?;
                Ok(Expr::Unary {
                    op: UnOp::Plus,
                    expr: Box::new(e),
                })
            }
            TokenKind::At => {
                // `@expr` error suppression; mark calls, otherwise drop.
                self.bump();
                let e = self.parse_unary()?;
                Ok(match e {
                    Expr::Call {
                        name, args, span, ..
                    } => Expr::Call {
                        name,
                        args,
                        suppressed: true,
                        span,
                    },
                    other => other,
                })
            }
            TokenKind::Inc | TokenKind::Dec => {
                let span = self.bump().span;
                let e = self.parse_unary()?;
                let target = Self::expr_to_lvalue(e)
                    .ok_or_else(|| ParseError::new("invalid increment target", span))?;
                Ok(Expr::IncDec { target })
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek_kind() {
                TokenKind::LBracket => {
                    self.bump();
                    let index = if self.at(TokenKind::RBracket) {
                        None
                    } else {
                        Some(Box::new(self.parse_expr()?))
                    };
                    self.expect(TokenKind::RBracket)?;
                    e = Expr::ArrayAccess {
                        base: Box::new(e),
                        index,
                    };
                }
                TokenKind::Arrow => {
                    self.bump();
                    let name = match self.bump() {
                        Token {
                            kind: TokenKind::Ident(n),
                            ..
                        } => n,
                        t => {
                            return Err(ParseError::new("expected member name after `->`", t.span))
                        }
                    };
                    if self.at(TokenKind::LParen) {
                        let start = self.peek().span;
                        let args = self.parse_call_args()?;
                        let end = self.prev_span();
                        e = Expr::MethodCall {
                            base: Box::new(e),
                            name,
                            args,
                            span: start.merge(end),
                        };
                    } else {
                        e = Expr::PropFetch {
                            base: Box::new(e),
                            name,
                        };
                    }
                }
                TokenKind::Inc | TokenKind::Dec => {
                    let span = self.bump().span;
                    let target = Self::expr_to_lvalue(e)
                        .ok_or_else(|| ParseError::new("invalid increment target", span))?;
                    e = Expr::IncDec { target };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(TokenKind::LParen)?;
        let mut args = Vec::new();
        while !self.at(TokenKind::RParen) {
            // Ignore by-reference markers in argument position.
            if self.at(TokenKind::Amp) {
                self.bump();
            }
            args.push(self.parse_expr()?);
            if self.at(TokenKind::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(args)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let tok = self.peek().clone();
        match tok.kind {
            TokenKind::Variable(name) => {
                self.bump();
                Ok(Expr::Var(name))
            }
            TokenKind::IntLit(n) => {
                self.bump();
                Ok(Expr::IntLit(n))
            }
            TokenKind::FloatLit(x) => {
                self.bump();
                Ok(Expr::FloatLit(x))
            }
            TokenKind::StringLit(parts) => {
                self.bump();
                Ok(Expr::StringLit(parts))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::LBracket => {
                // Short array syntax `[a, k => v]`.
                self.bump();
                let entries = self.parse_array_entries(TokenKind::RBracket)?;
                Ok(Expr::ArrayLit(entries))
            }
            TokenKind::Ident(name) => {
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "true" => {
                        self.bump();
                        Ok(Expr::BoolLit(true))
                    }
                    "false" => {
                        self.bump();
                        Ok(Expr::BoolLit(false))
                    }
                    "null" => {
                        self.bump();
                        Ok(Expr::NullLit)
                    }
                    "array" => {
                        self.bump();
                        self.expect(TokenKind::LParen)?;
                        let entries = self.parse_array_entries(TokenKind::RParen)?;
                        Ok(Expr::ArrayLit(entries))
                    }
                    "list" => {
                        let start = self.bump().span;
                        let args = self.parse_call_args()?;
                        let end = self.prev_span();
                        Ok(Expr::Call {
                            name: "list".to_owned(),
                            args,
                            suppressed: false,
                            span: start.merge(end),
                        })
                    }
                    "print" => {
                        let start = self.bump().span;
                        let arg = self.parse_assignment()?;
                        let end = self.prev_span();
                        Ok(Expr::Call {
                            name: "print".to_owned(),
                            args: vec![arg],
                            suppressed: false,
                            span: start.merge(end),
                        })
                    }
                    "new" => {
                        let start = self.bump().span;
                        let class = match self.bump() {
                            Token {
                                kind: TokenKind::Ident(c),
                                ..
                            } => c,
                            t => {
                                return Err(ParseError::new(
                                    "expected class name after `new`",
                                    t.span,
                                ))
                            }
                        };
                        let args = if self.at(TokenKind::LParen) {
                            self.parse_call_args()?
                        } else {
                            Vec::new()
                        };
                        let end = self.prev_span();
                        Ok(Expr::Call {
                            name: format!("new {class}"),
                            args,
                            suppressed: false,
                            span: start.merge(end),
                        })
                    }
                    "exit" | "die" => {
                        // Expression form: `$x or die("msg")`.
                        let start = self.bump().span;
                        let args = if self.at(TokenKind::LParen) {
                            self.parse_call_args()?
                        } else {
                            Vec::new()
                        };
                        let end = self.prev_span();
                        Ok(Expr::Call {
                            name: "exit".to_owned(),
                            args,
                            suppressed: false,
                            span: start.merge(end),
                        })
                    }
                    _ => {
                        self.bump();
                        if self.at(TokenKind::LParen) {
                            let args = self.parse_call_args()?;
                            let end = self.prev_span();
                            Ok(Expr::Call {
                                name,
                                args,
                                suppressed: false,
                                span: tok.span.merge(end),
                            })
                        } else {
                            // A bare constant (`Nick`, `PHP_SELF`, …):
                            // constants carry trusted values.
                            Ok(Expr::StringLit(vec![crate::token::StrPart::Lit(name)]))
                        }
                    }
                }
            }
            other => Err(ParseError::new(
                format!("unexpected {} in expression", other.describe()),
                tok.span,
            )),
        }
    }

    fn parse_array_entries(
        &mut self,
        terminator: TokenKind,
    ) -> Result<Vec<(Option<Expr>, Expr)>, ParseError> {
        let mut entries = Vec::new();
        while !self.at(terminator.clone()) {
            let first = self.parse_expr()?;
            if self.at(TokenKind::DoubleArrow) {
                self.bump();
                if self.at(TokenKind::Amp) {
                    self.bump();
                }
                let value = self.parse_expr()?;
                entries.push((Some(first), value));
            } else {
                entries.push((None, first));
            }
            if self.at(TokenKind::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(terminator)?;
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        parse_source(src).expect("parse ok")
    }

    #[test]
    fn assignment_statement() {
        let p = parse("<?php $x = 1;");
        match &p.stmts[0] {
            Stmt::Expr(
                Expr::Assign {
                    target, op, value, ..
                },
                _,
            ) => {
                assert_eq!(target, &LValue::Var("x".into()));
                assert_eq!(*op, AssignOp::Assign);
                assert_eq!(**value, Expr::IntLit(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn superglobal_assignment() {
        let p = parse("<?php $sid = $_GET['sid'];");
        match &p.stmts[0] {
            Stmt::Expr(Expr::Assign { value, .. }, _) => match value.as_ref() {
                Expr::ArrayAccess { base, index } => {
                    assert_eq!(**base, Expr::Var("_GET".into()));
                    assert!(index.is_some());
                }
                other => panic!("unexpected rhs {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_elseif_else() {
        let p = parse("<?php if ($a) { echo 1; } elseif ($b) echo 2; else { echo 3; }");
        match &p.stmts[0] {
            Stmt::If {
                elseifs,
                else_branch,
                ..
            } => {
                assert_eq!(elseifs.len(), 1);
                assert!(else_branch.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn else_if_two_words() {
        let p = parse("<?php if ($a) echo 1; else if ($b) echo 2;");
        match &p.stmts[0] {
            Stmt::If { elseifs, .. } => assert_eq!(elseifs.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn while_with_assignment_condition() {
        // Paper Figure 2: WHILE ($row = @mysql_fetch_array($result)) …
        let p = parse("<?php while ($row = @mysql_fetch_array($result)) { echo $row; }");
        match &p.stmts[0] {
            Stmt::While { cond, body, .. } => {
                assert!(matches!(cond, Expr::Assign { .. }));
                assert_eq!(body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn suppressed_call() {
        let p = parse("<?php $r = @mysql_query($q);");
        match &p.stmts[0] {
            Stmt::Expr(Expr::Assign { value, .. }, _) => match value.as_ref() {
                Expr::Call {
                    name, suppressed, ..
                } => {
                    assert_eq!(name, "mysql_query");
                    assert!(*suppressed);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn for_loop() {
        let p = parse("<?php for ($i = 0; $i < 10; $i++) echo $i;");
        match &p.stmts[0] {
            Stmt::For {
                init, cond, step, ..
            } => {
                assert_eq!(init.len(), 1);
                assert!(cond.is_some());
                assert_eq!(step.len(), 1);
                assert!(matches!(step[0], Expr::IncDec { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn foreach_with_key() {
        let p = parse("<?php foreach ($rows as $k => $v) echo $v;");
        match &p.stmts[0] {
            Stmt::Foreach { key, value, .. } => {
                assert_eq!(key.as_deref(), Some("k"));
                assert_eq!(value, "v");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn switch_with_cases_and_default() {
        let p = parse(
            "<?php switch ($x) { case 1: echo 1; break; case 2: echo 2; break; default: echo 3; }",
        );
        match &p.stmts[0] {
            Stmt::Switch { cases, .. } => {
                assert_eq!(cases.len(), 3);
                assert!(cases[2].0.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn function_declaration() {
        let p = parse("<?php function f($a, &$b, $c = 1) { return $a; }");
        match &p.stmts[0] {
            Stmt::FuncDecl {
                name, params, body, ..
            } => {
                assert_eq!(name, "f");
                assert_eq!(params.len(), 3);
                assert!(params[1].by_ref);
                assert!(params[2].default.is_some());
                assert!(matches!(body[0], Stmt::Return(Some(_), _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn echo_multiple_and_concat() {
        let p = parse("<?php echo $a, 'x' . $b;");
        match &p.stmts[0] {
            Stmt::Echo(args, _) => {
                assert_eq!(args.len(), 2);
                assert!(matches!(
                    args[1],
                    Expr::Binary {
                        op: BinOp::Concat,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn include_statement() {
        let p = parse("<?php include 'config.php'; require_once(\"lib.php\");");
        assert!(matches!(
            p.stmts[0],
            Stmt::Include {
                kind: IncludeKind::Include,
                ..
            }
        ));
        assert!(matches!(
            p.stmts[1],
            Stmt::Include {
                kind: IncludeKind::RequireOnce,
                ..
            }
        ));
    }

    #[test]
    fn global_declaration() {
        let p = parse("<?php global $db, $cfg;");
        match &p.stmts[0] {
            Stmt::Global(names, _) => assert_eq!(names, &vec!["db".to_owned(), "cfg".to_owned()]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compound_concat_assignment() {
        let p = parse("<?php $q .= $part;");
        match &p.stmts[0] {
            Stmt::Expr(Expr::Assign { op, .. }, _) => assert_eq!(*op, AssignOp::Concat),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ternary_and_short_ternary() {
        let p = parse("<?php $a = $c ? $x : $y; $b = $c ?: $z;");
        match &p.stmts[0] {
            Stmt::Expr(Expr::Assign { value, .. }, _) => {
                assert!(matches!(
                    value.as_ref(),
                    Expr::Ternary { then: Some(_), .. }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.stmts[1] {
            Stmt::Expr(Expr::Assign { value, .. }, _) => {
                assert!(matches!(value.as_ref(), Expr::Ternary { then: None, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn array_literals_long_and_short() {
        let p = parse("<?php $a = array(1, 'k' => 2); $b = [3];");
        match &p.stmts[0] {
            Stmt::Expr(Expr::Assign { value, .. }, _) => match value.as_ref() {
                Expr::ArrayLit(entries) => {
                    assert_eq!(entries.len(), 2);
                    assert!(entries[1].0.is_some());
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn method_call_and_prop_fetch() {
        let p = parse("<?php $r = $db->query($q); $n = $db->name;");
        match &p.stmts[0] {
            Stmt::Expr(Expr::Assign { value, .. }, _) => {
                assert!(matches!(value.as_ref(), Expr::MethodCall { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.stmts[1] {
            Stmt::Expr(Expr::Assign { value, .. }, _) => {
                assert!(matches!(value.as_ref(), Expr::PropFetch { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn or_die_idiom() {
        let p = parse("<?php mysql_connect($h) or die('no db');");
        match &p.stmts[0] {
            Stmt::Expr(Expr::Binary { op: BinOp::Or, .. }, _) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_identifier_is_a_constant() {
        // Figure 6 of the paper: `if (Nick) …`.
        let p = parse("<?php if (Nick) { echo 1; }");
        match &p.stmts[0] {
            Stmt::If { cond, .. } => {
                assert!(matches!(cond, Expr::StringLit(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exit_and_die_statements() {
        let p = parse("<?php exit; die('bye');");
        assert!(matches!(p.stmts[0], Stmt::Exit(None, _)));
        assert!(matches!(p.stmts[1], Stmt::Exit(Some(_), _)));
    }

    #[test]
    fn missing_semicolon_before_eof_is_ok() {
        let p = parse("<?php $x = 1");
        assert_eq!(p.stmts.len(), 1);
    }

    #[test]
    fn errors_unclosed_brace() {
        let err = parse_source("<?php if ($a) { echo 1;").unwrap_err();
        assert!(err.message.contains("expected `}`"));
    }

    #[test]
    fn errors_bad_assignment_target() {
        let err = parse_source("<?php 1 = 2;").unwrap_err();
        assert!(err.message.contains("invalid assignment target"));
    }

    #[test]
    fn errors_missing_paren() {
        let err = parse_source("<?php if $a) echo 1;").unwrap_err();
        assert!(err.message.contains("expected `(`"));
    }

    #[test]
    fn nested_array_assignment_target() {
        let p = parse("<?php $m[1][2] = $v;");
        match &p.stmts[0] {
            Stmt::Expr(Expr::Assign { target, .. }, _) => {
                assert_eq!(target.root_var(), Some("m"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_concat_binds_tighter_than_comparison() {
        let p = parse("<?php $b = $x . 'a' == $y;");
        match &p.stmts[0] {
            Stmt::Expr(Expr::Assign { value, .. }, _) => match value.as_ref() {
                Expr::Binary {
                    op: BinOp::Eq,
                    left,
                    ..
                } => {
                    assert!(matches!(
                        left.as_ref(),
                        Expr::Binary {
                            op: BinOp::Concat,
                            ..
                        }
                    ));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn statement_count_of_realistic_file() {
        let src = r#"<?php
$sid = $_GET['sid'];
if (!$sid) { $sid = $_POST['sid']; }
$iq = "SELECT * FROM groups WHERE sid=$sid";
DoSQL($iq);
"#;
        let p = parse(src);
        assert_eq!(p.stmts.len(), 4);
        assert_eq!(p.num_statements(), 5);
    }
}
