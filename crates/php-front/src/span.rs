use std::fmt;

/// A half-open byte range `[start, end)` into a source file.
///
/// # Examples
///
/// ```
/// use php_front::Span;
///
/// let s = Span::new(3, 7);
/// assert_eq!(s.len(), 4);
/// assert!(s.contains(3));
/// assert!(!s.contains(7));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "span start after end");
        Span { start, end }
    }

    /// The empty span at an offset.
    pub fn point(at: u32) -> Self {
        Span { start: at, end: at }
    }

    /// Number of bytes covered.
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Whether `offset` lies within the span.
    pub fn contains(self, offset: u32) -> bool {
        self.start <= offset && offset < self.end
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The text this span selects from `source`.
    pub fn slice(self, source: &str) -> &str {
        &source[self.start as usize..self.end as usize]
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytes {}..{}", self.start, self.end)
    }
}

/// Maps byte offsets to 1-based line and column numbers.
///
/// # Examples
///
/// ```
/// use php_front::LineIndex;
///
/// let idx = LineIndex::new("ab\ncd");
/// assert_eq!(idx.line_col(0), (1, 1));
/// assert_eq!(idx.line_col(3), (2, 1));
/// ```
#[derive(Clone, Debug)]
pub struct LineIndex {
    line_starts: Vec<u32>,
}

impl LineIndex {
    /// Builds the index for a source text.
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineIndex { line_starts }
    }

    /// The 1-based `(line, column)` of a byte offset.
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line as u32 + 1, offset - self.line_starts[line] + 1)
    }

    /// The 1-based line of a byte offset.
    pub fn line(&self, offset: u32) -> u32 {
        self.line_col(offset).0
    }

    /// Number of lines in the indexed source.
    pub fn num_lines(&self) -> usize {
        self.line_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.merge(b), Span::new(2, 9));
        assert_eq!(b.merge(a), Span::new(2, 9));
    }

    #[test]
    fn point_is_empty() {
        assert!(Span::point(4).is_empty());
        assert_eq!(Span::point(4).len(), 0);
    }

    #[test]
    #[should_panic(expected = "start after end")]
    fn inverted_span_panics() {
        let _ = Span::new(5, 2);
    }

    #[test]
    fn slice_selects_text() {
        let src = "hello world";
        assert_eq!(Span::new(6, 11).slice(src), "world");
    }

    #[test]
    fn line_index_maps_offsets() {
        let idx = LineIndex::new("one\ntwo\nthree");
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(2), (1, 3));
        assert_eq!(idx.line_col(4), (2, 1));
        assert_eq!(idx.line_col(8), (3, 1));
        assert_eq!(idx.line_col(12), (3, 5));
        assert_eq!(idx.num_lines(), 3);
    }

    #[test]
    fn line_index_of_empty_source() {
        let idx = LineIndex::new("");
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.num_lines(), 1);
    }

    #[test]
    fn newline_belongs_to_its_line() {
        let idx = LineIndex::new("a\nb");
        assert_eq!(idx.line(1), 1);
        assert_eq!(idx.line(2), 2);
    }

    #[test]
    fn display_and_debug_nonempty() {
        let s = Span::new(1, 2);
        assert_eq!(format!("{s}"), "bytes 1..2");
        assert_eq!(format!("{s:?}"), "1..2");
    }
}
