//! # jsonio — a minimal shared JSON value model with writer and parser.
//!
//! The workspace's `serde` dependency is an offline stand-in whose
//! derive is a no-op (see `vendor/README.md`), so the engine's cache
//! file, the metrics export, and the `webssari-serve` HTTP API all
//! serialize by hand through this crate. Only the subset the workspace
//! emits is supported: objects, arrays, strings, booleans, `null`, and
//! non-negative integers (every number stored is a count or a
//! microsecond duration).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the only number shape the engine emits).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as an ordered key/value list (insertion order is
    /// preserved when writing).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object constructor from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns `None` on any syntax error or on
/// trailing non-whitespace — a corrupt cache file simply reads as
/// empty.
pub fn parse(text: &str) -> Option<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos == p.bytes.len() {
        Some(v)
    } else {
        None
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Option<()> {
        (self.bump()? == expected).then_some(())
    }

    fn literal(&mut self, word: &str, value: Value) -> Option<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Some(value)
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn number(&mut self) -> Option<Value> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        text.parse::<u64>().ok().map(Value::Num)
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Some(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = (self.bump()? as char).to_digit(16)?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                b => {
                    // Re-decode multi-byte UTF-8 sequences in place.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = match b {
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            0xf0..=0xf7 => 4,
                            _ => return None,
                        };
                        let end = start + len;
                        let chunk = self.bytes.get(start..end)?;
                        out.push_str(std::str::from_utf8(chunk).ok()?);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Option<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Some(Value::Arr(items)),
                _ => return None,
            }
        }
    }

    fn object(&mut self) -> Option<Value> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Some(Value::Obj(pairs)),
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_compact_json() {
        let v = Value::obj(vec![
            ("name", Value::str("a.php")),
            ("count", Value::Num(3)),
            ("flag", Value::Bool(true)),
            ("items", Value::Arr(vec![Value::Num(1), Value::Null])),
        ]);
        assert_eq!(
            v.to_json(),
            r#"{"name":"a.php","count":3,"flag":true,"items":[1,null]}"#
        );
    }

    #[test]
    fn escapes_and_unescapes() {
        let v = Value::str("a\"b\\c\nd\te\u{1}f");
        let json = v.to_json();
        assert_eq!(json, r#""a\"b\\c\nd\te\u0001f""#);
        assert_eq!(parse(&json), Some(v));
    }

    #[test]
    fn round_trips_nested_structures() {
        let v = Value::obj(vec![
            ("fingerprint", Value::str("line one\nline two")),
            (
                "entries",
                Value::Arr(vec![Value::obj(vec![
                    ("file", Value::str("λ/€.php")),
                    ("hash", Value::Num(u64::MAX)),
                ])]),
            ),
        ]);
        assert_eq!(parse(&v.to_json()), Some(v));
    }

    #[test]
    fn accepts_whitespace_rejects_garbage() {
        assert_eq!(
            parse(" { \"a\" : [ 1 , 2 ] } "),
            Some(Value::obj(vec![(
                "a",
                Value::Arr(vec![Value::Num(1), Value::Num(2)])
            )]))
        );
        assert_eq!(parse(""), None);
        assert_eq!(parse("{"), None);
        assert_eq!(parse("{} extra"), None);
        assert_eq!(parse("[1,]"), None);
        assert_eq!(parse("-1"), None); // engine never writes negatives
        assert_eq!(parse("\"\\q\""), None);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""\u00e9""#), Some(Value::str("é")));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"k":"v","n":7,"a":[true]}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some("v"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(7));
        assert_eq!(
            v.get("a").and_then(Value::as_arr).map(<[Value]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
    }
}
