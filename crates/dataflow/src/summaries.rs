//! Context-sensitive function summaries over the PHP AST.
//!
//! The filter unfolds calls inline (with a recursion cutoff), so the
//! SSA analysis is already interprocedural *after* unfolding. This
//! module computes the complementary compact view: one summary per
//! declared function describing its return taint as a function of its
//! parameters — `ret = base ⊔ ⊔_{i ∈ deps} taint(arg_i)` — computed
//! bottom-up over the call graph (Tarjan SCCs), with a per-SCC fixpoint
//! for recursion that widens soundly to ⊤ at the configured cutoff.
//!
//! Summaries are context-insensitive by default. A function whose
//! summary is *taint-polymorphic* (its return taint depends on at least
//! one parameter, `deps ≠ 0`) gets 1-level call-site cloning: at a
//! direct call site the callee body is re-evaluated against the actual
//! argument values instead of instantiating the summary, which is
//! exactly one level of context sensitivity. Cloning counts are
//! reported so the `contexts_cloned` counter can surface how often the
//! polymorphic case fires in real corpora.

use std::collections::HashMap;

use php_front::ast::{Expr, Program, Stmt, StrPart};
use taint_lattice::{Elem, Lattice};
use webssari_ir::Prelude;

/// A summary value: taint as a function of the enclosing function's
/// parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SumVal {
    /// Parameter-independent taint.
    pub base: Elem,
    /// Bitmask of parameter indices whose taint joins into the value.
    pub deps: u64,
    /// Whether the value passed through a sanitizer.
    pub sanitized: bool,
}

impl SumVal {
    fn constant(base: Elem) -> SumVal {
        SumVal {
            base,
            deps: 0,
            sanitized: false,
        }
    }

    fn join(self, other: SumVal, lattice: &impl Lattice) -> SumVal {
        SumVal {
            base: lattice.join(self.base, other.base),
            deps: self.deps | other.deps,
            sanitized: self.sanitized || other.sanitized,
        }
    }
}

/// The summary of one declared function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuncSummary {
    /// Return value as a function of the parameters.
    pub ret: SumVal,
    /// Whether the return taint depends on parameter taint
    /// (`ret.deps ≠ 0`) — such functions get call-site cloning.
    pub polymorphic: bool,
    /// Whether this summary was widened to ⊤ at the recursion cutoff.
    pub widened: bool,
}

/// Result of summary computation over one program.
#[derive(Clone, Debug, Default)]
pub struct SummaryResult {
    /// Summaries keyed by lowercased function name.
    pub summaries: HashMap<String, FuncSummary>,
    /// Number of function summaries computed (SCC fixpoint iterations
    /// count once per function).
    pub summaries_computed: u64,
    /// Number of call sites where a taint-polymorphic callee was
    /// re-evaluated against actual arguments (1-level cloning).
    pub contexts_cloned: u64,
    /// Number of summaries widened to ⊤ at the recursion cutoff.
    pub recursion_widened: u64,
}

struct FuncDef<'a> {
    params: Vec<String>,
    body: &'a [Stmt],
}

struct Cx<'a, L: Lattice> {
    prelude: &'a Prelude,
    lattice: &'a L,
    funcs: HashMap<String, FuncDef<'a>>,
    summaries: HashMap<String, FuncSummary>,
    contexts_cloned: u64,
}

impl<L: Lattice> Cx<'_, L> {
    /// Evaluates `body` with `env` binding each variable to a summary
    /// value, returning the join of all `return` expressions (⊥ when
    /// the function never returns a value). `clone_depth` counts how
    /// many levels of call-site cloning remain.
    fn eval_body(
        &mut self,
        body: &[Stmt],
        env: &mut HashMap<String, SumVal>,
        clone_depth: usize,
    ) -> SumVal {
        let mut ret = SumVal::constant(self.lattice.bottom());
        self.eval_stmts(body, env, clone_depth, &mut ret);
        ret
    }

    fn eval_stmts(
        &mut self,
        stmts: &[Stmt],
        env: &mut HashMap<String, SumVal>,
        clone_depth: usize,
        ret: &mut SumVal,
    ) {
        for s in stmts {
            match s {
                Stmt::Expr(e, _) => {
                    self.eval_expr(e, env, clone_depth);
                }
                Stmt::Echo(es, _) => {
                    for e in es {
                        self.eval_expr(e, env, clone_depth);
                    }
                }
                Stmt::If {
                    cond,
                    then_branch,
                    elseifs,
                    else_branch,
                    ..
                } => {
                    self.eval_expr(cond, env, clone_depth);
                    // Join the environments of all arms against the
                    // fall-through (the selection is nondeterministic
                    // in the abstract semantics).
                    let mut merged = env.clone();
                    let mut arm = env.clone();
                    self.eval_stmts(then_branch, &mut arm, clone_depth, ret);
                    join_env(&mut merged, &arm, self.lattice);
                    for (c, body) in elseifs {
                        let mut arm = env.clone();
                        self.eval_expr(c, &mut arm, clone_depth);
                        self.eval_stmts(body, &mut arm, clone_depth, ret);
                        join_env(&mut merged, &arm, self.lattice);
                    }
                    if let Some(body) = else_branch {
                        let mut arm = env.clone();
                        self.eval_stmts(body, &mut arm, clone_depth, ret);
                        join_env(&mut merged, &arm, self.lattice);
                    }
                    *env = merged;
                }
                Stmt::While { cond, body, .. } => {
                    self.eval_expr(cond, env, clone_depth);
                    self.eval_loop(body, env, clone_depth, ret);
                }
                Stmt::DoWhile { body, cond, .. } => {
                    self.eval_loop(body, env, clone_depth, ret);
                    self.eval_expr(cond, env, clone_depth);
                }
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    ..
                } => {
                    for e in init {
                        self.eval_expr(e, env, clone_depth);
                    }
                    if let Some(c) = cond {
                        self.eval_expr(c, env, clone_depth);
                    }
                    let mut full: Vec<Stmt> = body.to_vec();
                    for e in step {
                        full.push(Stmt::Expr(e.clone(), php_front::Span::default()));
                    }
                    self.eval_loop(&full, env, clone_depth, ret);
                }
                Stmt::Foreach {
                    array,
                    key,
                    value,
                    body,
                    ..
                } => {
                    let v = self.eval_expr(array, env, clone_depth);
                    if let Some(k) = key {
                        env.insert(k.clone(), v);
                    }
                    env.insert(value.clone(), v);
                    self.eval_loop(body, env, clone_depth, ret);
                }
                Stmt::Switch { subject, cases, .. } => {
                    self.eval_expr(subject, env, clone_depth);
                    let mut merged = env.clone();
                    for (c, body) in cases {
                        let mut arm = env.clone();
                        if let Some(c) = c {
                            self.eval_expr(c, &mut arm, clone_depth);
                        }
                        self.eval_stmts(body, &mut arm, clone_depth, ret);
                        join_env(&mut merged, &arm, self.lattice);
                    }
                    *env = merged;
                }
                Stmt::Return(e, _) => {
                    let v = match e {
                        Some(e) => self.eval_expr(e, env, clone_depth),
                        None => SumVal::constant(self.lattice.bottom()),
                    };
                    *ret = ret.join(v, self.lattice);
                }
                Stmt::Exit(e, _) => {
                    if let Some(e) = e {
                        self.eval_expr(e, env, clone_depth);
                    }
                }
                Stmt::Block(stmts) => self.eval_stmts(stmts, env, clone_depth, ret),
                Stmt::FuncDecl { .. }
                | Stmt::Include { .. }
                | Stmt::Global(..)
                | Stmt::Break(..)
                | Stmt::Continue(..)
                | Stmt::InlineHtml(..)
                | Stmt::Nop(..) => {}
            }
        }
    }

    /// One-pass loop approximation matching the AI's single unfolding:
    /// evaluate the body once and join the resulting environment with
    /// the skip environment.
    fn eval_loop(
        &mut self,
        body: &[Stmt],
        env: &mut HashMap<String, SumVal>,
        clone_depth: usize,
        ret: &mut SumVal,
    ) {
        let mut once = env.clone();
        self.eval_stmts(body, &mut once, clone_depth, ret);
        join_env(env, &once, self.lattice);
    }

    fn eval_expr(
        &mut self,
        e: &Expr,
        env: &mut HashMap<String, SumVal>,
        clone_depth: usize,
    ) -> SumVal {
        let bottom = SumVal::constant(self.lattice.bottom());
        match e {
            Expr::Var(name) => self.read_var(name, env),
            Expr::ArrayAccess { base, index } => {
                if let Some(i) = index {
                    self.eval_expr(i, env, clone_depth);
                }
                self.eval_expr(base, env, clone_depth)
            }
            Expr::PropFetch { base, .. } => self.eval_expr(base, env, clone_depth),
            Expr::StringLit(parts) => {
                let mut v = bottom;
                for p in parts {
                    match p {
                        StrPart::Lit(_) => {}
                        StrPart::Var(name) | StrPart::ArrayVar { var: name, .. } => {
                            v = v.join(self.read_var(name, env), self.lattice);
                        }
                    }
                }
                v
            }
            Expr::IntLit(_) | Expr::FloatLit(_) | Expr::BoolLit(_) | Expr::NullLit => bottom,
            Expr::ArrayLit(entries) => {
                let mut v = bottom;
                for (k, val) in entries {
                    if let Some(k) = k {
                        v = v.join(self.eval_expr(k, env, clone_depth), self.lattice);
                    }
                    v = v.join(self.eval_expr(val, env, clone_depth), self.lattice);
                }
                v
            }
            Expr::Binary { left, right, .. } => {
                let l = self.eval_expr(left, env, clone_depth);
                let r = self.eval_expr(right, env, clone_depth);
                l.join(r, self.lattice)
            }
            Expr::Unary { expr, .. } => self.eval_expr(expr, env, clone_depth),
            Expr::Ternary {
                cond,
                then,
                otherwise,
            } => {
                let c = self.eval_expr(cond, env, clone_depth);
                let t = match then {
                    Some(t) => self.eval_expr(t, env, clone_depth),
                    None => c,
                };
                let o = self.eval_expr(otherwise, env, clone_depth);
                t.join(o, self.lattice)
            }
            Expr::Call { name, args, .. } => {
                let arg_vals: Vec<SumVal> = args
                    .iter()
                    .map(|a| self.eval_expr(a, env, clone_depth))
                    .collect();
                self.eval_call(name, &arg_vals, clone_depth)
            }
            Expr::MethodCall { base, args, .. } => {
                // Unknown callee: the result joins everything flowing
                // in (matches the filter's conservative treatment).
                let mut v = self.eval_expr(base, env, clone_depth);
                for a in args {
                    v = v.join(self.eval_expr(a, env, clone_depth), self.lattice);
                }
                v
            }
            Expr::Assign {
                target,
                op: _,
                value,
                ..
            } => {
                let v = self.eval_expr(value, env, clone_depth);
                for root in target.root_vars() {
                    env.insert(root.to_owned(), v);
                }
                v
            }
            Expr::IncDec { target } => match target.root_var() {
                Some(root) => self.read_var(root, env),
                None => bottom,
            },
        }
    }

    fn read_var(&self, name: &str, env: &HashMap<String, SumVal>) -> SumVal {
        if let Some(level) = self.prelude.superglobal_level(name) {
            return SumVal::constant(level);
        }
        env.get(name)
            .copied()
            .unwrap_or(SumVal::constant(self.lattice.bottom()))
    }

    fn eval_call(&mut self, name: &str, args: &[SumVal], clone_depth: usize) -> SumVal {
        let lower = name.to_ascii_lowercase();
        let join_args = |lattice: &L| {
            args.iter()
                .fold(SumVal::constant(lattice.bottom()), |a, &b| {
                    a.join(b, lattice)
                })
        };
        if let Some(level) = self.prelude.sanitizer_level(name) {
            // Full neutralizer: the result is reset to the sanitizer's
            // postcondition level and carries no parameter deps.
            let _ = args;
            return SumVal {
                base: level,
                deps: 0,
                sanitized: true,
            };
        }
        if let Some(mask) = self.prelude.sanitizer_mask(name) {
            let v = join_args(self.lattice);
            let base = self.lattice.meet(v.base, mask);
            // A kind-removing mask keeps parameter deps only when the
            // kept set is nonempty — the masked join could still carry
            // parameter taint of the kept kinds.
            let deps = if base == self.lattice.bottom() && mask == self.lattice.bottom() {
                0
            } else {
                v.deps
            };
            return SumVal {
                base,
                deps,
                sanitized: true,
            };
        }
        if self.prelude.returns_trusted(name) {
            return SumVal::constant(self.lattice.bottom());
        }
        if let Some(level) = self.prelude.uic_level(name) {
            return SumVal::constant(level);
        }
        if let Some(summary) = self.summaries.get(&lower).cloned() {
            if summary.polymorphic && clone_depth > 0 {
                if let Some(def) = self.funcs.get(&lower) {
                    // 1-level call-site cloning: re-evaluate the callee
                    // body against the actual argument values. Calls
                    // inside the clone fall back to summaries
                    // (clone_depth 0).
                    let params = def.params.clone();
                    let body = def.body;
                    let mut callee_env: HashMap<String, SumVal> = HashMap::new();
                    for (i, p) in params.iter().enumerate() {
                        let v = args
                            .get(i)
                            .copied()
                            .unwrap_or(SumVal::constant(self.lattice.bottom()));
                        callee_env.insert(p.clone(), v);
                    }
                    self.contexts_cloned += 1;
                    return self.eval_body(body, &mut callee_env, clone_depth - 1);
                }
            }
            // Summary instantiation: substitute actual argument values
            // for the parameter deps.
            let mut v = SumVal {
                base: summary.ret.base,
                deps: 0,
                sanitized: summary.ret.sanitized,
            };
            for (i, &a) in args.iter().enumerate() {
                if i < 64 && summary.ret.deps & (1u64 << i) != 0 {
                    v = v.join(a, self.lattice);
                }
            }
            return v;
        }
        // Unknown function: conservatively joins its arguments (the
        // filter's treatment of unknown calls).
        join_args(self.lattice)
    }
}

fn join_env<L: Lattice>(into: &mut HashMap<String, SumVal>, from: &HashMap<String, SumVal>, l: &L) {
    for (k, &v) in from {
        match into.get_mut(k) {
            Some(cur) => *cur = cur.join(v, l),
            None => {
                into.insert(k.clone(), v);
            }
        }
    }
}

fn collect_funcs<'a>(stmts: &'a [Stmt], out: &mut HashMap<String, FuncDef<'a>>) {
    // Top-level walk mirroring the filter's function collection:
    // declarations may be nested under conditionals.
    fn walk<'a>(stmts: &'a [Stmt], out: &mut HashMap<String, FuncDef<'a>>) {
        for s in stmts {
            match s {
                Stmt::FuncDecl {
                    name, params, body, ..
                } => {
                    out.insert(
                        name.to_ascii_lowercase(),
                        FuncDef {
                            params: params.iter().map(|p| p.name.clone()).collect(),
                            body,
                        },
                    );
                    walk(body, out);
                }
                Stmt::If {
                    then_branch,
                    elseifs,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, out);
                    for (_, b) in elseifs {
                        walk(b, out);
                    }
                    if let Some(b) = else_branch {
                        walk(b, out);
                    }
                }
                Stmt::While { body, .. }
                | Stmt::DoWhile { body, .. }
                | Stmt::For { body, .. }
                | Stmt::Foreach { body, .. } => walk(body, out),
                Stmt::Switch { cases, .. } => {
                    for (_, b) in cases {
                        walk(b, out);
                    }
                }
                Stmt::Block(b) => walk(b, out),
                _ => {}
            }
        }
    }
    walk(stmts, out);
}

fn callees(body: &[Stmt], known: &HashMap<String, FuncDef<'_>>) -> Vec<String> {
    fn walk_expr(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Call { name, args, .. } => {
                out.push(name.to_ascii_lowercase());
                for a in args {
                    walk_expr(a, out);
                }
            }
            Expr::ArrayAccess { base, index } => {
                walk_expr(base, out);
                if let Some(i) = index {
                    walk_expr(i, out);
                }
            }
            Expr::PropFetch { base, .. } => walk_expr(base, out),
            Expr::ArrayLit(entries) => {
                for (k, v) in entries {
                    if let Some(k) = k {
                        walk_expr(k, out);
                    }
                    walk_expr(v, out);
                }
            }
            Expr::Binary { left, right, .. } => {
                walk_expr(left, out);
                walk_expr(right, out);
            }
            Expr::Unary { expr, .. } => walk_expr(expr, out),
            Expr::Ternary {
                cond,
                then,
                otherwise,
            } => {
                walk_expr(cond, out);
                if let Some(t) = then {
                    walk_expr(t, out);
                }
                walk_expr(otherwise, out);
            }
            Expr::MethodCall { base, args, .. } => {
                walk_expr(base, out);
                for a in args {
                    walk_expr(a, out);
                }
            }
            Expr::Assign { value, .. } => walk_expr(value, out),
            _ => {}
        }
    }
    fn walk(stmts: &[Stmt], out: &mut Vec<String>) {
        for s in stmts {
            match s {
                Stmt::Expr(e, _) => walk_expr(e, out),
                Stmt::Echo(es, _) => {
                    for e in es {
                        walk_expr(e, out);
                    }
                }
                Stmt::If {
                    cond,
                    then_branch,
                    elseifs,
                    else_branch,
                    ..
                } => {
                    walk_expr(cond, out);
                    walk(then_branch, out);
                    for (c, b) in elseifs {
                        walk_expr(c, out);
                        walk(b, out);
                    }
                    if let Some(b) = else_branch {
                        walk(b, out);
                    }
                }
                Stmt::While { cond, body, .. } => {
                    walk_expr(cond, out);
                    walk(body, out);
                }
                Stmt::DoWhile { body, cond, .. } => {
                    walk(body, out);
                    walk_expr(cond, out);
                }
                Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    ..
                } => {
                    for e in init {
                        walk_expr(e, out);
                    }
                    if let Some(c) = cond {
                        walk_expr(c, out);
                    }
                    for e in step {
                        walk_expr(e, out);
                    }
                    walk(body, out);
                }
                Stmt::Foreach { array, body, .. } => {
                    walk_expr(array, out);
                    walk(body, out);
                }
                Stmt::Switch { subject, cases, .. } => {
                    walk_expr(subject, out);
                    for (c, b) in cases {
                        if let Some(c) = c {
                            walk_expr(c, out);
                        }
                        walk(b, out);
                    }
                }
                Stmt::Return(Some(e), _) | Stmt::Exit(Some(e), _) => walk_expr(e, out),
                Stmt::Block(b) => walk(b, out),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(body, &mut out);
    out.retain(|n| known.contains_key(n));
    out.sort();
    out.dedup();
    out
}

/// Tarjan strongly-connected components over the call graph, emitted in
/// reverse topological order (callees before callers) — exactly the
/// bottom-up order summary computation needs. The sorted `names` list
/// drives iteration, so emission order is deterministic.
fn sccs(names: &[String], edges: &HashMap<String, Vec<String>>) -> Vec<Vec<String>> {
    let idx_of: HashMap<&str, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let succ: Vec<Vec<usize>> = names
        .iter()
        .map(|n| {
            edges
                .get(n)
                .map(|es| {
                    es.iter()
                        .filter_map(|e| idx_of.get(e.as_str()).copied())
                        .collect()
                })
                .unwrap_or_default()
        })
        .collect();

    const UNVISITED: usize = usize::MAX;
    struct T<'a> {
        succ: &'a [Vec<usize>],
        index: Vec<usize>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        out: Vec<Vec<usize>>,
    }
    fn strongconnect(t: &mut T<'_>, v: usize) {
        t.index[v] = t.next;
        t.low[v] = t.next;
        t.next += 1;
        t.stack.push(v);
        t.on_stack[v] = true;
        for i in 0..t.succ[v].len() {
            let w = t.succ[v][i];
            if t.index[w] == UNVISITED {
                strongconnect(t, w);
                t.low[v] = t.low[v].min(t.low[w]);
            } else if t.on_stack[w] {
                t.low[v] = t.low[v].min(t.index[w]);
            }
        }
        if t.low[v] == t.index[v] {
            let mut comp = Vec::new();
            while let Some(w) = t.stack.pop() {
                t.on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            comp.sort_unstable();
            t.out.push(comp);
        }
    }
    let n = names.len();
    let mut t = T {
        succ: &succ,
        index: vec![UNVISITED; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if t.index[v] == UNVISITED {
            strongconnect(&mut t, v);
        }
    }
    t.out
        .into_iter()
        .map(|comp| comp.into_iter().map(|i| names[i].clone()).collect())
        .collect()
}

/// Computes bottom-up function summaries for every function declared in
/// `program`. `max_depth` bounds the per-SCC fixpoint iteration count
/// for recursive functions; at the cutoff the whole SCC widens soundly
/// to ⊤ (matching the filter's recursion cutoff approximation).
pub fn compute_summaries(
    program: &Program,
    prelude: &Prelude,
    lattice: &impl Lattice,
    max_depth: usize,
) -> SummaryResult {
    let mut funcs = HashMap::new();
    collect_funcs(&program.stmts, &mut funcs);
    let mut names: Vec<String> = funcs.keys().cloned().collect();
    names.sort();
    let edges: HashMap<String, Vec<String>> = names
        .iter()
        .map(|n| (n.clone(), callees(funcs[n].body, &funcs)))
        .collect();
    let components = sccs(&names, &edges);

    let mut cx = Cx {
        prelude,
        lattice,
        funcs,
        summaries: HashMap::new(),
        contexts_cloned: 0,
    };
    let mut result = SummaryResult::default();

    for comp in components {
        let recursive = comp.len() > 1
            || edges
                .get(&comp[0])
                .map(|es| es.contains(&comp[0]))
                .unwrap_or(false);
        // Seed the component at ⊥ so the fixpoint climbs monotonically.
        for name in &comp {
            cx.summaries.insert(
                name.clone(),
                FuncSummary {
                    ret: SumVal::constant(lattice.bottom()),
                    polymorphic: false,
                    widened: false,
                },
            );
        }
        let max_iters = if recursive { max_depth.max(1) } else { 1 };
        let mut stable = !recursive;
        for _ in 0..max_iters {
            let mut changed = false;
            for name in &comp {
                let def = &cx.funcs[name];
                let params = def.params.clone();
                let body = def.body;
                let mut env: HashMap<String, SumVal> = HashMap::new();
                for (i, p) in params.iter().enumerate() {
                    let deps = if i < 64 { 1u64 << i } else { 0 };
                    env.insert(
                        p.clone(),
                        SumVal {
                            base: lattice.bottom(),
                            deps,
                            sanitized: false,
                        },
                    );
                }
                // Summary computation itself never clones — cloning is
                // a call-site refinement; the summary must stay the
                // context-insensitive join.
                let ret = cx.eval_body(body, &mut env, 0);
                let entry = cx.summaries.get_mut(name).expect("seeded");
                if entry.ret != ret {
                    entry.ret = ret;
                    entry.polymorphic = ret.deps != 0;
                    changed = true;
                }
            }
            if !changed {
                stable = true;
                break;
            }
            stable = false;
        }
        if recursive && !stable {
            // Recursion fixpoint did not close within the cutoff:
            // widen the whole component to ⊤ — sound (⊤ over-approximates
            // any concrete return taint) and mirrors the filter's
            // recursion-cutoff behavior.
            for name in &comp {
                let entry = cx.summaries.get_mut(name).expect("seeded");
                entry.ret = SumVal {
                    base: lattice.top(),
                    deps: 0,
                    sanitized: false,
                };
                entry.polymorphic = false;
                entry.widened = true;
                result.recursion_widened += 1;
            }
        }
        result.summaries_computed += comp.len() as u64;
    }

    // A final pass over the main program exercises the cloning path for
    // polymorphic callees called from top level.
    let mut env: HashMap<String, SumVal> = HashMap::new();
    let mut ret = SumVal::constant(lattice.bottom());
    let top_level: Vec<Stmt> = program
        .stmts
        .iter()
        .filter(|s| !matches!(s, Stmt::FuncDecl { .. }))
        .cloned()
        .collect();
    cx.eval_stmts(&top_level, &mut env, 1, &mut ret);

    result.summaries = cx.summaries;
    result.contexts_cloned = cx.contexts_cloned;
    result
}

#[cfg(test)]
mod tests {
    use php_front::parse_source;
    use taint_lattice::{Lattice, TwoPoint};
    use webssari_ir::Prelude;

    use super::*;

    fn summarize(src: &str) -> SummaryResult {
        let program = parse_source(src).expect("parse");
        compute_summaries(&program, &Prelude::standard(), &TwoPoint::new(), 3)
    }

    #[test]
    fn identity_function_is_taint_polymorphic() {
        let r = summarize("<?php function id($a) { return $a; }");
        let s = &r.summaries["id"];
        assert!(s.polymorphic);
        assert_eq!(s.ret.deps, 1);
        assert_eq!(s.ret.base, TwoPoint::new().bottom());
        assert_eq!(r.summaries_computed, 1);
    }

    #[test]
    fn sanitizing_function_is_monomorphic() {
        let r = summarize("<?php function clean($a) { return htmlspecialchars($a); }");
        let s = &r.summaries["clean"];
        assert!(!s.polymorphic);
        assert_eq!(s.ret.deps, 0);
        assert!(s.ret.sanitized);
    }

    #[test]
    fn source_function_returns_taint_regardless_of_args() {
        let r = summarize("<?php function src($a) { return $_GET['q']; }");
        let s = &r.summaries["src"];
        assert!(!s.polymorphic);
        assert_eq!(s.ret.base, TwoPoint::TAINTED);
    }

    #[test]
    fn summaries_compose_bottom_up() {
        // wrap() forwards through id(); its summary must inherit the
        // parameter dependency.
        let r = summarize(
            "<?php function id($a) { return $a; } \
             function wrap($b) { return id($b); }",
        );
        assert_eq!(r.summaries["wrap"].ret.deps, 1);
        assert!(r.summaries["wrap"].polymorphic);
        assert_eq!(r.summaries_computed, 2);
    }

    #[test]
    fn branch_joins_both_returns() {
        let r =
            summarize("<?php function pick($a) { if ($a) { return $_GET['x']; } return 'safe'; }");
        let s = &r.summaries["pick"];
        assert_eq!(
            s.ret.base,
            TwoPoint::TAINTED,
            "taken branch taints the join"
        );
    }

    #[test]
    fn recursion_within_cutoff_reaches_fixpoint() {
        // Self-recursive identity: f(x) = x ⊔ f(x) closes at deps={0}.
        let r = summarize("<?php function f($x) { if ($x) { return f($x); } return $x; }");
        let s = &r.summaries["f"];
        assert!(!s.widened, "fixpoint closes within the cutoff");
        assert_eq!(s.ret.deps, 1);
        assert_eq!(r.recursion_widened, 0);
    }

    #[test]
    fn mutual_identity_recursion_closes_at_bottom() {
        // f = g, g = f has least fixpoint ⊥ (neither ever produces a
        // value of its own) — the SCC fixpoint must close without
        // widening even at a tight cutoff.
        let program =
            parse_source("<?php function f($x) { return g($x); } function g($y) { return f($y); }")
                .expect("parse");
        let r = compute_summaries(&program, &Prelude::standard(), &TwoPoint::new(), 3);
        assert_eq!(r.recursion_widened, 0);
        assert_eq!(r.summaries["f"].ret.deps, 0);
    }

    #[test]
    fn cutoff_recursion_widens_to_top() {
        // f($x) = f($x) . $x needs a second iteration to stabilize at
        // deps = {0}; max_depth = 0 clamps the fixpoint to one round,
        // so the summary widens soundly to ⊤.
        let src = "<?php function f($x) { return f($x) . $x; }";
        let program = parse_source(src).expect("parse");
        let l = TwoPoint::new();
        let r0 = compute_summaries(&program, &Prelude::standard(), &l, 0);
        assert_eq!(r0.recursion_widened, 1);
        assert_eq!(r0.summaries["f"].ret.base, l.top());
        assert!(r0.summaries["f"].widened);
        // With room to iterate, the same function reaches its fixpoint.
        let r3 = compute_summaries(&program, &Prelude::standard(), &l, 3);
        assert_eq!(r3.recursion_widened, 0);
        assert_eq!(r3.summaries["f"].ret.deps, 1);
    }

    #[test]
    fn polymorphic_call_sites_are_cloned_once() {
        let r = summarize(
            "<?php function id($a) { return $a; } \
             $x = id($_GET['q']); echo $x; $y = id('safe'); echo $y;",
        );
        assert_eq!(r.contexts_cloned, 2, "both top-level call sites clone");
    }

    #[test]
    fn trusted_builtins_and_unknowns() {
        let r = summarize("<?php function f($a) { $n = strlen($a); $u = mystery($a); return $u; }");
        let s = &r.summaries["f"];
        // mystery() is unknown → joins its argument → param dep kept.
        assert_eq!(s.ret.deps, 1);
    }
}
