//! Program refinement from flow facts: dead-definition elimination and
//! constant folding ahead of CNF encoding.
//!
//! The cone slicer (PR 4) keeps every assignment whose variable is in
//! the flow-insensitive dependency cone of a surviving assertion. The
//! SSA view is strictly finer: an assignment whose *definition* reaches
//! no assertion use — because a later assignment kills it on every path
//! that matters — can be dropped even when its variable is in the cone.
//! [`refine`] removes those, and rewrites live assignments whose value
//! is the same constant on every path (`konst = Some(k)` in the flow
//! analysis) to dependency-free constant assignments, which the
//! renaming encoder then pins without allocating clauses.
//!
//! # Bit-identity
//!
//! `refine` preserves the `If` skeleton, every `BranchId`,
//! `num_branches`, all assertions, and every `Stop` — only `Assign`
//! commands are dropped or rewritten. Soundness of a drop: if on some
//! path the dropped definition bound the value read by an assertion,
//! that use's reaching-definition chain would contain it (a φ argument
//! along the merge path), making it live — a contradiction. Soundness
//! of a fold: `konst = Some(k)` means the right-hand side evaluates to
//! exactly `k` on every path reaching the command, so replacing it with
//! the constant `k` changes no path valuation. Hence per-path assertion
//! valuations — and with them verdicts, counterexample sets, and fix
//! plans — are unchanged.

use std::collections::HashSet;

use taint_lattice::Lattice;
use webssari_ir::{AiCmd, AiProgram};

use crate::analysis::{self, FlowResult};
use crate::ssa::{CmdId, Def, DefId, SsaProgram};

/// What [`refine`] did to the program.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefineStats {
    /// Assignments dropped because their definition reaches no
    /// assertion use.
    pub dead_defs_dropped: u64,
    /// Live assignments rewritten to dependency-free constants.
    pub consts_folded: u64,
    /// φ definitions placed while building the SSA.
    pub ssa_phis: u64,
}

/// Refines `ai` using an already-built SSA and flow result.
pub fn refine_with(
    ai: &AiProgram,
    ssa: &SsaProgram,
    flow: &FlowResult,
    lattice: &impl Lattice,
) -> (AiProgram, RefineStats) {
    // Backward liveness over def-use edges: a definition is live iff an
    // assertion use reaches it transitively (through assign operands
    // and φ arguments).
    let mut live = vec![false; ssa.defs.len()];
    let mut work: Vec<DefId> = Vec::new();
    for a in &ssa.asserts {
        for &(_, d) in &a.uses {
            if !live[d.0 as usize] {
                live[d.0 as usize] = true;
                work.push(d);
            }
        }
    }
    while let Some(d) = work.pop() {
        // A folded constant keeps no operands, so its operands do not
        // stay live on its account.
        let folded = matches!(ssa.defs[d.0 as usize], Def::Assign { .. })
            && flow.values[d.0 as usize].konst.is_some();
        if folded {
            continue;
        }
        for &op in ssa.defs[d.0 as usize].operands() {
            if !live[op.0 as usize] {
                live[op.0 as usize] = true;
                work.push(op);
            }
        }
    }

    // Map live assign definitions back to their commands.
    let mut live_cmds: HashSet<CmdId> = HashSet::new();
    let mut const_cmds: HashSet<CmdId> = HashSet::new();
    for (i, d) in ssa.defs.iter().enumerate() {
        if let Def::Assign { cmd, .. } = d {
            if live[i] {
                live_cmds.insert(*cmd);
                if flow.values[i].konst.is_some() {
                    const_cmds.insert(*cmd);
                }
            }
        }
    }

    let mut stats = RefineStats {
        ssa_phis: ssa.num_phis as u64,
        ..RefineStats::default()
    };

    // Rebuild the command tree with the same pre-order numbering the
    // SSA builder used, so CmdIds line up.
    struct Rewriter<'a> {
        next: u32,
        live_cmds: &'a HashSet<CmdId>,
        const_cmds: &'a HashSet<CmdId>,
        konst_of: &'a dyn Fn(CmdId) -> Option<taint_lattice::Elem>,
        stats: &'a mut RefineStats,
    }
    impl Rewriter<'_> {
        fn go(&mut self, cmds: &[AiCmd]) -> Vec<AiCmd> {
            let mut out = Vec::with_capacity(cmds.len());
            for c in cmds {
                let id = CmdId(self.next);
                self.next += 1;
                match c {
                    AiCmd::Assign {
                        var,
                        base,
                        deps,
                        mask,
                        site,
                    } => {
                        if !self.live_cmds.contains(&id) {
                            self.stats.dead_defs_dropped += 1;
                            continue;
                        }
                        if self.const_cmds.contains(&id) {
                            let k = (self.konst_of)(id).expect("const cmd has konst");
                            let already = deps.is_empty() && mask.is_none() && *base == k;
                            if !already {
                                self.stats.consts_folded += 1;
                                out.push(AiCmd::Assign {
                                    var: *var,
                                    base: k,
                                    deps: Vec::new(),
                                    mask: None,
                                    site: site.clone(),
                                });
                                continue;
                            }
                        }
                        out.push(c.clone());
                    }
                    AiCmd::If {
                        branch,
                        then_cmds,
                        else_cmds,
                        site,
                    } => {
                        let t = self.go(then_cmds);
                        let e = self.go(else_cmds);
                        out.push(AiCmd::If {
                            branch: *branch,
                            then_cmds: t,
                            else_cmds: e,
                            site: site.clone(),
                        });
                    }
                    AiCmd::Assert { .. } | AiCmd::Stop { .. } => out.push(c.clone()),
                }
            }
            out
        }
    }

    // konst lookup by command id (each Assign command yields exactly
    // one SSA definition).
    let mut konst_by_cmd: Vec<(CmdId, Option<taint_lattice::Elem>)> = Vec::new();
    for (i, d) in ssa.defs.iter().enumerate() {
        if let Def::Assign { cmd, .. } = d {
            konst_by_cmd.push((*cmd, flow.values[i].konst));
        }
    }
    konst_by_cmd.sort_by_key(|&(c, _)| c);
    let konst_of = move |cmd: CmdId| -> Option<taint_lattice::Elem> {
        konst_by_cmd
            .binary_search_by_key(&cmd, |&(c, _)| c)
            .ok()
            .and_then(|i| konst_by_cmd[i].1)
    };

    let _ = lattice; // lattice fixed by the flow result; kept for signature symmetry
    let mut rewriter = Rewriter {
        next: 0,
        live_cmds: &live_cmds,
        const_cmds: &const_cmds,
        konst_of: &konst_of,
        stats: &mut stats,
    };
    let cmds = rewriter.go(&ai.cmds);
    let refined = AiProgram::from_parts(ai.vars.clone(), cmds, ai.num_branches);
    (refined, stats)
}

/// Builds the SSA, runs the flow analysis, and refines `ai` in one
/// call.
pub fn refine(ai: &AiProgram, lattice: &impl Lattice) -> (AiProgram, RefineStats) {
    let ssa = SsaProgram::build(ai);
    let flow = analysis::analyze(&ssa, lattice);
    refine_with(ai, &ssa, &flow, lattice)
}
