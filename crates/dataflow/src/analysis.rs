//! Sparse flow-sensitive analysis over SSA def-use chains.
//!
//! Each SSA definition carries one [`FlowValue`] — a point in the
//! product lattice *taint × constantness × sanitizer-state* — and a
//! worklist propagates changes along def-use edges only, so a change to
//! one definition revisits exactly its users instead of re-joining
//! whole environments. The CFG is acyclic (the AI is loop-free), so the
//! worklist converges to the least fixpoint, and because φ computes the
//! same join the typestate walk computes at merges, the per-assertion
//! verdict here agrees with [`typestate`]'s — the tier's value is the
//! *sparser* evidence it produces: per-assertion def-use witnesses and
//! per-definition constantness that [`crate::refine`] folds back into
//! the program the encoder sees.
//!
//! [`typestate`]: https://docs.rs/typestate

use taint_lattice::{Elem, Lattice};
use webssari_ir::{AssertId, Site, VarId};

use crate::ssa::{Def, DefId, SsaProgram, UserRef};

/// The product-lattice value of one SSA definition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowValue {
    /// Taint component: the join of the definition's reaching levels.
    pub taint: Elem,
    /// Constantness component: `Some(k)` when the definition evaluates
    /// to exactly `k` on *every* path reaching it, `None` otherwise.
    pub konst: Option<Elem>,
    /// Sanitizer-state component: whether the value passed through a
    /// sanitizer (a masked assignment) on some path.
    pub sanitized: bool,
}

/// The flow verdict for one assertion.
#[derive(Clone, Debug)]
pub struct AssertVerdict {
    /// The assertion id (program order).
    pub id: AssertId,
    /// Whether every checked use satisfies the bound flow-sensitively.
    pub clean: bool,
    /// The uses violating the bound (empty iff `clean`).
    pub dirty_uses: Vec<(VarId, DefId)>,
}

/// Result of the sparse analysis: one value per definition, one verdict
/// per assertion.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// `values[d]` is the fixpoint value of definition `d`.
    pub values: Vec<FlowValue>,
    /// Verdicts parallel to [`SsaProgram::asserts`] (program order).
    pub verdicts: Vec<AssertVerdict>,
}

impl FlowResult {
    /// Number of assertions proven clean flow-sensitively.
    pub fn num_clean(&self) -> usize {
        self.verdicts.iter().filter(|v| v.clean).count()
    }
}

/// One step of a def-use taint witness, in source→sink order.
#[derive(Clone, Debug)]
pub struct WitnessStep {
    /// The variable carrying the taint at this step.
    pub var: VarId,
    /// Source location, if the step corresponds to a program command
    /// (`None` for the implicit entry definition and φ merges).
    pub site: Option<Site>,
    /// Taint level at this step.
    pub taint: Elem,
    /// Whether the value was sanitized by this point.
    pub sanitized: bool,
}

fn transfer(ssa: &SsaProgram, lattice: &impl Lattice, values: &[FlowValue], d: DefId) -> FlowValue {
    match &ssa.defs[d.0 as usize] {
        Def::Entry { .. } => FlowValue {
            taint: lattice.bottom(),
            konst: Some(lattice.bottom()),
            sanitized: false,
        },
        Def::Assign {
            base, deps, mask, ..
        } => {
            let mut taint = *base;
            let mut konst = Some(*base);
            let mut sanitized = false;
            for &op in deps {
                let v = values[op.0 as usize];
                taint = lattice.join(taint, v.taint);
                konst = match (konst, v.konst) {
                    (Some(a), Some(b)) => Some(lattice.join(a, b)),
                    _ => None,
                };
                sanitized |= v.sanitized;
            }
            if let Some(m) = mask {
                taint = lattice.meet(taint, *m);
                konst = konst.map(|k| lattice.meet(k, *m));
                sanitized = true;
            }
            FlowValue {
                taint,
                konst,
                sanitized,
            }
        }
        Def::Phi { args, .. } => {
            let mut taint = lattice.bottom();
            // The φ is constant only when every incoming definition is
            // the *same* constant — otherwise the merged value is
            // path-dependent.
            let mut konst: Option<Option<Elem>> = None; // unseen
            let mut sanitized = false;
            for &op in args {
                let v = values[op.0 as usize];
                taint = lattice.join(taint, v.taint);
                konst = Some(match (konst, v.konst) {
                    (None, k) => k,
                    (Some(Some(a)), Some(b)) if a == b => Some(a),
                    _ => None,
                });
                sanitized |= v.sanitized;
            }
            FlowValue {
                taint,
                konst: konst.flatten(),
                sanitized,
            }
        }
    }
}

/// Runs the sparse worklist analysis to its least fixpoint.
pub fn analyze(ssa: &SsaProgram, lattice: &impl Lattice) -> FlowResult {
    let n = ssa.defs.len();
    let init = FlowValue {
        taint: lattice.bottom(),
        konst: Some(lattice.bottom()),
        sanitized: false,
    };
    let mut values = vec![init; n];
    // Seed with every definition once; afterwards only users of changed
    // definitions re-enter the worklist (the sparse part).
    let mut worklist: Vec<DefId> = (0..n as u32).map(DefId).collect();
    let mut queued = vec![true; n];
    while let Some(d) = worklist.pop() {
        queued[d.0 as usize] = false;
        let new = transfer(ssa, lattice, &values, d);
        if new != values[d.0 as usize] {
            values[d.0 as usize] = new;
            for u in &ssa.users[d.0 as usize] {
                if let UserRef::Def(ud) = u {
                    if !queued[ud.0 as usize] {
                        queued[ud.0 as usize] = true;
                        worklist.push(*ud);
                    }
                }
            }
        }
    }

    let verdicts = ssa
        .asserts
        .iter()
        .map(|a| {
            let ok = |t: Elem| {
                if a.strict {
                    lattice.lt(t, a.bound)
                } else {
                    lattice.leq(t, a.bound)
                }
            };
            let dirty_uses: Vec<(VarId, DefId)> = a
                .uses
                .iter()
                .copied()
                .filter(|&(_, d)| !ok(values[d.0 as usize].taint))
                .collect();
            AssertVerdict {
                id: a.id,
                clean: dirty_uses.is_empty(),
                dirty_uses,
            }
        })
        .collect();

    FlowResult { values, verdicts }
}

/// Extracts a def-use taint witness for assertion `assert_idx`: the
/// chain of definitions carrying the highest taint into the assertion,
/// in source→sink order. Returns an empty path for clean assertions.
pub fn witness(
    ssa: &SsaProgram,
    result: &FlowResult,
    lattice: &impl Lattice,
    assert_idx: usize,
) -> Vec<WitnessStep> {
    let verdict = &result.verdicts[assert_idx];
    let Some((_, start)) = verdict.dirty_uses.iter().copied().max_by(|a, b| {
        let (ta, tb) = (
            result.values[a.1 .0 as usize].taint,
            result.values[b.1 .0 as usize].taint,
        );
        // A total order refining ≤ for max-selection.
        if ta == tb {
            std::cmp::Ordering::Equal
        } else if lattice.leq(ta, tb) {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    }) else {
        return Vec::new();
    };

    let mut steps = Vec::new();
    let mut cur = start;
    loop {
        let v = result.values[cur.0 as usize];
        // Pick the operand carrying the most taint; at a tie the first
        // wins, keeping the walk deterministic.
        let next = ssa.defs[cur.0 as usize]
            .operands()
            .iter()
            .copied()
            .max_by(|a, b| {
                let (ta, tb) = (
                    result.values[a.0 as usize].taint,
                    result.values[b.0 as usize].taint,
                );
                if ta == tb {
                    std::cmp::Ordering::Equal
                } else if lattice.leq(ta, tb) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            });
        match &ssa.defs[cur.0 as usize] {
            Def::Entry { var } => {
                steps.push(WitnessStep {
                    var: *var,
                    site: None,
                    taint: v.taint,
                    sanitized: v.sanitized,
                });
                break;
            }
            Def::Assign { var, site, .. } => {
                steps.push(WitnessStep {
                    var: *var,
                    site: Some(site.clone()),
                    taint: v.taint,
                    sanitized: v.sanitized,
                });
                match next {
                    // Stop at the taint source: once the operand adds no
                    // taint beyond this command's own base, this command
                    // *is* the source.
                    Some(op)
                        if !lattice.leq(result.values[op.0 as usize].taint, lattice.bottom()) =>
                    {
                        cur = op;
                    }
                    _ => break,
                }
            }
            Def::Phi { var, .. } => {
                steps.push(WitnessStep {
                    var: *var,
                    site: None,
                    taint: v.taint,
                    sanitized: v.sanitized,
                });
                match next {
                    Some(op) => cur = op,
                    None => break,
                }
            }
        }
    }
    steps.reverse();
    steps
}
