//! Sparse interprocedural dataflow tier for the WebSSARI xBMC pipeline.
//!
//! The cone slicer (PR 4) screens assertions flow-*insensitively*: a
//! variable's dependency cone joins every assignment that ever touches
//! it, so a tainted-then-killed variable still looks tainted. This
//! crate adds the flow-sensitive tier on top:
//!
//! 1. [`ssa`] lowers the loop-free AI into pruned SSA form — basic
//!    blocks over the branch skeleton, dominance-frontier φ placement,
//!    stack-based renaming — preserving every `BranchId` and
//!    `num_branches` so cube enumeration downstream is untouched.
//! 2. [`analysis`] runs a sparse worklist analysis over the def-use
//!    chains with a product lattice of taint × constantness ×
//!    sanitizer-state, yielding per-assertion flow verdicts and
//!    def-use taint witnesses.
//! 3. [`refine`] folds the facts back into the program the encoder
//!    sees: definitions reaching no assertion use are dropped and
//!    all-paths-constant assignments become dependency-free constants —
//!    both transformations preserve per-path assertion valuations, so
//!    reports stay bit-identical.
//! 4. [`summaries`] computes bottom-up, context-insensitive function
//!    summaries over the call graph (Tarjan SCCs, recursion fixpoint
//!    widening soundly to ⊤ at the cutoff) with 1-level call-site
//!    cloning for taint-polymorphic functions.
//!
//! `crates/analysis` stitches these into the two-stage screening used
//! by the core verifier; see `screen_two_stage` there.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod refine;
pub mod ssa;
pub mod summaries;

pub use analysis::{analyze, witness, AssertVerdict, FlowResult, FlowValue, WitnessStep};
pub use refine::{refine, refine_with, RefineStats};
pub use ssa::{AssertUse, Block, BlockCmd, BlockId, CmdId, Def, DefId, SsaProgram, UserRef};
pub use summaries::{compute_summaries, FuncSummary, SumVal, SummaryResult};

#[cfg(test)]
mod tests {
    use php_front::parse_source;
    use taint_lattice::{Lattice, TwoPoint};
    use webssari_ir::{abstract_interpret, filter_program, AiProgram, FilterOptions, Prelude};

    use crate::ssa::SsaProgram;

    pub(crate) fn ai_of(src: &str) -> AiProgram {
        let program = parse_source(src).expect("parse");
        let f = filter_program(
            &program,
            src,
            "t.php",
            &Prelude::standard(),
            &FilterOptions::default(),
        );
        abstract_interpret(&f)
    }

    #[test]
    fn end_to_end_kill_is_flow_clean() {
        // Cone-blind case: $x is tainted then killed; the flow verdict
        // must be clean while the cone still contains the taint.
        let ai = ai_of("<?php $x = $_GET['a']; $x = 'safe'; echo $x;");
        let l = TwoPoint::new();
        let ssa = SsaProgram::build(&ai);
        ssa.validate().expect("well-formed SSA");
        let flow = crate::analyze(&ssa, &l);
        assert_eq!(flow.verdicts.len(), 1);
        assert!(flow.verdicts[0].clean, "killed taint is flow-clean");
    }

    #[test]
    fn end_to_end_branchy_taint_is_dirty_with_witness() {
        let ai = ai_of("<?php $x = 'a'; if ($c) { $x = $_GET['q']; } echo $x;");
        let l = TwoPoint::new();
        let ssa = SsaProgram::build(&ai);
        ssa.validate().expect("well-formed SSA");
        assert!(ssa.num_phis >= 1, "merge needs a phi");
        let flow = crate::analyze(&ssa, &l);
        assert!(!flow.verdicts[0].clean);
        let steps = crate::witness(&ssa, &flow, &l, 0);
        assert!(!steps.is_empty());
        // The final step carries the taint that reaches the sink.
        let last = steps.last().unwrap();
        assert!(!l.leq(last.taint, l.bottom()));
    }

    #[test]
    fn refine_drops_flow_dead_definition() {
        // The first assignment to $x is killed on every path before the
        // echo; refine must drop it while keeping the branch skeleton.
        let ai = ai_of(
            "<?php if ($p) { $x = $_GET['d']; } else { $x = 'd'; } \
             $x = 'safe'; $y = $_GET['q']; echo $y;",
        );
        let l = TwoPoint::new();
        let (refined, stats) = crate::refine(&ai, &l);
        assert!(stats.dead_defs_dropped >= 2, "both arm defs are dead");
        assert_eq!(refined.num_branches, ai.num_branches);
        assert_eq!(refined.num_assertions(), ai.num_assertions());
        // Per-path valuations are unchanged where it matters.
        for bits in 0..2u32 {
            let branches = vec![bits == 1];
            let before = webssari_ir::ai::reference::run_path(&ai, &l, &branches, false);
            let after = webssari_ir::ai::reference::run_path(&refined, &l, &branches, false);
            let key = |vs: &[webssari_ir::ai::reference::Violation]| {
                vs.iter().map(|v| v.assert_id).collect::<Vec<_>>()
            };
            assert_eq!(key(&before), key(&after));
        }
    }
}
